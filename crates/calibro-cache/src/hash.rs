//! A stable, dependency-free 128-bit hasher for cache keys.
//!
//! `std::hash::Hasher` implementations (SipHash) are randomly keyed per
//! process, so they cannot address an on-disk store. This hasher is
//! bit-stable across processes, platforms and crate versions (the
//! *schema* of what gets fed into it is versioned separately via
//! [`crate::SCHEMA_VERSION`]).
//!
//! Hashing is two-phase: every `write_*` call serializes its framed
//! input into an internal byte buffer, and [`finish`] /
//! [`finish_reset`] mix the buffer a whole 64-bit word at a time
//! through two independently seeded FxHash-style lanes
//! (`rotate ^ word, * odd-constant` — the short-key idiom rustc's
//! FxHasher uses in place of SipHash). Word-at-a-time mixing is ~8x
//! fewer multiplies than the byte-at-a-time FNV lanes this replaced,
//! which matters because the warm build path hashes every method on
//! every rebuild. [`finish_reset`] keeps the buffer's allocation so a
//! per-worker hasher can be reused across many methods without
//! re-allocating.
//!
//! [`finish`]: StableHasher::finish
//! [`finish_reset`]: StableHasher::finish_reset

/// A 128-bit content-address: the key of one cached artifact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey {
    /// High lane.
    pub hi: u64,
    /// Low lane.
    pub lo: u64,
}

impl CacheKey {
    /// Renders the key as 32 lowercase hex digits (disk file names).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl core::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// High-lane seed (FNV-1a-64 offset basis, kept from the old scheme).
const SEED_HI: u64 = 0xcbf2_9ce4_8422_2325;
/// Low-lane seed (digits of pi) — unrelated to the high seed so the two
/// lanes decorrelate.
const SEED_LO: u64 = 0x2437_54a3_2439_f31d;
/// High-lane multiplier: rustc `FxHasher`'s odd constant.
const K_HI: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Low-lane multiplier: the 64-bit golden ratio (odd).
const K_LO: u64 = 0x9e37_79b9_7f4a_7c15;
const ROTATE: u32 = 5;

/// One FxHash-style mixing step: fold a 64-bit word into a lane.
#[inline]
fn mix(lane: u64, word: u64, k: u64) -> u64 {
    (lane.rotate_left(ROTATE) ^ word).wrapping_mul(k)
}

/// SplitMix64 finalizer: avalanches a lane so the weak low bits of a
/// multiply-only mixer do not leak into the key.
#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes a serialized buffer 8 bytes at a time through both lanes.
///
/// The tail (< 8 bytes) is zero-padded into one last word; folding the
/// exact byte length afterwards disambiguates it from genuine trailing
/// zero bytes and keeps prefixes from colliding with their extensions.
fn mix_buffer(buf: &[u8]) -> (u64, u64) {
    let mut hi = SEED_HI;
    let mut lo = SEED_LO;
    let mut chunks = buf.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"));
        hi = mix(hi, w, K_HI);
        lo = mix(lo, w, K_LO);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let w = u64::from_le_bytes(tail);
        hi = mix(hi, w, K_HI);
        lo = mix(lo, w, K_LO);
    }
    hi = mix(hi, buf.len() as u64, K_HI);
    lo = mix(lo, buf.len() as u64, K_LO);
    (avalanche(hi), avalanche(lo))
}

/// The serialize-then-hash hasher. Every `write_*` helper frames its
/// input with a type tag byte, so adjacent fields of different widths
/// cannot alias (e.g. `(u8 1, u8 2)` hashes differently from
/// `(u16 0x0201)`).
#[derive(Clone, Debug, Default)]
pub struct StableHasher {
    buf: Vec<u8>,
}

impl StableHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher { buf: Vec::new() }
    }

    /// A fresh hasher whose buffer can hold `bytes` without growing —
    /// for per-worker hashers sized to a typical method.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> StableHasher {
        StableHasher { buf: Vec::with_capacity(bytes) }
    }

    /// Raw bytes, length-prefixed so concatenations cannot alias.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.push(0xB0);
        self.buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(bytes);
    }

    /// A tag byte: use to discriminate enum variants and field groups.
    #[inline]
    pub fn write_tag(&mut self, tag: u8) {
        self.buf.extend_from_slice(&[0xAF, tag]);
    }

    /// An unsigned 8-bit value.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[0xA1, v]);
    }

    /// An unsigned 16-bit value.
    #[inline]
    pub fn write_u16(&mut self, v: u16) {
        let [a, b] = v.to_le_bytes();
        self.buf.extend_from_slice(&[0xA2, a, b]);
    }

    /// An unsigned 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        let [a, b, c, d] = v.to_le_bytes();
        self.buf.extend_from_slice(&[0xA4, a, b, c, d]);
    }

    /// An unsigned 64-bit value.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let [a, b, c, d, e, f, g, i] = v.to_le_bytes();
        self.buf.extend_from_slice(&[0xA8, a, b, c, d, e, f, g, i]);
    }

    /// A `usize`, widened to 64 bits for cross-platform stability.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// A raw 64-bit word with *no* framing tag — the packed fast path
    /// for fixed-layout records (per-instruction method hashing).
    ///
    /// Unlike the framed `write_*` helpers, adjacent `write_word` calls
    /// carry no aliasing protection of their own: the caller must make
    /// the word stream self-describing, e.g. by placing a variant tag
    /// in a fixed lane of the first word that determines the layout and
    /// count of the words that follow.
    #[inline]
    pub fn write_word(&mut self, w: u64) {
        self.buf.extend_from_slice(&w.to_le_bytes());
    }

    /// A signed 64-bit value (covers every narrower signed width).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        let [a, b, c, d, e, f, g, i] = (v as u64).to_le_bytes();
        self.buf.extend_from_slice(&[0xA9, a, b, c, d, e, f, g, i]);
    }

    /// A boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.buf.extend_from_slice(&[0xAB, u8::from(v)]);
    }

    /// A UTF-8 string, length-prefixed.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.buf.push(0xAC);
        self.write_bytes(s.as_bytes());
    }

    /// Bytes serialized so far (framing included). Exposed so tests and
    /// tools can check the serialization phase independently of the
    /// mixing phase.
    #[must_use]
    pub fn serialized(&self) -> &[u8] {
        &self.buf
    }

    /// Finalizes into a [`CacheKey`], consuming the hasher.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        let (hi, lo) = mix_buffer(&self.buf);
        CacheKey { hi, lo: lo ^ hi.rotate_left(32) }
    }

    /// Finalizes into a [`CacheKey`] and clears the buffer for reuse,
    /// keeping its allocation. A loop hashing many methods through one
    /// hasher allocates once instead of once per method.
    pub fn finish_reset(&mut self) -> CacheKey {
        let (hi, lo) = mix_buffer(&self.buf);
        self.buf.clear();
        CacheKey { hi, lo: lo ^ hi.rotate_left(32) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(f: impl FnOnce(&mut StableHasher)) -> CacheKey {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = key_of(|h| h.write_str("hello"));
        let b = key_of(|h| h.write_str("hello"));
        assert_eq!(a, b);
    }

    #[test]
    fn framed_writes_do_not_alias() {
        // Two u8s vs one u16 with the same raw bytes.
        let a = key_of(|h| {
            h.write_u8(1);
            h.write_u8(2);
        });
        let b = key_of(|h| h.write_u16(0x0201));
        assert_ne!(a, b);
        // Adjacent byte strings vs one concatenated string.
        let c = key_of(|h| {
            h.write_bytes(b"ab");
            h.write_bytes(b"cd");
        });
        let d = key_of(|h| h.write_bytes(b"abcd"));
        assert_ne!(c, d);
    }

    #[test]
    fn empty_and_prefix_inputs_distinct() {
        let empty = key_of(|_| {});
        let one = key_of(|h| h.write_bool(false));
        assert_ne!(empty, one);
    }

    #[test]
    fn trailing_zero_bytes_are_not_absorbed_by_tail_padding() {
        // The tail word is zero-padded; the length fold must keep a
        // buffer ending in literal zero bytes distinct from the same
        // buffer with them stripped.
        let a = key_of(|h| h.write_bytes(&[7, 0, 0, 0]));
        let b = key_of(|h| h.write_bytes(&[7, 0, 0]));
        let c = key_of(|h| h.write_bytes(&[7]));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn hex_roundtrip_is_32_digits() {
        let k = key_of(|h| h.write_u64(42));
        let hex = k.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, format!("{k}"));
    }

    #[test]
    fn finish_reset_matches_fresh_hasher_and_reuses_buffer() {
        let mut reused = StableHasher::with_capacity(256);
        for round in 0..5u64 {
            let mut fresh = StableHasher::new();
            for h in [&mut reused, &mut fresh] {
                h.write_u64(round);
                h.write_str("method");
                h.write_bytes(&round.to_le_bytes());
            }
            assert_eq!(reused.finish_reset(), fresh.finish());
            assert!(reused.serialized().is_empty());
        }
    }

    /// A byte-at-a-time reference implementation of the exact same
    /// scheme: identical framing (tag bytes, little-endian values,
    /// length prefixes) serialized byte by byte into a shift register
    /// that mixes every 8th byte, with the same tail-padding and
    /// length-fold finalization. Word-boundary bugs in the buffered
    /// mixer (chunking, tail handling, length fold) diverge from it.
    struct ReferenceHasher {
        hi: u64,
        lo: u64,
        pending: u64,
        pending_bytes: u32,
        len: u64,
    }

    impl ReferenceHasher {
        fn new() -> ReferenceHasher {
            ReferenceHasher { hi: SEED_HI, lo: SEED_LO, pending: 0, pending_bytes: 0, len: 0 }
        }

        fn byte(&mut self, b: u8) {
            self.pending |= u64::from(b) << (8 * self.pending_bytes);
            self.pending_bytes += 1;
            self.len += 1;
            if self.pending_bytes == 8 {
                self.hi = mix(self.hi, self.pending, K_HI);
                self.lo = mix(self.lo, self.pending, K_LO);
                self.pending = 0;
                self.pending_bytes = 0;
            }
        }

        fn bytes(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.byte(b);
            }
        }

        fn write_bytes(&mut self, bytes: &[u8]) {
            self.byte(0xB0);
            self.bytes(&(bytes.len() as u64).to_le_bytes());
            self.bytes(bytes);
        }

        fn write_tag(&mut self, tag: u8) {
            self.byte(0xAF);
            self.byte(tag);
        }

        fn write_u8(&mut self, v: u8) {
            self.byte(0xA1);
            self.byte(v);
        }

        fn write_u16(&mut self, v: u16) {
            self.byte(0xA2);
            self.bytes(&v.to_le_bytes());
        }

        fn write_u32(&mut self, v: u32) {
            self.byte(0xA4);
            self.bytes(&v.to_le_bytes());
        }

        fn write_u64(&mut self, v: u64) {
            self.byte(0xA8);
            self.bytes(&v.to_le_bytes());
        }

        fn write_usize(&mut self, v: usize) {
            self.write_u64(v as u64);
        }

        fn write_word(&mut self, w: u64) {
            self.bytes(&w.to_le_bytes());
        }

        fn write_i64(&mut self, v: i64) {
            self.byte(0xA9);
            self.bytes(&(v as u64).to_le_bytes());
        }

        fn write_bool(&mut self, v: bool) {
            self.byte(0xAB);
            self.byte(u8::from(v));
        }

        fn write_str(&mut self, s: &str) {
            self.byte(0xAC);
            self.write_bytes(s.as_bytes());
        }

        fn finish(mut self) -> CacheKey {
            if self.pending_bytes > 0 {
                self.hi = mix(self.hi, self.pending, K_HI);
                self.lo = mix(self.lo, self.pending, K_LO);
            }
            let hi = avalanche(mix(self.hi, self.len, K_HI));
            let lo = avalanche(mix(self.lo, self.len, K_LO));
            CacheKey { hi, lo: lo ^ hi.rotate_left(32) }
        }
    }

    /// Deterministic SplitMix64 stream for the property test (the
    /// vendored rand shim is not a dependency of this crate).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            avalanche(self.0)
        }
    }

    #[test]
    fn word_at_a_time_matches_byte_at_a_time_reference() {
        for seed in 0..300u64 {
            let mut rng = SplitMix64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
            let mut h = StableHasher::new();
            let mut r = ReferenceHasher::new();
            let ops = (rng.next() % 40) as usize;
            for _ in 0..ops {
                match rng.next() % 11 {
                    0 => {
                        let n = (rng.next() % 43) as usize;
                        let data: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
                        h.write_bytes(&data);
                        r.write_bytes(&data);
                    }
                    1 => {
                        let v = rng.next() as u8;
                        h.write_tag(v);
                        r.write_tag(v);
                    }
                    2 => {
                        let v = rng.next() as u8;
                        h.write_u8(v);
                        r.write_u8(v);
                    }
                    3 => {
                        let v = rng.next() as u16;
                        h.write_u16(v);
                        r.write_u16(v);
                    }
                    4 => {
                        let v = rng.next() as u32;
                        h.write_u32(v);
                        r.write_u32(v);
                    }
                    5 => {
                        let v = rng.next();
                        h.write_u64(v);
                        r.write_u64(v);
                    }
                    6 => {
                        let v = rng.next() as i64;
                        h.write_i64(v);
                        r.write_i64(v);
                    }
                    7 => {
                        let v = rng.next().is_multiple_of(2);
                        h.write_bool(v);
                        r.write_bool(v);
                    }
                    8 => {
                        let n = (rng.next() % 19) as usize;
                        let s: String =
                            (0..n).map(|_| char::from(b'a' + (rng.next() % 26) as u8)).collect();
                        h.write_str(&s);
                        r.write_str(&s);
                    }
                    9 => {
                        let v = rng.next();
                        h.write_word(v);
                        r.write_word(v);
                    }
                    _ => {
                        let v = rng.next() as usize;
                        h.write_usize(v);
                        r.write_usize(v);
                    }
                }
            }
            assert_eq!(h.finish(), r.finish(), "divergence for op-stream seed {seed}");
        }
    }
}
