//! A stable, dependency-free 128-bit streaming hasher for cache keys.
//!
//! `std::hash::Hasher` implementations (SipHash) are randomly keyed per
//! process, so they cannot address an on-disk store. This hasher runs
//! two independently seeded FNV-1a-64 lanes over the same byte stream
//! and is bit-stable across processes, platforms and crate versions
//! (the *schema* of what gets fed into it is versioned separately via
//! [`crate::SCHEMA_VERSION`]).

/// A 128-bit content-address: the key of one cached artifact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey {
    /// High lane.
    pub hi: u64,
    /// Low lane.
    pub lo: u64,
}

impl CacheKey {
    /// Renders the key as 32 lowercase hex digits (disk file names).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl core::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
// A second, unrelated seed for the low lane (digits of pi).
const OFFSET_LO: u64 = 0x2437_54a3_2439_f31d;

/// The streaming hasher. Every `write_*` helper frames its input with a
/// type tag byte, so adjacent fields of different widths cannot alias
/// (e.g. `(u8 1, u8 2)` hashes differently from `(u16 0x0201)`).
#[derive(Clone, Debug)]
pub struct StableHasher {
    hi: u64,
    lo: u64,
    len: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> StableHasher {
        StableHasher { hi: OFFSET_HI, lo: OFFSET_LO, len: 0 }
    }

    fn byte(&mut self, b: u8) {
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.len += 1;
    }

    /// Raw bytes, length-prefixed so concatenations cannot alias.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.byte(0xB0);
        self.write_u64_raw(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
    }

    fn write_u64_raw(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// A tag byte: use to discriminate enum variants and field groups.
    pub fn write_tag(&mut self, tag: u8) {
        self.byte(0xAF);
        self.byte(tag);
    }

    /// An unsigned 8-bit value.
    pub fn write_u8(&mut self, v: u8) {
        self.byte(0xA1);
        self.byte(v);
    }

    /// An unsigned 16-bit value.
    pub fn write_u16(&mut self, v: u16) {
        self.byte(0xA2);
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// An unsigned 32-bit value.
    pub fn write_u32(&mut self, v: u32) {
        self.byte(0xA4);
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// An unsigned 64-bit value.
    pub fn write_u64(&mut self, v: u64) {
        self.byte(0xA8);
        self.write_u64_raw(v);
    }

    /// A `usize`, widened to 64 bits for cross-platform stability.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// A signed 64-bit value (covers every narrower signed width).
    pub fn write_i64(&mut self, v: i64) {
        self.byte(0xA9);
        self.write_u64_raw(v as u64);
    }

    /// A boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.byte(0xAB);
        self.byte(u8::from(v));
    }

    /// A UTF-8 string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.byte(0xAC);
        self.write_bytes(s.as_bytes());
    }

    /// Finalizes into a [`CacheKey`]. Folds the total length into both
    /// lanes so prefixes of each other cannot collide.
    #[must_use]
    pub fn finish(mut self) -> CacheKey {
        let len = self.len;
        self.write_u64_raw(len);
        CacheKey { hi: self.hi, lo: self.lo ^ self.hi.rotate_left(32) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(f: impl FnOnce(&mut StableHasher)) -> CacheKey {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = key_of(|h| h.write_str("hello"));
        let b = key_of(|h| h.write_str("hello"));
        assert_eq!(a, b);
    }

    #[test]
    fn framed_writes_do_not_alias() {
        // Two u8s vs one u16 with the same raw bytes.
        let a = key_of(|h| {
            h.write_u8(1);
            h.write_u8(2);
        });
        let b = key_of(|h| h.write_u16(0x0201));
        assert_ne!(a, b);
        // Adjacent byte strings vs one concatenated string.
        let c = key_of(|h| {
            h.write_bytes(b"ab");
            h.write_bytes(b"cd");
        });
        let d = key_of(|h| h.write_bytes(b"abcd"));
        assert_ne!(c, d);
    }

    #[test]
    fn empty_and_prefix_inputs_distinct() {
        let empty = key_of(|_| {});
        let one = key_of(|h| h.write_bool(false));
        assert_ne!(empty, one);
    }

    #[test]
    fn hex_roundtrip_is_32_digits() {
        let k = key_of(|h| h.write_u64(42));
        let hex = k.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, format!("{k}"));
    }
}
