//! The cached per-method artifact: the compiled code, its pass
//! counters, and the precomputed LTBO symbolization template.

use std::cell::RefCell;

use calibro_codegen::CompiledMethod;
use calibro_hgraph::PassStats;
use calibro_isa::Insn;
use calibro_suffix::{stable_sequence_hash, OutlineCandidate, UNIQUE_SEPARATOR_BASE};

use crate::hash::{CacheKey, StableHasher};

thread_local! {
    /// Reusable serialization buffer for [`sequence_content_key`] — the
    /// same scratch discipline as the per-method key path.
    static SCRATCH: RefCell<StableHasher> = RefCell::new(StableHasher::with_capacity(4096));
}

/// The canonical content key of one symbolized sequence — the per-member
/// Merkle leaf of a group-plan key.
///
/// Separator symbols (any symbol `>= UNIQUE_SEPARATOR_BASE`) are
/// canonicalized to a fixed tag rather than hashed by value: their
/// numbering is an artifact of symbolization order, while detection
/// results depend only on the fact that each separator is unique within
/// its group. Literal symbols (always `< 2^32`) are hashed exactly. The
/// sequence length is framed in so a sequence never collides with its
/// own prefix.
///
/// This is the single authoritative implementation; the hashes a
/// [`SymbolTemplate`] caches and the keys the outline stage composes
/// group addresses from both come from here.
#[must_use]
pub fn sequence_content_key(symbols: &[u64]) -> CacheKey {
    SCRATCH.with(|cell| {
        let mut h = cell.borrow_mut();
        h.write_tag(0x53); // 'S'
        h.write_usize(symbols.len());
        for &sym in symbols {
            if sym >= UNIQUE_SEPARATOR_BASE {
                h.write_tag(1);
            } else {
                h.write_u64(sym);
            }
        }
        h.finish_reset()
    })
}

/// One slot of a method's LTBO symbolization (§3.3.2), with the
/// config-independent structure precomputed: literal slots carry the
/// encoded instruction word, unique slots are assigned fresh separator
/// numbers at replay time. Replaying a template is byte-equivalent to
/// re-running symbolization over the method, but skips the per-word
/// metadata scans and instruction encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemplateSlot {
    /// A basic-block leader boundary: a fresh separator with no backing
    /// word (branches land here, so no repeat may span it).
    Leader,
    /// An excluded word (terminator / PC-relative site / LR user / SP
    /// writer): a fresh separator mapping back to word `0`'s field.
    Fresh {
        /// The word index the separator maps back to.
        word: u32,
    },
    /// An outlinable word: the encoded instruction, emitted verbatim.
    Lit {
        /// The encoded instruction word.
        encoded: u32,
        /// The word index.
        word: u32,
    },
}

/// The precomputed symbol sequence of one LTBO candidate method, before
/// fresh separator numbers are assigned. Computed for the unfiltered
/// (`hot = false`) case; hot-restricted methods fall back to direct
/// symbolization, which is rare by construction (§3.4.2 restricts a
/// small profiled subset).
///
/// Alongside the slots, the template caches the two canonical hashes of
/// its replay output — the [`sequence_content_key`] Merkle leaf and the
/// [`stable_sequence_hash`] partition hash. Both canonicalize separator
/// values, so they are invariant under the separator band a replay
/// draws from; caching them here takes both hash passes off the warm
/// critical path (a cache-hit method replays its template and reads the
/// hashes instead of re-hashing its whole sequence every build). The
/// fields are private and computed only by [`SymbolTemplate::new`], so
/// a template's hashes can never disagree with its slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymbolTemplate {
    /// The slots, in emission order.
    pub(crate) slots: Vec<TemplateSlot>,
    /// [`sequence_content_key`] of the replayed sequence.
    content_key: CacheKey,
    /// [`stable_sequence_hash`] of the replayed sequence.
    group_hash: u64,
}

impl SymbolTemplate {
    /// Builds a template from its slots, computing the canonical
    /// content key and partition hash of the replay output once.
    #[must_use]
    pub fn new(slots: Vec<TemplateSlot>) -> Self {
        let mut t = SymbolTemplate { slots, content_key: CacheKey { hi: 0, lo: 0 }, group_hash: 0 };
        // Any band at or above the separator base yields the same
        // canonical hashes; use the base itself.
        let mut unique = UNIQUE_SEPARATOR_BASE;
        let (symbols, _) = t.replay(&mut unique);
        t.content_key = sequence_content_key(&symbols);
        t.group_hash = stable_sequence_hash(&symbols);
        t
    }

    /// The slots, in emission order.
    #[must_use]
    pub fn slots(&self) -> &[TemplateSlot] {
        &self.slots
    }

    /// Cached [`sequence_content_key`] of the replayed sequence.
    #[must_use]
    pub fn content_key(&self) -> CacheKey {
        self.content_key
    }

    /// Cached [`stable_sequence_hash`] of the replayed sequence.
    #[must_use]
    pub fn group_hash(&self) -> u64 {
        self.group_hash
    }

    /// The code-word index symbol offset `sym` maps back to
    /// (`usize::MAX` for leader separators, which have no backing
    /// word) — exactly the value [`replay`](Self::replay)'s map records
    /// at that offset, read straight from the slots. One symbol is
    /// emitted per slot, so symbol offsets and slot indices coincide;
    /// callers holding the template never need to materialize the map.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is out of range of the replayed sequence.
    #[must_use]
    pub fn word_at(&self, sym: usize) -> usize {
        match self.slots[sym] {
            TemplateSlot::Leader => usize::MAX,
            TemplateSlot::Fresh { word } | TemplateSlot::Lit { word, .. } => word as usize,
        }
    }

    /// [`replay`](Self::replay) without materializing the word map —
    /// the warm prepass uses this and answers map lookups through
    /// [`word_at`](Self::word_at), halving the memory the per-hit
    /// replay writes.
    pub fn replay_symbols(&self, unique: &mut u64) -> Vec<u64> {
        let mut symbols = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match *slot {
                TemplateSlot::Lit { encoded, .. } => symbols.push(u64::from(encoded)),
                TemplateSlot::Leader | TemplateSlot::Fresh { .. } => {
                    *unique += 1;
                    symbols.push(*unique);
                }
            }
        }
        symbols
    }

    /// Replays the template: appends the symbol sequence and the
    /// symbol-index → word-index map, drawing fresh separator numbers
    /// from `unique` exactly as direct symbolization would.
    pub fn replay(&self, unique: &mut u64) -> (Vec<u64>, Vec<usize>) {
        let mut symbols = Vec::with_capacity(self.slots.len());
        let mut map = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match *slot {
                TemplateSlot::Leader => {
                    *unique += 1;
                    symbols.push(*unique);
                    map.push(usize::MAX);
                }
                TemplateSlot::Fresh { word } => {
                    *unique += 1;
                    symbols.push(*unique);
                    map.push(word as usize);
                }
                TemplateSlot::Lit { encoded, word } => {
                    symbols.push(u64::from(encoded));
                    map.push(word as usize);
                }
            }
        }
        (symbols, map)
    }
}

/// One cached compilation artifact: everything the codegen stage
/// produced for a method, so a warm build can skip HGraph construction,
/// the pass pipeline, code generation and LTBO symbol extraction for
/// methods whose inputs did not change.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The compiled method (code, relocations, §3.2 metadata, stack
    /// maps) exactly as codegen emitted it, pre-LTBO.
    pub compiled: CompiledMethod,
    /// Pass-pipeline counters from the cold compile, replayed into
    /// [`BuildStats`](https://docs.rs) so warm observability matches cold.
    pub pass_stats: PassStats,
    /// Precomputed LTBO symbolization (`None` when the build collected
    /// no metadata or the method is excluded from outlining).
    pub template: Option<SymbolTemplate>,
    /// Fingerprint of the *reference environment* the method's
    /// contextual verification ran against: the program-level facts
    /// (`verify_references` reads — method count, per-callee nativeness,
    /// class count, field/static bounds) that are not covered by the
    /// per-method cache key. A warm hit whose build presents the same
    /// fingerprint skips re-verifying references: both inputs to that
    /// deterministic check are unchanged, so its result is too. `0` is
    /// an ordinary value, not a sentinel — a mismatch merely re-runs the
    /// check.
    pub ref_env: u64,
}

impl CacheEntry {
    /// Approximate resident size in bytes, for the store's per-lane
    /// byte budgets. An estimate over the owned vectors — close enough
    /// for eviction pressure, not an allocator-exact measurement.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let m = &self.compiled;
        let mut bytes = 128; // struct headers and fixed fields
        bytes += m.insns.len() * 8;
        bytes += m.pool.len() * 4;
        bytes += m.relocs.len() * 24;
        bytes += m.metadata.pc_rel.len() * 16;
        bytes += m.metadata.terminators.len() * 8;
        bytes += m.metadata.embedded_data.len() * 16;
        bytes += m.metadata.slow_paths.len() * 16;
        bytes += m.stack_maps.len() * 8;
        if let Some(template) = &self.template {
            bytes += template.slots().len() * 8 + 32;
        }
        bytes
    }
}

/// One cached LTBO group plan: the outline candidates detected over a
/// group's concatenated symbol text, keyed by that text's canonicalized
/// content plus the `LtboConfig` fingerprint.
///
/// Only the candidates and the text length are cached — tags, offsets
/// and lens are positional bookkeeping tied to the *current* build's
/// method indices and are recomputed at replay
/// ([`replay_group_plan`](calibro_suffix::replay_group_plan)). The
/// candidates themselves are portable across builds whose group text
/// matches: their symbols are always literals (separators are unique,
/// so no repeated substring contains one), and their positions are
/// determined by the text alone because detection is deterministic
/// under order-isomorphic separator renumbering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupPlanEntry {
    /// Length of the concatenated group text the plan was detected on
    /// (including one joint separator per sequence).
    pub text_len: usize,
    /// The selected outline candidates, in canonical (position-sorted)
    /// order.
    pub candidates: Vec<OutlineCandidate>,
}

impl GroupPlanEntry {
    /// Approximate resident size in bytes (see
    /// [`CacheEntry::approx_bytes`]).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 64;
        for c in &self.candidates {
            bytes += 48 + c.positions.len() * 8 + c.symbols.len() * 8;
        }
        bytes
    }
}

/// One group within a cached merge plan: the representative member, the
/// members folded into it (representative included), and the positions
/// where member bodies differ (each backed by a parameter thunk slot).
/// All indices are positions within the bucket's member list, which is
/// ordered by method index and therefore stable across builds whose
/// bucket content is unchanged.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergePlanGroup {
    /// Index (within the bucket's member list) of the representative
    /// whose body becomes the shared merged island.
    pub rep: u32,
    /// Member indices folded into this group, sorted ascending; always
    /// contains `rep` and at least two entries.
    pub members: Vec<u32>,
    /// Word positions where member bodies differ (parameter slots),
    /// sorted ascending.
    pub diff_positions: Vec<u32>,
}

/// One cached function-merge plan for a single structural bucket: which
/// members merge into which groups and at which parameter positions.
/// Keyed by the merge-config fingerprint plus the ordered member body
/// hashes, so a hit proves every member body is unchanged and the plan
/// replays bit-exactly — the merge analog of [`GroupPlanEntry`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergePlanEntry {
    /// Number of members the bucket had when the plan was computed
    /// (bounds every index in `groups`).
    pub member_count: u32,
    /// The selected merge groups, in island-id order.
    pub groups: Vec<MergePlanGroup>,
}

impl MergePlanEntry {
    /// Approximate resident size in bytes (see
    /// [`CacheEntry::approx_bytes`]).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 64;
        for g in &self.groups {
            bytes += 48 + g.members.len() * 4 + g.diff_positions.len() * 4;
        }
        bytes
    }
}

/// One shared-dictionary body: the concrete instruction sequence of an
/// outlined function published by some tenant, keyed in the dict lane by
/// the 128-bit hash of its *canonicalized* (register-renamed) form. The
/// value keeps the concrete body — reuse requires an exact instruction
/// match, so a canonical-key hit with a register-renamed body falls back
/// to private outlining — plus the calling-convention metadata: which
/// concrete registers the body touches, in first-use order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DictEntry {
    /// The outlined body exactly as it appears at every call site (the
    /// trailing `br x30` is appended at island emission, not stored).
    pub insns: Vec<Insn>,
    /// Concrete renameable registers the body uses, in first-use order —
    /// the calling convention a marshalling caller would have to honour.
    pub regs: Vec<u8>,
}

impl DictEntry {
    /// Approximate resident size in bytes (see
    /// [`CacheEntry::approx_bytes`]).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        64 + self.insns.len() * 8 + self.regs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_assigns_sequential_separators() {
        let t = SymbolTemplate::new(vec![
            TemplateSlot::Lit { encoded: 7, word: 0 },
            TemplateSlot::Leader,
            TemplateSlot::Fresh { word: 1 },
            TemplateSlot::Lit { encoded: 9, word: 2 },
        ]);
        let mut unique = 100;
        let (symbols, map) = t.replay(&mut unique);
        assert_eq!(symbols, vec![7, 101, 102, 9]);
        assert_eq!(map, vec![0, usize::MAX, 1, 2]);
        assert_eq!(unique, 102);
    }

    #[test]
    fn symbols_only_replay_matches_full_replay() {
        let t = SymbolTemplate::new(vec![
            TemplateSlot::Lit { encoded: 7, word: 0 },
            TemplateSlot::Leader,
            TemplateSlot::Fresh { word: 1 },
            TemplateSlot::Lit { encoded: 9, word: 2 },
        ]);
        let mut a = 500;
        let mut b = 500;
        let (symbols, map) = t.replay(&mut a);
        assert_eq!(t.replay_symbols(&mut b), symbols);
        assert_eq!(a, b);
        for (sym, &word) in map.iter().enumerate() {
            assert_eq!(t.word_at(sym), word);
        }
    }

    #[test]
    fn cached_hashes_match_any_replay_band() {
        // The cached hashes must equal a direct hash of the replay
        // output no matter which separator band the replay draws from —
        // this is the invariant that lets the warm path trust them.
        let t = SymbolTemplate::new(vec![
            TemplateSlot::Lit { encoded: 7, word: 0 },
            TemplateSlot::Leader,
            TemplateSlot::Fresh { word: 1 },
            TemplateSlot::Lit { encoded: 9, word: 2 },
            TemplateSlot::Fresh { word: 3 },
        ]);
        for band in [0u64, 1 << 24, 1835 << 24] {
            let mut unique = UNIQUE_SEPARATOR_BASE + band;
            let (symbols, _) = t.replay(&mut unique);
            assert_eq!(t.content_key(), sequence_content_key(&symbols), "band {band}");
            assert_eq!(t.group_hash(), stable_sequence_hash(&symbols), "band {band}");
        }
    }

    #[test]
    fn content_key_distinguishes_literals_but_not_separator_values() {
        let lit = |encoded| TemplateSlot::Lit { encoded, word: 0 };
        let a = SymbolTemplate::new(vec![lit(7), TemplateSlot::Leader, lit(9)]);
        let b = SymbolTemplate::new(vec![lit(7), TemplateSlot::Fresh { word: 2 }, lit(9)]);
        // Leader and Fresh both replay to a fresh separator, and
        // separators are canonicalized — same content key.
        assert_eq!(a.content_key(), b.content_key());
        assert_eq!(a.group_hash(), b.group_hash());
        let c = SymbolTemplate::new(vec![lit(8), TemplateSlot::Leader, lit(9)]);
        assert_ne!(a.content_key(), c.content_key());
    }
}
