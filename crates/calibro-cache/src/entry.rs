//! The cached per-method artifact: the compiled code, its pass
//! counters, and the precomputed LTBO symbolization template.

use calibro_codegen::CompiledMethod;
use calibro_hgraph::PassStats;
use calibro_suffix::OutlineCandidate;

/// One slot of a method's LTBO symbolization (§3.3.2), with the
/// config-independent structure precomputed: literal slots carry the
/// encoded instruction word, unique slots are assigned fresh separator
/// numbers at replay time. Replaying a template is byte-equivalent to
/// re-running symbolization over the method, but skips the per-word
/// metadata scans and instruction encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemplateSlot {
    /// A basic-block leader boundary: a fresh separator with no backing
    /// word (branches land here, so no repeat may span it).
    Leader,
    /// An excluded word (terminator / PC-relative site / LR user / SP
    /// writer): a fresh separator mapping back to word `0`'s field.
    Fresh {
        /// The word index the separator maps back to.
        word: u32,
    },
    /// An outlinable word: the encoded instruction, emitted verbatim.
    Lit {
        /// The encoded instruction word.
        encoded: u32,
        /// The word index.
        word: u32,
    },
}

/// The precomputed symbol sequence of one LTBO candidate method, before
/// fresh separator numbers are assigned. Computed for the unfiltered
/// (`hot = false`) case; hot-restricted methods fall back to direct
/// symbolization, which is rare by construction (§3.4.2 restricts a
/// small profiled subset).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymbolTemplate {
    /// The slots, in emission order.
    pub slots: Vec<TemplateSlot>,
}

impl SymbolTemplate {
    /// Replays the template: appends the symbol sequence and the
    /// symbol-index → word-index map, drawing fresh separator numbers
    /// from `unique` exactly as direct symbolization would.
    pub fn replay(&self, unique: &mut u64) -> (Vec<u64>, Vec<usize>) {
        let mut symbols = Vec::with_capacity(self.slots.len());
        let mut map = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            match *slot {
                TemplateSlot::Leader => {
                    *unique += 1;
                    symbols.push(*unique);
                    map.push(usize::MAX);
                }
                TemplateSlot::Fresh { word } => {
                    *unique += 1;
                    symbols.push(*unique);
                    map.push(word as usize);
                }
                TemplateSlot::Lit { encoded, word } => {
                    symbols.push(u64::from(encoded));
                    map.push(word as usize);
                }
            }
        }
        (symbols, map)
    }
}

/// One cached compilation artifact: everything the codegen stage
/// produced for a method, so a warm build can skip HGraph construction,
/// the pass pipeline, code generation and LTBO symbol extraction for
/// methods whose inputs did not change.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The compiled method (code, relocations, §3.2 metadata, stack
    /// maps) exactly as codegen emitted it, pre-LTBO.
    pub compiled: CompiledMethod,
    /// Pass-pipeline counters from the cold compile, replayed into
    /// [`BuildStats`](https://docs.rs) so warm observability matches cold.
    pub pass_stats: PassStats,
    /// Precomputed LTBO symbolization (`None` when the build collected
    /// no metadata or the method is excluded from outlining).
    pub template: Option<SymbolTemplate>,
}

/// One cached LTBO group plan: the outline candidates detected over a
/// group's concatenated symbol text, keyed by that text's canonicalized
/// content plus the `LtboConfig` fingerprint.
///
/// Only the candidates and the text length are cached — tags, offsets
/// and lens are positional bookkeeping tied to the *current* build's
/// method indices and are recomputed at replay
/// ([`replay_group_plan`](calibro_suffix::replay_group_plan)). The
/// candidates themselves are portable across builds whose group text
/// matches: their symbols are always literals (separators are unique,
/// so no repeated substring contains one), and their positions are
/// determined by the text alone because detection is deterministic
/// under order-isomorphic separator renumbering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupPlanEntry {
    /// Length of the concatenated group text the plan was detected on
    /// (including one joint separator per sequence).
    pub text_len: usize,
    /// The selected outline candidates, in canonical (position-sorted)
    /// order.
    pub candidates: Vec<OutlineCandidate>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_assigns_sequential_separators() {
        let t = SymbolTemplate {
            slots: vec![
                TemplateSlot::Lit { encoded: 7, word: 0 },
                TemplateSlot::Leader,
                TemplateSlot::Fresh { word: 1 },
                TemplateSlot::Lit { encoded: 9, word: 2 },
            ],
        };
        let mut unique = 100;
        let (symbols, map) = t.replay(&mut unique);
        assert_eq!(symbols, vec![7, 101, 102, 9]);
        assert_eq!(map, vec![0, usize::MAX, 1, 2]);
        assert_eq!(unique, 102);
    }
}
