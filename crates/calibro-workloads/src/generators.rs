//! Pluggable program generators for the conformance harness.
//!
//! The motif-based [`generate`](crate::generate) models whole apps; the
//! targeted generators here aim at the three ART-specific patterns the
//! paper's CTO outlines (§3.1) — the `ArtMethod` Java-call sequence, the
//! `x19`-relative runtime entrypoint call, and the stack-overflow check —
//! so that every CTO/LTBO interaction around those patterns is hit even
//! at small corpus sizes. Each generator is a pure function of its seed.

use std::collections::HashMap;

use calibro_dex::{
    BinOp, ClassId, Cmp, DexFile, DexInsn, FieldId, InvokeKind, Method, MethodBuilder, MethodId,
    StaticId, VReg,
};
use calibro_runtime::{NativeMethod, RuntimeEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{generate, App, AppSpec, TraceCall};

/// A seeded source of conformance-test programs.
///
/// Implementations must be deterministic: the same seed always yields
/// the same [`App`] (dex, environment, and trace), and the generated dex
/// must pass [`calibro_dex::verify`] with a trace that terminates under
/// the baseline build.
pub trait ProgramGen {
    /// Stable generator name, recorded in regression-corpus seed lines.
    fn name(&self) -> &'static str;
    /// Generates the program for `seed`.
    fn generate(&self, seed: u64) -> App;
}

/// Every generator, in corpus order. The conformance driver cycles
/// through these so each seed batch covers app-shaped redundancy and all
/// three targeted ART patterns.
#[must_use]
pub fn all_generators() -> Vec<Box<dyn ProgramGen>> {
    vec![
        Box::new(MotifAppGen),
        Box::new(ArtCallGen),
        Box::new(EntrypointGen),
        Box::new(StackCheckGen),
    ]
}

/// Looks a generator up by its [`ProgramGen::name`] (used when replaying
/// regression-corpus seed lines).
#[must_use]
pub fn generator_by_name(name: &str) -> Option<Box<dyn ProgramGen>> {
    all_generators().into_iter().find(|g| g.name() == name)
}

/// The app-shaped generator: drives [`generate`] with redundancy /
/// hotness knobs themselves derived from the seed, so consecutive seeds
/// explore different motif-pool sizes, switch densities and call
/// fractions rather than one fixed spec.
pub struct MotifAppGen;

impl ProgramGen for MotifAppGen {
    fn name(&self) -> &'static str {
        "motif-app"
    }

    fn generate(&self, seed: u64) -> App {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_7469); // "moti"
        let spec = AppSpec {
            name: format!("motif-app-{seed}"),
            seed,
            methods: rng.gen_range(24..72),
            classes: rng.gen_range(2..6),
            natives: rng.gen_range(0..4),
            motif_pool: rng.gen_range(4..24),
            motifs_per_method: (1, rng.gen_range(3..7)),
            switch_fraction: rng.gen_range(0.0..0.15),
            call_fraction: rng.gen_range(0.2..0.7),
            trace_len: 40,
            hot_skew: rng.gen_range(0.8..1.8),
            filler_per_segment: (2, rng.gen_range(6..20)),
            clone_families: rng.gen_range(0..4),
        };
        generate(&spec)
    }
}

/// Targets the **`ArtMethod` call** pattern (paper Figure 4a): layers of
/// small methods invoking earlier methods through the `ArtMethod` table,
/// so the load-table / load-entry / `blr` sequence repeats densely and
/// LTBO must preserve call metadata while outlining around it.
pub struct ArtCallGen;

impl ProgramGen for ArtCallGen {
    fn name(&self) -> &'static str {
        "art-call"
    }

    fn generate(&self, seed: u64) -> App {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6172_7463); // "artc"
        let mut dex = DexFile::new();
        let class = dex.add_class("Calls", 3);
        dex.reserve_statics(2);

        // Leaf layer: pure arithmetic, no calls.
        let leaves = rng.gen_range(3..6);
        for i in 0..leaves {
            let mut b = MethodBuilder::new(format!("leaf{i}"), 6, 2);
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(4), b: VReg(5) });
            for _ in 0..rng.gen_range(1..4) {
                let ops = [BinOp::Xor, BinOp::Sub, BinOp::Mul, BinOp::Or];
                b.push(DexInsn::BinLit {
                    op: ops[rng.gen_range(0..ops.len())],
                    dst: VReg(0),
                    a: VReg(0),
                    lit: rng.gen_range(-256..256),
                });
            }
            b.push(DexInsn::Return { src: VReg(0) });
            dex.add_method(b.build(class));
        }

        // Caller layers: each method invokes several earlier methods —
        // every invoke lowers to the ArtMethod-call sequence.
        let callers = rng.gen_range(4..10);
        for i in 0..callers {
            let id = leaves + i;
            let mut b = MethodBuilder::new(format!("caller{i}"), 8, 2);
            b.push(DexInsn::Move { dst: VReg(4), src: VReg(6) });
            b.push(DexInsn::Const { dst: VReg(0), value: rng.gen_range(-8..8) });
            for _ in 0..rng.gen_range(2..5) {
                let callee = MethodId(rng.gen_range(0..id) as u32);
                let kind = if rng.gen_bool(0.5) { InvokeKind::Virtual } else { InvokeKind::Static };
                b.push(DexInsn::Invoke {
                    kind,
                    method: callee,
                    args: vec![VReg(0), VReg(4)],
                    dst: Some(VReg(1)),
                });
                b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
            }
            b.push(DexInsn::Return { src: VReg(0) });
            dex.add_method(b.build(class));
        }

        let env = standard_env(&dex);
        let trace = layered_trace(&mut rng, leaves + callers, 24);
        App { name: format!("art-call-{seed}"), dex, env, trace }
    }
}

/// Targets the **`x19` entrypoint call** pattern (paper Figure 4b):
/// allocation, division slow paths, explicit throws and JNI bridges, all
/// of which load a runtime entrypoint from the thread register and `blr`
/// to it.
pub struct EntrypointGen;

impl ProgramGen for EntrypointGen {
    fn name(&self) -> &'static str {
        "entrypoint"
    }

    fn generate(&self, seed: u64) -> App {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6570_6373); // "epcs"
        let mut dex = DexFile::new();
        let classes: Vec<ClassId> = (0..3).map(|i| dex.add_class(format!("E{i}"), 2 + i)).collect();
        dex.reserve_statics(4);

        // One JNI native: its call sites lower to the bridge entrypoint.
        let native = dex.add_method(Method {
            id: MethodId(0),
            class: classes[0],
            name: "nativeHash".to_owned(),
            num_regs: 0,
            num_args: 2,
            insns: vec![],
            is_native: true,
        });

        let methods = rng.gen_range(6..12);
        for k in 0..methods {
            let mut b = MethodBuilder::new(format!("ep{k}"), 8, 2);
            b.push(DexInsn::Move { dst: VReg(4), src: VReg(6) });
            b.push(DexInsn::Move { dst: VReg(5), src: VReg(7) });
            b.push(DexInsn::Const { dst: VReg(0), value: rng.gen_range(-16..16) });
            for _ in 0..rng.gen_range(2..6) {
                match rng.gen_range(0..4) {
                    0 => {
                        // Allocation entrypoint + field traffic.
                        let c = classes[rng.gen_range(0..classes.len())];
                        b.push(DexInsn::NewInstance { dst: VReg(1), class: c });
                        b.push(DexInsn::IPut { src: VReg(4), obj: VReg(1), field: FieldId(0) });
                        b.push(DexInsn::IGet { dst: VReg(2), obj: VReg(1), field: FieldId(0) });
                        b.push(DexInsn::Bin {
                            op: BinOp::Add,
                            dst: VReg(0),
                            a: VReg(0),
                            b: VReg(2),
                        });
                    }
                    1 => {
                        // Division: the div-by-zero check calls the throw
                        // entrypoint on its slow path. Divisor forced odd.
                        b.push(DexInsn::BinLit { op: BinOp::Or, dst: VReg(2), a: VReg(5), lit: 1 });
                        b.push(DexInsn::Bin {
                            op: BinOp::Div,
                            dst: VReg(0),
                            a: VReg(0),
                            b: VReg(2),
                        });
                    }
                    2 => {
                        // JNI bridge entrypoint.
                        b.push(DexInsn::InvokeNative {
                            method: native,
                            args: vec![VReg(0), VReg(4)],
                            dst: Some(VReg(0)),
                        });
                    }
                    _ => {
                        // Guarded explicit throw: deliver-exception
                        // entrypoint; taken only for very negative args so
                        // most trace calls return normally.
                        let skip = b.label();
                        b.push(DexInsn::BinLit {
                            op: BinOp::Add,
                            dst: VReg(3),
                            a: VReg(4),
                            lit: 19,
                        });
                        b.if_z(Cmp::Ge, VReg(3), skip);
                        b.push(DexInsn::Const { dst: VReg(3), value: k as i32 + 1 });
                        b.push(DexInsn::Throw { src: VReg(3) });
                        b.bind(skip);
                    }
                }
            }
            // Static traffic so state divergence is visible in snapshots.
            let slot = StaticId(rng.gen_range(0..4));
            b.push(DexInsn::SGet { dst: VReg(2), slot });
            b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(2), a: VReg(2), b: VReg(0) });
            b.push(DexInsn::SPut { src: VReg(2), slot });
            b.push(DexInsn::Return { src: VReg(0) });
            dex.add_method(b.build(classes[k % classes.len()]));
        }

        let env = standard_env(&dex);
        let first_java = 1; // the native holds id 0
        let mut trace = Vec::new();
        for _ in 0..20 {
            trace.push(TraceCall {
                method: MethodId(rng.gen_range(first_java..first_java + methods) as u32),
                args: [rng.gen_range(-24..24), rng.gen_range(-8..24)],
            });
        }
        App { name: format!("entrypoint-{seed}"), dex, env, trace }
    }
}

/// Targets the **stack-overflow check** pattern (paper Figure 4c): deep
/// chains of methods with large spilling frames, so every prologue emits
/// the stack-limit probe and LTBO sees it at method starts over and
/// over.
pub struct StackCheckGen;

impl ProgramGen for StackCheckGen {
    fn name(&self) -> &'static str {
        "stack-check"
    }

    fn generate(&self, seed: u64) -> App {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7374_6b63); // "stkc"
        let mut dex = DexFile::new();
        let class = dex.add_class("Deep", 2);
        dex.reserve_statics(1);

        let depth = rng.gen_range(8..20);
        for k in 0..depth {
            // Oversized frames (v0..v9 live + 2 args) force spilling
            // prologues with the stack-overflow check.
            let num_regs: u16 = 10 + (rng.gen_range(0..3) * 2);
            let mut b = MethodBuilder::new(format!("deep{k}"), num_regs, 2);
            b.push(DexInsn::Move { dst: VReg(4), src: VReg(num_regs - 2) });
            b.push(DexInsn::Move { dst: VReg(5), src: VReg(num_regs - 1) });
            b.push(DexInsn::Const { dst: VReg(0), value: k });
            // Keep many registers live across the call to widen the frame.
            for r in 6..(num_regs - 2).min(9) {
                b.push(DexInsn::BinLit { op: BinOp::Add, dst: VReg(r), a: VReg(4), lit: r as i16 });
            }
            if k > 0 {
                // Chain downward: deep{k} calls deep{k-1}.
                b.push(DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: MethodId(k as u32 - 1),
                    args: vec![VReg(4), VReg(5)],
                    dst: Some(VReg(1)),
                });
                b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
            }
            for r in 6..(num_regs - 2).min(9) {
                b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(0), a: VReg(0), b: VReg(r) });
            }
            b.push(DexInsn::Return { src: VReg(0) });
            dex.add_method(b.build(class));
        }

        let env = standard_env(&dex);
        let mut trace = Vec::new();
        for _ in 0..12 {
            // Mostly enter at the deepest method to maximize live frames.
            let m = if rng.gen_bool(0.7) { depth - 1 } else { rng.gen_range(0..depth) };
            trace.push(TraceCall {
                method: MethodId(m as u32),
                args: [rng.gen_range(-50..50), rng.gen_range(-50..50)],
            });
        }
        App { name: format!("stack-check-{seed}"), dex, env, trace }
    }
}

/// Builds the runtime environment every targeted generator uses: class
/// sizes from the dex, the shared native cycle from [`generate`], and
/// statics initialized to the same `3i + 1` ramp. Public so emitted
/// conformance reproducers can reconstruct the exact environment from a
/// dex alone.
#[must_use]
pub fn standard_env(dex: &DexFile) -> RuntimeEnv {
    let mut natives = HashMap::new();
    for (i, m) in dex.methods().iter().filter(|m| m.is_native).enumerate() {
        let func: fn(&[i32]) -> i32 = match i % 3 {
            0 => |a| a[0].wrapping_mul(31).wrapping_add(a[1]),
            1 => |a| a[0] ^ a[1].rotate_left(7),
            _ => |a| a[0].wrapping_sub(a[1]).wrapping_mul(17),
        };
        natives.insert(m.id.0, NativeMethod { arity: 2, func });
    }
    RuntimeEnv {
        class_sizes: dex.classes().iter().map(calibro_dex::Class::instance_size).collect(),
        natives,
        statics: (0..dex.num_statics()).map(|i| i as i32 * 3 + 1).collect(),
        icache: true,
    }
}

/// A trace over methods `0..count` biased towards the later (deeper)
/// layers.
fn layered_trace(rng: &mut StdRng, count: usize, len: usize) -> Vec<TraceCall> {
    (0..len)
        .map(|_| {
            let m = if rng.gen_bool(0.75) {
                rng.gen_range(count.saturating_sub(4)..count)
            } else {
                rng.gen_range(0..count)
            };
            TraceCall {
                method: MethodId(m as u32),
                args: [rng.gen_range(-30..30), rng.gen_range(-30..30)],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_verify() {
        for g in all_generators() {
            for seed in [0, 1, 7] {
                let a = g.generate(seed);
                let b = g.generate(seed);
                assert_eq!(a.dex.total_insns(), b.dex.total_insns(), "{}", g.name());
                assert_eq!(a.trace, b.trace, "{}", g.name());
                calibro_dex::verify(&a.dex)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", g.name()));
                for call in &a.trace {
                    assert!(call.method.index() < a.dex.methods().len());
                    assert!(!a.dex.method(call.method).is_native);
                }
            }
        }
    }

    #[test]
    fn generator_lookup_by_name() {
        for g in all_generators() {
            assert_eq!(generator_by_name(g.name()).unwrap().name(), g.name());
        }
        assert!(generator_by_name("no-such-generator").is_none());
    }

    #[test]
    fn targeted_generators_contain_their_pattern_material() {
        let art = ArtCallGen.generate(3);
        let invokes = art
            .dex
            .methods()
            .iter()
            .flat_map(|m| &m.insns)
            .filter(|i| matches!(i, DexInsn::Invoke { .. }))
            .count();
        assert!(invokes >= 8, "art-call should be invoke-dense, got {invokes}");

        let ep = EntrypointGen.generate(3);
        let entry_ops = ep
            .dex
            .methods()
            .iter()
            .flat_map(|m| &m.insns)
            .filter(|i| {
                matches!(
                    i,
                    DexInsn::NewInstance { .. }
                        | DexInsn::Throw { .. }
                        | DexInsn::InvokeNative { .. }
                        | DexInsn::Bin { op: BinOp::Div, .. }
                )
            })
            .count();
        assert!(entry_ops >= 6, "entrypoint generator should emit entrypoint ops");

        let deep = StackCheckGen.generate(3);
        assert!(deep.dex.methods().iter().all(|m| m.num_regs >= 10));
    }
}
