//! # calibro-workloads
//!
//! Deterministic synthetic Android applications for the Calibro
//! reproduction. The paper evaluates on six commercial apps from the
//! OPPO App Market (Toutiao, Taobao, Fanqie/Tomato Novel, Meituan,
//! Kuaishou, WeChat); those APKs are proprietary, so this crate
//! generates seeded stand-ins whose *redundancy structure* matches the
//! paper's observations:
//!
//! * ART-specific patterns (Java calls, runtime entrypoint calls,
//!   stack-overflow checks) arise naturally from `Invoke`/`NewInstance`
//!   lowering — Observation 3;
//! * short cross-method repeats come from a shared "motif" pool drawn
//!   with a skewed distribution — Observations 1-2 (short sequences,
//!   high repeat counts);
//! * a small fraction of methods carries switches (indirect jumps) and
//!   JNI natives, exercising the paper's exclusion flags;
//! * a seeded usage trace with a skewed method popularity distribution
//!   drives the Table 5/7 runs and the `HfOpti` profiling loop.
//!
//! Relative app sizes are proportional to the paper's Table 4 baseline
//! OAT sizes, scaled down to simulator-friendly magnitudes.

#![warn(missing_docs)]

pub mod generators;

use std::collections::HashMap;

use calibro_dex::{
    BinOp, ClassId, Cmp, DexFile, DexInsn, FieldId, InvokeKind, Method, MethodBuilder, MethodId,
    StaticId, VReg,
};
use calibro_runtime::{NativeMethod, RuntimeEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic application.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of non-native methods.
    pub methods: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of JNI native methods.
    pub natives: usize,
    /// Size of the shared motif pool.
    pub motif_pool: usize,
    /// Motifs inserted per method (min, max).
    pub motifs_per_method: (usize, usize),
    /// Probability that a method carries a switch (indirect jump).
    pub switch_fraction: f64,
    /// Probability of emitting a call segment.
    pub call_fraction: f64,
    /// Number of top-level invocations in the usage trace.
    pub trace_len: usize,
    /// Popularity skew: weight of rank `r` is `1 / (r + 1)^skew`.
    pub hot_skew: f64,
    /// Unique filler instructions emitted per segment (min, max) —
    /// dilutes redundancy towards the paper's measured levels.
    pub filler_per_segment: (usize, usize),
    /// Number of clone families: groups of 3-5 near-identical
    /// straight-line methods differing only in one or two immediate
    /// constants — the function-merge backend's material (real apps get
    /// these from monomorphized generics and copy-pasted utilities).
    pub clone_families: usize,
}

impl AppSpec {
    /// A small spec for tests and examples.
    #[must_use]
    pub fn small(name: &str, seed: u64) -> AppSpec {
        AppSpec {
            name: name.to_owned(),
            seed,
            methods: 60,
            classes: 4,
            natives: 2,
            motif_pool: 12,
            motifs_per_method: (2, 5),
            switch_fraction: 0.05,
            call_fraction: 0.5,
            trace_len: 60,
            hot_skew: 1.2,
            filler_per_segment: (12, 24),
            clone_families: 2,
        }
    }
}

/// One top-level call in the usage trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCall {
    /// Entry method.
    pub method: MethodId,
    /// Its two arguments.
    pub args: [i32; 2],
}

/// A generated application.
#[derive(Debug)]
pub struct App {
    /// Display name.
    pub name: String,
    /// The bytecode container.
    pub dex: DexFile,
    /// Runtime environment (class sizes, natives, statics).
    pub env: RuntimeEnv,
    /// The seeded usage trace.
    pub trace: Vec<TraceCall>,
}

/// The six paper apps with baseline OAT sizes proportional to Table 4
/// (357M, 225M, 264M, 247M, 612M, 388M), scaled by `methods_per_unit`
/// methods per MB-of-paper-baseline.
#[must_use]
pub fn paper_suite(methods_per_unit: f64) -> Vec<AppSpec> {
    let table4_mb = [
        ("toutiao", 357.0, 11u64),
        ("taobao", 225.0, 22),
        ("fanqie", 264.0, 33),
        ("meituan", 247.0, 44),
        ("kuaishou", 612.0, 55),
        ("wechat", 388.0, 66),
    ];
    table4_mb
        .into_iter()
        .map(|(name, mb, seed)| {
            let methods = (mb * methods_per_unit).round() as usize;
            AppSpec {
                name: name.to_owned(),
                seed,
                methods: methods.max(30),
                classes: (methods / 25).max(3),
                natives: (methods / 60).max(1),
                motif_pool: 40,
                motifs_per_method: (2, 6),
                switch_fraction: 0.04,
                call_fraction: 0.45,
                // The paper's uiautomator scripts exercise apps broadly;
                // cover a large share of entry points.
                trace_len: (methods / 2).max(160),
                hot_skew: 1.5,
                filler_per_segment: (12, 24),
                clone_families: (methods / 60).max(2),
            }
        })
        .collect()
}

/// A straight-line instruction snippet reused across methods.
type Motif = Vec<DexInsn>;

fn generate_motifs(rng: &mut StdRng, count: usize) -> Vec<Motif> {
    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor];
    (0..count)
        .map(|_| {
            let len = rng.gen_range(3..=8);
            (0..len)
                .map(|_| {
                    if rng.gen_bool(0.25) {
                        DexInsn::BinLit {
                            op: ops[rng.gen_range(0..ops.len())],
                            dst: VReg(rng.gen_range(0..4)),
                            a: VReg(rng.gen_range(0..6)),
                            lit: rng.gen_range(1..64),
                        }
                    } else {
                        DexInsn::Bin {
                            op: ops[rng.gen_range(0..ops.len())],
                            dst: VReg(rng.gen_range(0..4)),
                            a: VReg(rng.gen_range(0..6)),
                            b: VReg(rng.gen_range(0..6)),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Picks an index with weight `1 / (i + 1)^skew`.
fn skewed_index(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    n - 1
}

/// Generates an application from its spec (fully deterministic).
#[must_use]
pub fn generate(spec: &AppSpec) -> App {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut dex = DexFile::new();
    let motifs = generate_motifs(&mut rng, spec.motif_pool);

    let classes: Vec<ClassId> =
        (0..spec.classes).map(|i| dex.add_class(format!("C{i}"), 2 + (i as u32 % 4))).collect();
    let num_statics = 8;
    dex.reserve_statics(num_statics);

    // Native methods first (ids 0..natives).
    let mut native_ids = Vec::new();
    for i in 0..spec.natives {
        let id = dex.add_method(Method {
            id: MethodId(0),
            class: classes[i % classes.len()],
            name: format!("native{i}"),
            num_regs: 0,
            num_args: 2,
            insns: vec![],
            is_native: true,
        });
        native_ids.push(id);
    }

    // Java methods; method k may only call methods with smaller ids
    // (acyclic by construction, so every trace terminates).
    let first_java = native_ids.len() as u32;
    for k in 0..spec.methods {
        let id = first_java + k as u32;
        let class = classes[rng.gen_range(0..classes.len())];
        // Vary the frame shape: 6..=8 register-homed, occasionally a
        // spilling method — prologues/epilogues then differ by class,
        // as across real compiled apps.
        let num_regs: u16 = *[6, 6, 7, 7, 8, 8, 8, 10].get(rng.gen_range(0..8)).unwrap();
        let mut b = MethodBuilder::new(format!("m{id}"), num_regs, 2);
        b.push(DexInsn::Move { dst: VReg(4), src: VReg(num_regs - 2) });
        b.push(DexInsn::Move { dst: VReg(5), src: VReg(num_regs - 1) });
        b.push(DexInsn::Const { dst: VReg(0), value: rng.gen_range(-64..64) });
        // Motifs read v0..v5 freely; seed the locals so every read is
        // definitely assigned (the verifier rejects reads of undefined
        // registers, whose contents would be build-dependent).
        for r in 1..4 {
            b.push(DexInsn::Const { dst: VReg(r), value: rng.gen_range(-8..8) });
        }

        if rng.gen_bool(spec.switch_fraction) {
            let arms: Vec<_> = (0..3).map(|_| b.label()).collect();
            let done = b.label();
            b.switch(VReg(4), 0, &arms);
            for (ai, arm) in arms.iter().enumerate() {
                b.bind(*arm);
                b.push(DexInsn::Const { dst: VReg(1), value: ai as i32 * 10 });
                b.goto(done);
            }
            b.bind(done);
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
        }

        let segments = rng.gen_range(spec.motifs_per_method.0..=spec.motifs_per_method.1);
        for _ in 0..segments {
            // Unique filler: a live computation chain through v0 that
            // repeats nowhere else, diluting redundancy like real app
            // logic. Keeping everything data-dependent on the arguments
            // stops the optimizer from folding or eliminating it.
            let filler = rng.gen_range(spec.filler_per_segment.0..=spec.filler_per_segment.1);
            let ops = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Or, BinOp::Mul];
            b.push(DexInsn::Bin {
                op: BinOp::Add,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(if rng.gen_bool(0.5) { 4 } else { 5 }),
            });
            for _ in 0..filler {
                b.push(DexInsn::BinLit {
                    op: ops[rng.gen_range(0..ops.len())],
                    dst: VReg(0),
                    a: VReg(0),
                    lit: rng.gen_range(-2048..2048),
                });
            }
            // Motif, drawn with skew so a few motifs dominate
            // (Observation 2: short sequences, high repeat counts).
            // Some segments are pure app logic with no shared motif.
            if rng.gen_bool(0.3) {
                // no motif in this segment
            } else {
                let motif = &motifs[skewed_index(&mut rng, motifs.len(), 1.1)];
                if rng.gen_bool(0.35) {
                    // Guarded variant: same motif body inside a branch.
                    let skip = b.label();
                    b.if_z(Cmp::Lt, VReg(rng.gen_range(4..6)), skip);
                    for insn in motif {
                        b.push(insn.clone());
                    }
                    b.bind(skip);
                } else {
                    for insn in motif {
                        b.push(insn.clone());
                    }
                }
            }

            match rng.gen_range(0..10) {
                0 | 1 => {
                    // Allocation + field traffic.
                    let class_idx = rng.gen_range(0..classes.len());
                    b.push(DexInsn::NewInstance { dst: VReg(1), class: classes[class_idx] });
                    b.push(DexInsn::IPut { src: VReg(0), obj: VReg(1), field: FieldId(0) });
                    b.push(DexInsn::IGet { dst: VReg(2), obj: VReg(1), field: FieldId(0) });
                    b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(2) });
                }
                2 => {
                    // Static traffic.
                    let slot = StaticId(rng.gen_range(0..num_statics));
                    b.push(DexInsn::SGet { dst: VReg(2), slot });
                    b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(2), a: VReg(2), b: VReg(0) });
                    b.push(DexInsn::SPut { src: VReg(2), slot });
                }
                3 => {
                    // Division (slow path material); divisor forced odd.
                    b.push(DexInsn::BinLit { op: BinOp::Or, dst: VReg(2), a: VReg(5), lit: 1 });
                    b.push(DexInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(0), b: VReg(2) });
                }
                4 if !native_ids.is_empty() => {
                    let native = native_ids[rng.gen_range(0..native_ids.len())];
                    b.push(DexInsn::InvokeNative {
                        method: native,
                        args: vec![VReg(0), VReg(4)],
                        dst: Some(VReg(0)),
                    });
                }
                _ => {}
            }

            if id > first_java && rng.gen_bool(spec.call_fraction) {
                // Call an earlier Java method; callee popularity is
                // skewed so some methods become very hot.
                let range = id - first_java;
                let offset = skewed_index(&mut rng, range as usize, spec.hot_skew);
                let callee = MethodId(first_java + offset as u32);
                b.push(DexInsn::Invoke {
                    kind: if rng.gen_bool(0.5) { InvokeKind::Virtual } else { InvokeKind::Static },
                    method: callee,
                    args: vec![VReg(0), VReg(5)],
                    dst: Some(VReg(3)),
                });
                b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(3) });
            }
        }
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }

    // Clone families: straight-line near-duplicates that differ only in
    // one or two immediate constants. Constants are drawn from
    // 4097..65535 avoiding multiples of 4096 so they are never
    // imm12-encodable (they stay a plain `movz`, the shape the merge
    // backend parameterizes) and never need a literal pool.
    for f in 0..spec.clone_families {
        let family = rng.gen_range(3..=5);
        let len = rng.gen_range(8..=16);
        let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Xor];
        let template: Vec<(BinOp, u16)> =
            (0..len).map(|_| (ops[rng.gen_range(0..ops.len())], rng.gen_range(4..6))).collect();
        let diffs = rng.gen_range(1..=2usize).min(len);
        let mut diff_at: Vec<usize> = Vec::new();
        while diff_at.len() < diffs {
            let at = rng.gen_range(0..len);
            if !diff_at.contains(&at) {
                diff_at.push(at);
            }
        }
        for c in 0..family {
            // num_regs = 6 homes both args in v4/v5 directly.
            let mut b = MethodBuilder::new(format!("clone{f}_{c}"), 6, 2);
            b.push(DexInsn::Const { dst: VReg(0), value: f as i32 + 1 });
            for (i, &(op, src)) in template.iter().enumerate() {
                if diff_at.contains(&i) {
                    let k = loop {
                        let k = rng.gen_range(4097..=65535);
                        if k % 4096 != 0 {
                            break k;
                        }
                    };
                    b.push(DexInsn::Const { dst: VReg(1), value: k });
                    b.push(DexInsn::Bin { op, dst: VReg(0), a: VReg(0), b: VReg(1) });
                } else {
                    b.push(DexInsn::Bin { op, dst: VReg(0), a: VReg(0), b: VReg(src) });
                }
            }
            b.push(DexInsn::Return { src: VReg(0) });
            dex.add_method(b.build(classes[f % classes.len()]));
        }
    }

    // Runtime environment.
    let mut natives = HashMap::new();
    for (i, id) in native_ids.iter().enumerate() {
        let func: fn(&[i32]) -> i32 = match i % 3 {
            0 => |a| a[0].wrapping_mul(31).wrapping_add(a[1]),
            1 => |a| a[0] ^ a[1].rotate_left(7),
            _ => |a| a[0].wrapping_sub(a[1]).wrapping_mul(17),
        };
        natives.insert(id.0, NativeMethod { arity: 2, func });
    }
    let env = RuntimeEnv {
        class_sizes: dex.classes().iter().map(calibro_dex::Class::instance_size).collect(),
        natives,
        statics: (0..dex.num_statics()).map(|i| i as i32 * 3 + 1).collect(),
        icache: true,
    };

    // Usage trace. Like the paper's uiautomator scripts, the workload
    // first exercises the app broadly (every Java method is entered at
    // least once), then spends the bulk of its time in a skewed hot set
    // (later methods call more code, so the tail is weighted).
    let total_methods = dex.methods().len();
    let java_count = total_methods - first_java as usize;
    let mut trace = Vec::with_capacity(java_count + spec.trace_len);
    for k in 0..java_count {
        trace.push(TraceCall {
            method: MethodId((first_java as usize + k) as u32),
            args: [rng.gen_range(-20..20), rng.gen_range(1..20)],
        });
    }
    for _ in 0..spec.trace_len {
        // Prefer methods near the end of the table (deep call trees,
        // and — when present — the merge backend's clone families).
        let back = skewed_index(&mut rng, java_count, spec.hot_skew);
        let method = MethodId((total_methods - 1 - back) as u32);
        trace.push(TraceCall { method, args: [rng.gen_range(-20..20), rng.gen_range(1..20)] });
    }

    App { name: spec.name.clone(), dex, env, trace }
}

/// Deterministically mutates roughly `fraction` of the app's Java
/// methods in place — the incremental-rebuild workload: an app update
/// touches a small slice of the code while everything else stays
/// byte-identical. Each selected method has the literal of its first
/// `Const` or `BinLit` instruction flipped, which changes its bytecode
/// (and therefore its content hash) without affecting verifiability.
/// Returns the mutated method ids, in id order.
///
/// The same `(seed, fraction)` always picks the same methods, so warm
/// and cold builds of the mutated file see identical inputs.
pub fn mutate_methods(dex: &mut DexFile, seed: u64, fraction: f64) -> Vec<MethodId> {
    let java: Vec<MethodId> = dex.methods().iter().filter(|m| !m.is_native).map(|m| m.id).collect();
    if java.is_empty() {
        return Vec::new();
    }
    let want = ((java.len() as f64 * fraction).ceil() as usize).clamp(1, java.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mutated = Vec::new();
    let mut tried = std::collections::HashSet::new();
    while mutated.len() < want && tried.len() < java.len() {
        let id = java[rng.gen_range(0..java.len())];
        if !tried.insert(id) {
            continue;
        }
        let method = dex.method_mut(id);
        let flipped = method.insns.iter_mut().find_map(|insn| match insn {
            DexInsn::Const { value, .. } => {
                *value ^= 1;
                Some(())
            }
            DexInsn::BinLit { lit, .. } => {
                *lit ^= 1;
                Some(())
            }
            _ => None,
        });
        if flipped.is_some() {
            mutated.push(id);
        }
    }
    mutated.sort_unstable();
    mutated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = AppSpec::small("t", 42);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.dex.total_insns(), b.dex.total_insns());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn generated_apps_verify() {
        for seed in 0..5 {
            let app = generate(&AppSpec::small("t", seed));
            calibro_dex::verify(&app.dex).unwrap();
        }
    }

    #[test]
    fn trace_targets_exist_and_natives_are_registered() {
        let app = generate(&AppSpec::small("t", 7));
        for call in &app.trace {
            assert!(call.method.index() < app.dex.methods().len());
            assert!(!app.dex.method(call.method).is_native, "trace calls Java methods");
        }
        for m in app.dex.methods().iter().filter(|m| m.is_native) {
            assert!(app.env.natives.contains_key(&m.id.0), "native {} unregistered", m.id);
        }
    }

    #[test]
    fn paper_suite_sizes_are_proportional() {
        let suite = paper_suite(1.0);
        assert_eq!(suite.len(), 6);
        let kuaishou = suite.iter().find(|s| s.name == "kuaishou").unwrap();
        let taobao = suite.iter().find(|s| s.name == "taobao").unwrap();
        assert!(kuaishou.methods > 2 * taobao.methods);
    }

    #[test]
    fn apps_contain_exclusion_material() {
        let app = generate(&AppSpec::small("t", 11));
        let has_native = app.dex.methods().iter().any(|m| m.is_native);
        assert!(has_native);
    }

    #[test]
    fn mutate_methods_is_deterministic_and_small() {
        let spec = AppSpec::small("t", 3);
        let mut a = generate(&spec).dex;
        let mut b = generate(&spec).dex;
        let ma = mutate_methods(&mut a, 99, 0.05);
        let mb = mutate_methods(&mut b, 99, 0.05);
        assert_eq!(ma, mb, "same seed must pick the same methods");
        assert!(!ma.is_empty() && ma.len() <= a.methods().len() / 10);
        calibro_dex::verify(&a).unwrap();
        // Untouched methods stay byte-identical to the original.
        let fresh = generate(&spec).dex;
        for m in a.methods() {
            let same = m.insns == fresh.method(m.id).insns;
            assert_eq!(same, !ma.contains(&m.id), "method {} mutation state", m.id);
        }
    }
}
