//! Tests for code generation: ART pattern emission, CTO substitution,
//! and LTBO.1 metadata correctness.

use calibro_codegen::{
    compile_method, compile_native_stub, layout, thunk_code, CallTarget, CodegenOptions,
    CompiledMethod, ThunkKind,
};
use calibro_dex::{BinOp, ClassId, Cmp, DexInsn, InvokeKind, MethodBuilder, MethodId, VReg};
use calibro_hgraph::build_hgraph;
use calibro_isa::{Insn, Reg};

fn opts_baseline() -> CodegenOptions {
    CodegenOptions { cto: false, collect_metadata: true }
}

fn opts_cto() -> CodegenOptions {
    CodegenOptions { cto: true, collect_metadata: true }
}

fn compile(
    insns: Vec<DexInsn>,
    num_regs: u16,
    num_args: u16,
    opts: &CodegenOptions,
) -> CompiledMethod {
    let mut b = MethodBuilder::new("t", num_regs, num_args);
    for i in insns {
        b.push(i);
    }
    let graph = build_hgraph(&b.build(ClassId(0)));
    compile_method(&graph, opts)
}

fn caller_body() -> Vec<DexInsn> {
    vec![
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: MethodId(1),
            args: vec![VReg(1)],
            dst: Some(VReg(0)),
        },
        DexInsn::Return { src: VReg(0) },
    ]
}

/// Counts consecutive instruction pairs matching the Figure 4a pattern.
fn count_java_call_pattern(code: &[Insn]) -> usize {
    code.windows(2)
        .filter(|w| {
            matches!(
                w[0],
                Insn::LdrImm { wide: true, rt, rn, offset }
                    if rt == Reg::LR && rn == Reg::X0 && offset == layout::ART_METHOD_ENTRY_OFFSET
            ) && matches!(w[1], Insn::Blr { rn } if rn == Reg::LR)
        })
        .count()
}

fn count_stack_check_pattern(code: &[Insn]) -> usize {
    code.windows(2)
        .filter(|w| {
            matches!(w[0], Insn::SubImm { rd, rn, imm12, shift12: true, .. }
                if rd == Reg::X16 && rn == Reg::SP && imm12 == 2)
                && matches!(w[1], Insn::LdrImm { wide: false, rt, rn, offset: 0 }
                    if rt == Reg::ZR && rn == Reg::X16)
        })
        .count()
}

#[test]
fn baseline_emits_figure_4a_and_4c_patterns() {
    let m = compile(caller_body(), 2, 1, &opts_baseline());
    assert_eq!(count_java_call_pattern(&m.insns), 1, "one Java call pattern");
    assert_eq!(count_stack_check_pattern(&m.insns), 1, "non-leaf prologue check");
    assert!(
        m.relocs.iter().all(|r| !matches!(r.target, CallTarget::Thunk(_))),
        "no thunk relocs in baseline"
    );
}

#[test]
fn cto_replaces_patterns_with_thunk_calls() {
    let m = compile(caller_body(), 2, 1, &opts_cto());
    assert_eq!(count_java_call_pattern(&m.insns), 0);
    assert_eq!(count_stack_check_pattern(&m.insns), 0);
    let thunks: Vec<ThunkKind> = m
        .relocs
        .iter()
        .filter_map(|r| match r.target {
            CallTarget::Thunk(t) => Some(t),
            _ => None,
        })
        .collect();
    assert!(thunks.contains(&ThunkKind::JavaEntry));
    assert!(thunks.contains(&ThunkKind::StackCheck));
}

#[test]
fn cto_code_is_smaller() {
    let baseline = compile(caller_body(), 2, 1, &opts_baseline());
    let cto = compile(caller_body(), 2, 1, &opts_cto());
    // Each pattern is 2 insns -> 1 bl; two patterns here.
    assert_eq!(baseline.insns.len() - cto.insns.len(), 2);
}

#[test]
fn leaf_methods_skip_the_stack_check() {
    let leaf = vec![
        DexInsn::BinLit { op: BinOp::Add, dst: VReg(0), a: VReg(1), lit: 1 },
        DexInsn::Return { src: VReg(0) },
    ];
    let m = compile(leaf, 2, 1, &opts_baseline());
    assert_eq!(count_stack_check_pattern(&m.insns), 0);
}

#[test]
fn allocation_emits_runtime_call_pattern() {
    let body = vec![
        DexInsn::NewInstance { dst: VReg(0), class: ClassId(0) },
        DexInsn::Return { src: VReg(0) },
    ];
    let m = compile(body, 1, 0, &opts_baseline());
    let has_pattern = m.insns.windows(2).any(|w| {
        matches!(w[0], Insn::LdrImm { wide: true, rt, rn, offset }
            if rt == Reg::LR && rn == Reg::X19 && offset == layout::EP_ALLOC_OBJECT)
            && matches!(w[1], Insn::Blr { rn } if rn == Reg::LR)
    });
    assert!(has_pattern, "Figure 4b pattern for pAllocObjectResolved");
}

#[test]
fn division_produces_slow_path_metadata() {
    let body = vec![
        DexInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(1), b: VReg(2) },
        DexInsn::Return { src: VReg(0) },
    ];
    let m = compile(body, 3, 2, &opts_baseline());
    assert_eq!(m.metadata.slow_paths.len(), 1);
    let (start, end) = m.metadata.slow_paths[0];
    assert!(end > start);
    // The slow path calls the div-zero entrypoint.
    let slow = &m.insns[start..end];
    assert!(slow.iter().any(|i| matches!(
        i,
        Insn::LdrImm { rn, offset, .. } if *rn == Reg::X19 && *offset == layout::EP_THROW_DIV_ZERO
    )));
    // And ends before a Brk guard boundary recorded as terminator.
    assert!(m.metadata.terminators.iter().any(|&t| t == end - 1 || t == end));
}

#[test]
fn switch_sets_indirect_jump_flag() {
    let mut b = MethodBuilder::new("sw", 2, 1);
    let a0 = b.label();
    let a1 = b.label();
    let end = b.label();
    b.switch(VReg(1), 0, &[a0, a1]);
    b.bind(a0);
    b.push(DexInsn::Const { dst: VReg(0), value: 1 });
    b.goto(end);
    b.bind(a1);
    b.push(DexInsn::Const { dst: VReg(0), value: 2 });
    b.bind(end);
    b.push(DexInsn::Return { src: VReg(0) });
    let graph = build_hgraph(&b.build(ClassId(0)));
    let m = compile_method(&graph, &opts_baseline());
    assert!(m.metadata.has_indirect_jump);
    assert!(m.insns.iter().any(|i| i.is_indirect_jump()));
}

#[test]
fn pc_rel_metadata_covers_every_internal_branch() {
    let body = vec![
        DexInsn::IfZ { cmp: Cmp::Eq, a: VReg(1), target: 3 },
        DexInsn::Const { dst: VReg(0), value: 1 },
        DexInsn::Goto { target: 4 },
        DexInsn::Const { dst: VReg(0), value: 2 },
        DexInsn::Return { src: VReg(0) },
    ];
    let m = compile(body, 2, 1, &opts_baseline());
    for (idx, insn) in m.insns.iter().enumerate() {
        if insn.is_pc_relative() && !insn.is_call() {
            let rec = m
                .metadata
                .pc_rel
                .iter()
                .find(|p| p.at == idx)
                .unwrap_or_else(|| panic!("unrecorded PC-relative insn at {idx}: {insn}"));
            // The recorded target matches the instruction's offset.
            let expected = (rec.target as i64 - idx as i64) * 4;
            assert_eq!(insn.pc_rel_offset(), Some(expected));
        }
    }
}

#[test]
fn terminator_metadata_matches_code() {
    let m = compile(caller_body(), 2, 1, &opts_baseline());
    for (idx, insn) in m.insns.iter().enumerate() {
        let recorded = m.metadata.terminators.contains(&idx);
        let expected = insn.is_terminator() || matches!(insn, Insn::Brk { .. });
        assert_eq!(recorded, expected, "at {idx}: {insn}");
    }
}

#[test]
fn dual_half_constants_use_the_literal_pool() {
    let body =
        vec![DexInsn::Const { dst: VReg(0), value: 0x1234_5678 }, DexInsn::Return { src: VReg(0) }];
    let m = compile(body, 1, 0, &opts_baseline());
    assert_eq!(m.pool, vec![0x1234_5678]);
    assert_eq!(m.metadata.embedded_data, vec![(m.insns.len(), 1)]);
    // An LdrLit points at the pool word.
    let lit = m
        .insns
        .iter()
        .enumerate()
        .find(|(_, i)| matches!(i, Insn::LdrLit { .. }))
        .expect("literal load");
    let rec = m.metadata.pc_rel.iter().find(|p| p.at == lit.0).expect("pool pc-rel record");
    assert_eq!(rec.target, m.insns.len(), "target is the first pool word");
}

#[test]
fn stack_maps_follow_calls() {
    let m = compile(caller_body(), 2, 1, &opts_baseline());
    assert!(!m.stack_maps.is_empty());
    for sm in &m.stack_maps {
        let word = (sm.native_offset / 4) as usize;
        assert!(word > 0 && word <= m.insns.len());
        assert!(m.insns[word - 1].is_call(), "stack map not after a call");
    }
}

#[test]
fn native_stub_is_flagged_and_bridges() {
    let m = compile_native_stub(MethodId(7), &opts_baseline());
    assert!(m.metadata.is_native_stub);
    assert!(m.insns.iter().any(|i| matches!(
        i,
        Insn::LdrImm { rn, offset, .. } if *rn == Reg::X19 && *offset == layout::EP_NATIVE_BRIDGE
    )));
    assert!(matches!(m.insns.last(), Some(Insn::Ret { .. })));
}

#[test]
fn thunks_are_bl_compatible() {
    // Every thunk must neither write x30 (so the bl return address
    // survives) nor touch sp.
    for kind in [
        ThunkKind::JavaEntry,
        ThunkKind::RuntimeEntry(layout::EP_ALLOC_OBJECT),
        ThunkKind::StackCheck,
    ] {
        let code = thunk_code(kind);
        for insn in &code {
            assert!(!insn.writes_lr(), "{kind:?}: {insn} clobbers lr");
        }
        // Ends in an indirect branch (tail call or return).
        assert!(matches!(code.last(), Some(Insn::Br { .. })));
    }
}

#[test]
fn generated_code_encodes_and_decodes() {
    let bodies: Vec<Vec<DexInsn>> = vec![
        caller_body(),
        vec![
            DexInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(1), b: VReg(2) },
            DexInsn::Return { src: VReg(0) },
        ],
        vec![DexInsn::Const { dst: VReg(0), value: 0x7fff_fff1 }, DexInsn::Return { src: VReg(0) }],
    ];
    for body in bodies {
        let m = compile(body, 3, 2, &opts_baseline());
        for insn in &m.insns {
            let word = insn.encode().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(calibro_isa::decode(word).unwrap(), *insn);
        }
    }
}

#[test]
fn spilled_registers_roundtrip_through_the_frame() {
    // 12 virtual registers forces frame slots for v8..v11.
    let body = vec![
        DexInsn::Const { dst: VReg(9), value: 7 },
        DexInsn::BinLit { op: BinOp::Add, dst: VReg(10), a: VReg(9), lit: 1 },
        DexInsn::Return { src: VReg(10) },
    ];
    let m = compile(body, 12, 1, &opts_baseline());
    // Spill stores and reloads must exist.
    assert!(m.insns.iter().any(|i| matches!(i, Insn::StrImm { rn, .. } if rn.is_reg31())));
    assert!(m.insns.iter().any(|i| matches!(i, Insn::LdrImm { rn, .. } if rn.is_reg31() )));
}
