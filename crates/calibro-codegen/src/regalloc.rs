//! Virtual-register home assignment and frame layout.
//!
//! A deliberately simple allocator in the spirit of ART's baseline
//! compiler: the first eight virtual registers live in the callee-saved
//! range `x20..x27`, the rest spill to frame slots. Determinism matters
//! more than quality here — identical method shapes must produce
//! identical machine code, which is precisely what makes whole-program
//! outlining profitable.

use calibro_dex::VReg;
use calibro_isa::Reg;

/// Where a virtual register lives during execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Home {
    /// A callee-saved physical register.
    Reg(Reg),
    /// A frame slot at `[sp, #offset]` (byte offset).
    Slot(u16),
}

/// First callee-saved register used for virtual-register homes.
const FIRST_HOME_REG: u8 = 20;
/// Number of register homes (`x20..=x27`).
const NUM_HOME_REGS: u16 = 8;

/// The frame plan for one method.
#[derive(Clone, Debug)]
pub struct Frame {
    homes: Vec<Home>,
    /// Callee-saved registers that must be preserved in the prologue.
    saved_regs: Vec<Reg>,
    /// Total frame size in bytes (16-byte aligned, includes fp/lr pair).
    frame_size: u16,
}

impl Frame {
    /// Plans the frame for a method with `num_regs` virtual registers.
    ///
    /// Frame layout (offsets from `sp` after the prologue's pre-indexed
    /// push):
    ///
    /// ```text
    /// [sp, #0]            saved x29
    /// [sp, #8]            saved x30
    /// [sp, #16 + 8*i]     saved callee-saved home register i
    /// [sp, #16 + 8*n + 8*j]  spill slot j
    /// ```
    #[must_use]
    pub fn plan(num_regs: u16) -> Frame {
        let reg_homes = num_regs.min(NUM_HOME_REGS);
        let spills = num_regs - reg_homes;
        let saved_regs: Vec<Reg> =
            (0..reg_homes).map(|i| Reg::new(FIRST_HOME_REG + i as u8)).collect();
        let spill_base = 16 + 8 * reg_homes;
        let mut homes = Vec::with_capacity(num_regs as usize);
        for v in 0..num_regs {
            if v < reg_homes {
                homes.push(Home::Reg(saved_regs[v as usize]));
            } else {
                homes.push(Home::Slot(spill_base + 8 * (v - reg_homes)));
            }
        }
        let raw = 16 + 8 * reg_homes + 8 * spills;
        let frame_size = (raw + 15) & !15;
        Frame { homes, saved_regs, frame_size }
    }

    /// The home of a virtual register.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn home(&self, v: VReg) -> Home {
        self.homes[v.index()]
    }

    /// Callee-saved registers to preserve, in save order.
    #[must_use]
    pub fn saved_regs(&self) -> &[Reg] {
        &self.saved_regs
    }

    /// Byte offset of the save slot for `saved_regs()[i]`.
    #[must_use]
    pub fn save_slot(&self, i: usize) -> u16 {
        16 + 8 * i as u16
    }

    /// Total frame size in bytes.
    #[must_use]
    pub fn size(&self) -> u16 {
        self.frame_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_methods_live_in_registers() {
        let f = Frame::plan(4);
        assert_eq!(f.home(VReg(0)), Home::Reg(Reg::X20));
        assert_eq!(f.home(VReg(3)), Home::Reg(Reg::X23));
        assert_eq!(f.saved_regs().len(), 4);
        // 16 (fp/lr) + 32 (saves) = 48, already 16-aligned.
        assert_eq!(f.size(), 48);
    }

    #[test]
    fn large_methods_spill() {
        let f = Frame::plan(11);
        assert_eq!(f.home(VReg(7)), Home::Reg(Reg::X27));
        assert_eq!(f.home(VReg(8)), Home::Slot(16 + 64));
        assert_eq!(f.home(VReg(10)), Home::Slot(16 + 64 + 16));
        // 16 + 64 + 24 = 104 -> 112 after alignment.
        assert_eq!(f.size(), 112);
    }

    #[test]
    fn frame_is_16_byte_aligned() {
        for n in 0..20 {
            assert_eq!(Frame::plan(n).size() % 16, 0, "num_regs = {n}");
        }
    }

    #[test]
    fn zero_reg_method() {
        let f = Frame::plan(0);
        assert!(f.saved_regs().is_empty());
        assert_eq!(f.size(), 16);
    }
}
