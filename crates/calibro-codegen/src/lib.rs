//! # calibro-codegen
//!
//! HGraph -> AArch64 code generation for the reproduction's `dex2oat`,
//! including:
//!
//! * emission of the three ART-specific repetitive patterns the paper's
//!   Observation 3 identifies (Figure 4): the Java call through
//!   `ArtMethod`, the runtime entrypoint call through the thread register
//!   `x19`, and the stack-overflow check;
//! * **CTO** (§3.1) — compilation-time outlining of those patterns into
//!   shared thunks called with a single `bl`;
//! * **LTBO.1** (§3.2) — collection of the link-time metadata: embedded
//!   data, PC-relative instructions with targets, terminators, indirect-
//!   jump and native flags, and slow-path ranges;
//! * stack maps for every call site (§3.5).
//!
//! # Examples
//!
//! ```
//! use calibro_codegen::{compile_method, CodegenOptions};
//! use calibro_dex::{ClassId, DexInsn, MethodBuilder, VReg};
//! use calibro_hgraph::build_hgraph;
//!
//! let mut b = MethodBuilder::new("add1", 2, 1);
//! b.push(DexInsn::BinLit {
//!     op: calibro_dex::BinOp::Add,
//!     dst: VReg(0),
//!     a: VReg(1),
//!     lit: 1,
//! });
//! b.push(DexInsn::Return { src: VReg(0) });
//! let graph = build_hgraph(&b.build(ClassId(0)));
//! let compiled = compile_method(&graph, &CodegenOptions::default());
//! assert!(compiled.insns.len() > 4); // prologue + body + epilogue
//! ```

#![warn(missing_docs)]

mod codegen;
mod compiled;
pub mod layout;
mod regalloc;

pub use codegen::{compile_method, compile_native_stub, thunk_code, CodegenOptions};
pub use compiled::{
    CallTarget, CompiledMethod, MethodMetadata, PcRel, Reloc, StackMapEntry, ThunkKind,
};
pub use regalloc::{Frame, Home};
