//! HGraph -> AArch64 code generation, including the three ART-specific
//! repetitive patterns (Figure 4) and their compilation-time outlining
//! (CTO, §3.1), plus LTBO.1 metadata collection (§3.2).

use calibro_dex::{BinOp, ClassId, Cmp, MethodId, VReg};
use calibro_hgraph::{BlockId, HGraph, HInsn, HTerminator};
use calibro_isa::{Cond, Insn, PairMode, Reg};

use crate::compiled::{
    CallTarget, CompiledMethod, MethodMetadata, PcRel, Reloc, StackMapEntry, ThunkKind,
};
use crate::layout;
use crate::regalloc::{Frame, Home};

/// Code-generation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodegenOptions {
    /// Enable compilation-time outlining of the three ART patterns
    /// (§3.1). When set, pattern occurrences compile to a single `bl` to
    /// a shared thunk; the linker emits each used thunk once.
    pub cto: bool,
    /// Collect LTBO.1 metadata (§3.2). Always cheap; kept optional so the
    /// baseline configuration matches the paper's unmodified AOSP.
    pub collect_metadata: bool,
}

/// The machine code of a CTO pattern thunk (§3.1). `bl`-compatible: the
/// return address installed by the caller's `bl` flows through.
#[must_use]
pub fn thunk_code(kind: ThunkKind) -> Vec<Insn> {
    match kind {
        ThunkKind::JavaEntry => vec![
            Insn::LdrImm {
                wide: true,
                rt: Reg::X16,
                rn: Reg::X0,
                offset: layout::ART_METHOD_ENTRY_OFFSET,
            },
            Insn::Br { rn: Reg::X16 },
        ],
        ThunkKind::RuntimeEntry(offset) => vec![
            Insn::LdrImm { wide: true, rt: Reg::X16, rn: Reg::X19, offset },
            Insn::Br { rn: Reg::X16 },
        ],
        ThunkKind::StackCheck => vec![
            Insn::SubImm {
                wide: true,
                set_flags: false,
                rd: Reg::X16,
                rn: Reg::SP,
                imm12: (layout::STACK_GUARD_BYTES >> 12) as u16,
                shift12: true,
            },
            Insn::LdrImm { wide: false, rt: Reg::ZR, rn: Reg::X16, offset: 0 },
            Insn::Br { rn: Reg::LR },
        ],
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Lab(usize);

struct SlowPath {
    label: Lab,
    entrypoint: u16,
    dex_pc: u32,
}

struct Emitter<'a> {
    opts: &'a CodegenOptions,
    frame: &'a Frame,
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Lab)>,
    pool: Vec<u32>,
    pool_fixups: Vec<(usize, usize)>, // (insn index, pool index)
    relocs: Vec<Reloc>,
    stack_maps: Vec<StackMapEntry>,
    slow_paths: Vec<SlowPath>,
    slow_ranges: Vec<(usize, usize)>,
    has_indirect_jump: bool,
}

impl<'a> Emitter<'a> {
    fn new(opts: &'a CodegenOptions, frame: &'a Frame) -> Emitter<'a> {
        Emitter {
            opts,
            frame,
            insns: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            pool: Vec::new(),
            pool_fixups: Vec::new(),
            relocs: Vec::new(),
            stack_maps: Vec::new(),
            slow_paths: Vec::new(),
            slow_ranges: Vec::new(),
            has_indirect_jump: false,
        }
    }

    fn label(&mut self) -> Lab {
        self.labels.push(None);
        Lab(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Lab) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.insns.len());
    }

    fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    fn emit_branch(&mut self, insn: Insn, target: Lab) {
        self.fixups.push((self.insns.len(), target));
        self.insns.push(insn);
    }

    /// Emits a `bl` with a linker relocation and a stack-map entry.
    fn emit_call_reloc(&mut self, target: CallTarget, dex_pc: u32) {
        self.relocs.push(Reloc { at: self.insns.len(), target });
        self.insns.push(Insn::Bl { offset: 0 });
        self.push_stack_map(dex_pc);
    }

    fn push_stack_map(&mut self, dex_pc: u32) {
        self.stack_maps.push(StackMapEntry { native_offset: self.insns.len() as u32 * 4, dex_pc });
    }

    /// Materializes a 32-bit constant into `dst` (w view). Dual-half
    /// constants go through the literal pool, exercising the paper's
    /// embedded-data metadata.
    fn emit_const(&mut self, dst: Reg, value: i32) {
        let u = value as u32;
        if u & 0xffff_0000 == 0 {
            self.emit(Insn::Movz { wide: false, rd: dst, imm16: u as u16, hw: 0 });
        } else if u & 0x0000_ffff == 0 {
            self.emit(Insn::Movz { wide: false, rd: dst, imm16: (u >> 16) as u16, hw: 1 });
        } else if u >> 16 == 0xffff {
            self.emit(Insn::Movn { wide: false, rd: dst, imm16: !(u as u16), hw: 0 });
        } else {
            // Literal pool load: `ldr w, <pool>` — a PC-relative
            // instruction whose target is embedded data.
            let idx = match self.pool.iter().position(|&w| w == u) {
                Some(i) => i,
                None => {
                    self.pool.push(u);
                    self.pool.len() - 1
                }
            };
            self.pool_fixups.push((self.insns.len(), idx));
            self.insns.push(Insn::LdrLit { wide: false, rt: dst, offset: 0 });
        }
    }

    /// Reads virtual register `v`, returning the register that now holds
    /// it (`scratch` for frame-homed registers).
    fn read(&mut self, v: VReg, scratch: Reg) -> Reg {
        match self.frame.home(v) {
            Home::Reg(r) => r,
            Home::Slot(offset) => {
                self.emit(Insn::LdrImm { wide: false, rt: scratch, rn: Reg::SP, offset });
                scratch
            }
        }
    }

    /// Reads `v` *into a specific register* (for argument staging).
    fn read_into(&mut self, v: VReg, dst: Reg) {
        match self.frame.home(v) {
            Home::Reg(r) => {
                if r != dst {
                    self.emit(mov_reg(dst, r));
                }
            }
            Home::Slot(offset) => {
                self.emit(Insn::LdrImm { wide: false, rt: dst, rn: Reg::SP, offset });
            }
        }
    }

    /// Register the result of an operation on `v` should be computed
    /// into.
    fn write_target(&self, v: VReg) -> Reg {
        match self.frame.home(v) {
            Home::Reg(r) => r,
            Home::Slot(_) => Reg::X8,
        }
    }

    /// Completes a write: spills `src` if `v` is frame-homed, or moves it
    /// if it landed in the wrong register.
    fn finish_write(&mut self, v: VReg, src: Reg) {
        match self.frame.home(v) {
            Home::Reg(r) => {
                if r != src {
                    self.emit(mov_reg(r, src));
                }
            }
            Home::Slot(offset) => {
                self.emit(Insn::StrImm { wide: false, rt: src, rn: Reg::SP, offset });
            }
        }
    }

    /// Emits the Figure 4a Java-call pattern (or its CTO form).
    fn emit_java_call(&mut self, dex_pc: u32) {
        if self.opts.cto {
            self.emit_call_reloc(CallTarget::Thunk(ThunkKind::JavaEntry), dex_pc);
        } else {
            self.emit(Insn::LdrImm {
                wide: true,
                rt: Reg::LR,
                rn: Reg::X0,
                offset: layout::ART_METHOD_ENTRY_OFFSET,
            });
            self.emit(Insn::Blr { rn: Reg::LR });
            self.push_stack_map(dex_pc);
        }
    }

    /// Emits the Figure 4b runtime-call pattern (or its CTO form).
    fn emit_runtime_call(&mut self, entrypoint: u16, dex_pc: u32) {
        if self.opts.cto {
            self.emit_call_reloc(CallTarget::Thunk(ThunkKind::RuntimeEntry(entrypoint)), dex_pc);
        } else {
            self.emit(Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X19, offset: entrypoint });
            self.emit(Insn::Blr { rn: Reg::LR });
            self.push_stack_map(dex_pc);
        }
    }

    /// Emits the Figure 4c stack-overflow check (or its CTO form).
    fn emit_stack_check(&mut self, dex_pc: u32) {
        if self.opts.cto {
            self.emit_call_reloc(CallTarget::Thunk(ThunkKind::StackCheck), dex_pc);
        } else {
            self.emit(Insn::SubImm {
                wide: true,
                set_flags: false,
                rd: Reg::X16,
                rn: Reg::SP,
                imm12: (layout::STACK_GUARD_BYTES >> 12) as u16,
                shift12: true,
            });
            self.emit(Insn::LdrImm { wide: false, rt: Reg::ZR, rn: Reg::X16, offset: 0 });
        }
    }

    /// Requests a slow path ending in a throwing runtime call; returns
    /// the label a guard should branch to.
    fn request_slow_path(&mut self, entrypoint: u16, dex_pc: u32) -> Lab {
        let label = self.label();
        self.slow_paths.push(SlowPath { label, entrypoint, dex_pc });
        label
    }

    /// Emits all pending slow paths (at the end of the method).
    fn flush_slow_paths(&mut self) {
        let pending = std::mem::take(&mut self.slow_paths);
        for sp in pending {
            let start = self.insns.len();
            self.bind(sp.label);
            self.emit_runtime_call(sp.entrypoint, sp.dex_pc);
            // Unreachable guard: the throw entrypoints never return.
            self.emit(Insn::Brk { imm: 0xdead });
            self.slow_ranges.push((start, self.insns.len()));
        }
    }

    /// Loads the callee's `ArtMethod*` into `x0` (through the thread's
    /// method table).
    fn emit_load_art_method(&mut self, callee: MethodId) {
        self.emit(Insn::LdrImm {
            wide: true,
            rt: Reg::X16,
            rn: Reg::X19,
            offset: layout::THREAD_METHOD_TABLE,
        });
        let table_offset = layout::method_table_offset(callee);
        if table_offset < 4096 * 8 {
            self.emit(Insn::LdrImm {
                wide: true,
                rt: Reg::X0,
                rn: Reg::X16,
                offset: table_offset as u16,
            });
        } else {
            self.emit_const(Reg::X17, table_offset as i32);
            self.emit(Insn::AddReg {
                wide: true,
                set_flags: false,
                rd: Reg::X16,
                rn: Reg::X16,
                rm: Reg::X17,
                shift: 0,
            });
            self.emit(Insn::LdrImm { wide: true, rt: Reg::X0, rn: Reg::X16, offset: 0 });
        }
    }

    /// Resolves fixups and produces the compiled method.
    fn finish(mut self, method: MethodId, is_native_stub: bool) -> CompiledMethod {
        let code_len = self.insns.len();
        let mut pc_rel = Vec::with_capacity(self.fixups.len() + self.pool_fixups.len());
        for &(at, label) in &self.fixups {
            let target = self.labels[label.0].expect("unbound codegen label");
            let offset = (target as i64 - at as i64) * 4;
            self.insns[at] = self.insns[at].with_pc_rel_offset(offset);
            pc_rel.push(PcRel { at, target });
        }
        for &(at, pool_idx) in &self.pool_fixups {
            let target = code_len + pool_idx;
            let offset = (target as i64 - at as i64) * 4;
            self.insns[at] = self.insns[at].with_pc_rel_offset(offset);
            pc_rel.push(PcRel { at, target });
        }
        pc_rel.sort_by_key(|p| p.at);

        let terminators: Vec<usize> = self
            .insns
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_terminator() || matches!(i, Insn::Brk { .. }))
            .map(|(idx, _)| idx)
            .collect();

        let embedded_data =
            if self.pool.is_empty() { Vec::new() } else { vec![(code_len, self.pool.len())] };

        let metadata = if self.opts.collect_metadata {
            MethodMetadata {
                pc_rel,
                terminators,
                embedded_data,
                has_indirect_jump: self.has_indirect_jump,
                is_native_stub,
                slow_paths: self.slow_ranges.clone(),
            }
        } else {
            MethodMetadata {
                // Even the baseline keeps enough structure to link
                // (nothing): baseline never runs LTBO.
                ..MethodMetadata::default()
            }
        };

        self.stack_maps.sort_by_key(|s| s.native_offset);
        CompiledMethod {
            method,
            insns: self.insns,
            pool: self.pool,
            relocs: self.relocs,
            metadata,
            stack_maps: self.stack_maps,
        }
    }
}

fn mov_reg(dst: Reg, src: Reg) -> Insn {
    Insn::OrrReg { wide: false, rd: dst, rn: Reg::ZR, rm: src, shift: 0 }
}

fn cond_of(cmp: Cmp) -> Cond {
    match cmp {
        Cmp::Eq => Cond::Eq,
        Cmp::Ne => Cond::Ne,
        Cmp::Lt => Cond::Lt,
        Cmp::Ge => Cond::Ge,
        Cmp::Gt => Cond::Gt,
        Cmp::Le => Cond::Le,
    }
}

/// Compiles an optimized HGraph to machine code.
///
/// # Panics
///
/// Panics on malformed graphs (run [`calibro_hgraph::check`] first) and
/// on operands that exceed the supported encoding ranges (e.g. more than
/// 4095 instance fields).
#[must_use]
pub fn compile_method(graph: &HGraph, opts: &CodegenOptions) -> CompiledMethod {
    let frame = Frame::plan(graph.num_regs);
    let mut e = Emitter::new(opts, &frame);
    let mut dex_pc: u32 = 0;

    // Per-block labels + the shared epilogue label.
    let block_labels: Vec<Lab> = graph.blocks.iter().map(|_| e.label()).collect();
    let epilogue = e.label();

    // --- Prologue ----------------------------------------------------
    e.emit(Insn::Stp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::SP,
        offset: -(frame.size() as i16),
        mode: PairMode::PreIndex,
    });
    if graph.has_calls() {
        e.emit_stack_check(dex_pc);
    }
    e.emit(Insn::AddImm {
        wide: true,
        set_flags: false,
        rd: Reg::FP,
        rn: Reg::SP,
        imm12: 0,
        shift12: false,
    });
    for (i, &r) in frame.saved_regs().iter().enumerate() {
        e.emit(Insn::StrImm { wide: true, rt: r, rn: Reg::SP, offset: frame.save_slot(i) });
    }
    // Arguments arrive in x1..x{n}; move them to their homes.
    let first_arg = graph.num_regs - graph.num_args;
    for i in 0..graph.num_args {
        let v = VReg(first_arg + i);
        let src = Reg::new(1 + i as u8);
        e.finish_write(v, src);
    }

    // --- Body ----------------------------------------------------------
    for block in &graph.blocks {
        e.bind(block_labels[block.id.index()]);
        for insn in &block.insns {
            dex_pc += 1;
            lower_insn(&mut e, insn, dex_pc);
        }
        dex_pc += 1;
        lower_terminator(
            &mut e,
            graph,
            block.id,
            &block.terminator,
            &block_labels,
            epilogue,
            dex_pc,
        );
    }

    // --- Epilogue ------------------------------------------------------
    e.bind(epilogue);
    for (i, &r) in frame.saved_regs().iter().enumerate().rev() {
        e.emit(Insn::LdrImm { wide: true, rt: r, rn: Reg::SP, offset: frame.save_slot(i) });
    }
    e.emit(Insn::Ldp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::SP,
        offset: frame.size() as i16,
        mode: PairMode::PostIndex,
    });
    e.emit(Insn::Ret { rn: Reg::LR });

    // --- Slow paths and literal pool ------------------------------------
    e.flush_slow_paths();

    e.finish(graph.method, false)
}

fn lower_insn(e: &mut Emitter<'_>, insn: &HInsn, dex_pc: u32) {
    match insn {
        HInsn::Const { dst, value } => {
            let target = e.write_target(*dst);
            e.emit_const(target, *value);
            e.finish_write(*dst, target);
        }
        HInsn::Move { dst, src } => {
            let s = e.read(*src, Reg::X8);
            e.finish_write(*dst, s);
        }
        HInsn::Bin { op, dst, a, b } => {
            if matches!(op, BinOp::Div) {
                // Division-by-zero guard with a slow path (§3.2).
                let bb = e.read(*b, Reg::X9);
                let slow = e.request_slow_path(layout::EP_THROW_DIV_ZERO, dex_pc);
                e.emit_branch(Insn::Cbz { wide: false, rt: bb, offset: 0 }, slow);
                let aa = e.read(*a, Reg::X8);
                let target = e.write_target(*dst);
                e.emit(Insn::Sdiv { wide: false, rd: target, rn: aa, rm: bb });
                e.finish_write(*dst, target);
            } else {
                let aa = e.read(*a, Reg::X8);
                let bb = e.read(*b, Reg::X9);
                let target = e.write_target(*dst);
                e.emit(bin_insn(*op, target, aa, bb));
                e.finish_write(*dst, target);
            }
        }
        HInsn::BinLit { op, dst, a, lit } => {
            let aa = e.read(*a, Reg::X8);
            let target = e.write_target(*dst);
            let imm_ok = lit.unsigned_abs() < 4096;
            match op {
                BinOp::Add if *lit >= 0 && imm_ok => e.emit(Insn::AddImm {
                    wide: false,
                    set_flags: false,
                    rd: target,
                    rn: aa,
                    imm12: *lit as u16,
                    shift12: false,
                }),
                BinOp::Add if imm_ok => e.emit(Insn::SubImm {
                    wide: false,
                    set_flags: false,
                    rd: target,
                    rn: aa,
                    imm12: lit.unsigned_abs(),
                    shift12: false,
                }),
                BinOp::Sub if *lit >= 0 && imm_ok => e.emit(Insn::SubImm {
                    wide: false,
                    set_flags: false,
                    rd: target,
                    rn: aa,
                    imm12: *lit as u16,
                    shift12: false,
                }),
                BinOp::Sub if imm_ok => e.emit(Insn::AddImm {
                    wide: false,
                    set_flags: false,
                    rd: target,
                    rn: aa,
                    imm12: lit.unsigned_abs(),
                    shift12: false,
                }),
                BinOp::Shl => {
                    let sh = (*lit as u32 & 31) as u8;
                    // lsl w: UBFM with immr = -sh mod 32, imms = 31 - sh.
                    e.emit(Insn::Ubfm {
                        wide: false,
                        rd: target,
                        rn: aa,
                        immr: ((32 - u32::from(sh)) % 32) as u8,
                        imms: 31 - sh,
                    });
                }
                BinOp::Shr => {
                    // asr w: SBFM with immr = sh, imms = 31 (Java >> is
                    // arithmetic).
                    let sh = (*lit as u32 & 31) as u8;
                    e.emit(Insn::Sbfm { wide: false, rd: target, rn: aa, immr: sh, imms: 31 });
                }
                BinOp::Div if *lit != 0 => {
                    e.emit_const(Reg::X9, i32::from(*lit));
                    e.emit(Insn::Sdiv { wide: false, rd: target, rn: aa, rm: Reg::X9 });
                }
                _ => {
                    // Generic: materialize the literal, use the register
                    // form. (Div by literal zero unconditionally throws.)
                    if matches!(op, BinOp::Div) {
                        let slow = e.request_slow_path(layout::EP_THROW_DIV_ZERO, dex_pc);
                        e.emit_branch(Insn::B { offset: 0 }, slow);
                    } else {
                        e.emit_const(Reg::X9, i32::from(*lit));
                        e.emit(bin_insn(*op, target, aa, Reg::X9));
                    }
                }
            }
            e.finish_write(*dst, target);
        }
        HInsn::IGet { dst, obj, field } => {
            let base = e.read(*obj, Reg::X8);
            let slow = e.request_slow_path(layout::EP_THROW_NPE, dex_pc);
            e.emit_branch(Insn::Cbz { wide: false, rt: base, offset: 0 }, slow);
            let target = e.write_target(*dst);
            e.emit(Insn::LdrImm {
                wide: false,
                rt: target,
                rn: base,
                offset: layout::field_offset(*field),
            });
            e.finish_write(*dst, target);
        }
        HInsn::IPut { src, obj, field } => {
            let base = e.read(*obj, Reg::X8);
            let slow = e.request_slow_path(layout::EP_THROW_NPE, dex_pc);
            e.emit_branch(Insn::Cbz { wide: false, rt: base, offset: 0 }, slow);
            let value = e.read(*src, Reg::X9);
            e.emit(Insn::StrImm {
                wide: false,
                rt: value,
                rn: base,
                offset: layout::field_offset(*field),
            });
        }
        HInsn::SGet { dst, slot } => {
            e.emit(Insn::LdrImm {
                wide: true,
                rt: Reg::X16,
                rn: Reg::X19,
                offset: layout::THREAD_STATICS,
            });
            let target = e.write_target(*dst);
            e.emit(Insn::LdrImm {
                wide: false,
                rt: target,
                rn: Reg::X16,
                offset: layout::static_offset(*slot),
            });
            e.finish_write(*dst, target);
        }
        HInsn::SPut { src, slot } => {
            let value = e.read(*src, Reg::X8);
            e.emit(Insn::LdrImm {
                wide: true,
                rt: Reg::X16,
                rn: Reg::X19,
                offset: layout::THREAD_STATICS,
            });
            e.emit(Insn::StrImm {
                wide: false,
                rt: value,
                rn: Reg::X16,
                offset: layout::static_offset(*slot),
            });
        }
        HInsn::NewInstance { dst, class } => {
            let ClassId(cid) = class;
            e.emit_const(Reg::X0, *cid as i32);
            e.emit_runtime_call(layout::EP_ALLOC_OBJECT, dex_pc);
            e.finish_write(*dst, Reg::X0);
        }
        HInsn::Invoke { method, args, dst, .. } => {
            for (i, arg) in args.iter().enumerate() {
                e.read_into(*arg, Reg::new(1 + i as u8));
            }
            e.emit_load_art_method(*method);
            e.emit_java_call(dex_pc);
            if let Some(dst) = dst {
                e.finish_write(*dst, Reg::X0);
            }
        }
        HInsn::InvokeNative { method, args, dst } => {
            for (i, arg) in args.iter().enumerate() {
                e.read_into(*arg, Reg::new(1 + i as u8));
            }
            e.emit_const(Reg::X0, method.0 as i32);
            e.emit_runtime_call(layout::EP_NATIVE_BRIDGE, dex_pc);
            if let Some(dst) = dst {
                e.finish_write(*dst, Reg::X0);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_terminator(
    e: &mut Emitter<'_>,
    graph: &HGraph,
    block: BlockId,
    term: &HTerminator,
    labels: &[Lab],
    epilogue: Lab,
    dex_pc: u32,
) {
    let next_block = BlockId(block.0 + 1);
    let is_next = |b: BlockId| b == next_block && (b.index()) < graph.blocks.len();
    match term {
        HTerminator::Goto { target } => {
            if !is_next(*target) {
                e.emit_branch(Insn::B { offset: 0 }, labels[target.index()]);
            }
        }
        HTerminator::If { cmp, a, b, then_bb, else_bb } => {
            let aa = e.read(*a, Reg::X8);
            let bb = e.read(*b, Reg::X9);
            e.emit(Insn::SubReg {
                wide: false,
                set_flags: true,
                rd: Reg::ZR,
                rn: aa,
                rm: bb,
                shift: 0,
            });
            e.emit_branch(Insn::BCond { cond: cond_of(*cmp), offset: 0 }, labels[then_bb.index()]);
            if !is_next(*else_bb) {
                e.emit_branch(Insn::B { offset: 0 }, labels[else_bb.index()]);
            }
        }
        HTerminator::IfZ { cmp, a, then_bb, else_bb } => {
            let aa = e.read(*a, Reg::X8);
            match cmp {
                Cmp::Eq => e.emit_branch(
                    Insn::Cbz { wide: false, rt: aa, offset: 0 },
                    labels[then_bb.index()],
                ),
                Cmp::Ne => e.emit_branch(
                    Insn::Cbnz { wide: false, rt: aa, offset: 0 },
                    labels[then_bb.index()],
                ),
                _ => {
                    e.emit(Insn::SubImm {
                        wide: false,
                        set_flags: true,
                        rd: Reg::ZR,
                        rn: aa,
                        imm12: 0,
                        shift12: false,
                    });
                    e.emit_branch(
                        Insn::BCond { cond: cond_of(*cmp), offset: 0 },
                        labels[then_bb.index()],
                    );
                }
            }
            if !is_next(*else_bb) {
                e.emit_branch(Insn::B { offset: 0 }, labels[else_bb.index()]);
            }
        }
        HTerminator::Switch { src, first_key, targets, default } => {
            // Bounds check + branch-ladder jump table through an indirect
            // branch; flags the method per §3.2.
            let s = e.read(*src, Reg::X8);
            if *first_key != 0 {
                e.emit_const(Reg::X17, *first_key);
                e.emit(Insn::SubReg {
                    wide: false,
                    set_flags: false,
                    rd: Reg::X16,
                    rn: s,
                    rm: Reg::X17,
                    shift: 0,
                });
            } else if s != Reg::X16 {
                e.emit(mov_reg(Reg::X16, s));
            }
            assert!(targets.len() < 4096, "switch too large for cmp immediate");
            e.emit(Insn::SubImm {
                wide: false,
                set_flags: true,
                rd: Reg::ZR,
                rn: Reg::X16,
                imm12: targets.len() as u16,
                shift12: false,
            });
            e.emit_branch(Insn::BCond { cond: Cond::Cs, offset: 0 }, labels[default.index()]);
            let table = e.label();
            e.emit_branch(Insn::Adr { rd: Reg::X17, offset: 0 }, table);
            e.emit(Insn::AddReg {
                wide: true,
                set_flags: false,
                rd: Reg::X17,
                rn: Reg::X17,
                rm: Reg::X16,
                shift: 2,
            });
            e.emit(Insn::Br { rn: Reg::X17 });
            e.has_indirect_jump = true;
            e.bind(table);
            for t in targets {
                e.emit_branch(Insn::B { offset: 0 }, labels[t.index()]);
            }
        }
        HTerminator::Return { src } => {
            if let Some(v) = src {
                e.read_into(*v, Reg::X0);
            }
            e.emit_branch(Insn::B { offset: 0 }, epilogue);
        }
        HTerminator::Throw { src } => {
            e.read_into(*src, Reg::X0);
            e.emit_runtime_call(layout::EP_DELIVER_EXCEPTION, dex_pc);
            e.emit(Insn::Brk { imm: 0xdead });
        }
    }
}

fn bin_insn(op: BinOp, rd: Reg, rn: Reg, rm: Reg) -> Insn {
    match op {
        BinOp::Add => Insn::AddReg { wide: false, set_flags: false, rd, rn, rm, shift: 0 },
        BinOp::Sub => Insn::SubReg { wide: false, set_flags: false, rd, rn, rm, shift: 0 },
        BinOp::Mul => Insn::Madd { wide: false, rd, rn, rm, ra: Reg::ZR },
        BinOp::Div => Insn::Sdiv { wide: false, rd, rn, rm },
        BinOp::And => Insn::AndReg { wide: false, set_flags: false, rd, rn, rm, shift: 0 },
        BinOp::Or => Insn::OrrReg { wide: false, rd, rn, rm, shift: 0 },
        BinOp::Xor => Insn::EorReg { wide: false, rd, rn, rm, shift: 0 },
        BinOp::Shl => Insn::Lslv { wide: false, rd, rn, rm },
        BinOp::Shr => Insn::Asrv { wide: false, rd, rn, rm },
    }
}

/// Compiles the JNI stub for a native method (flagged unoutlinable).
#[must_use]
pub fn compile_native_stub(method: MethodId, opts: &CodegenOptions) -> CompiledMethod {
    let frame = Frame::plan(0);
    let mut e = Emitter::new(opts, &frame);
    e.emit(Insn::Stp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::SP,
        offset: -16,
        mode: PairMode::PreIndex,
    });
    e.emit_const(Reg::X0, method.0 as i32);
    e.emit_runtime_call(layout::EP_NATIVE_BRIDGE, 0);
    e.emit(Insn::Ldp {
        rt: Reg::FP,
        rt2: Reg::LR,
        rn: Reg::SP,
        offset: 16,
        mode: PairMode::PostIndex,
    });
    e.emit(Insn::Ret { rn: Reg::LR });
    e.finish(method, true)
}
