//! The output of per-method compilation: machine code plus the
//! compilation-time metadata the paper's LTBO collects (§3.2).

use calibro_dex::MethodId;
use calibro_isa::Insn;

/// A compilation-time-outlined pattern thunk (the paper's §3.1 "cache
/// with a label L"). The linker emits each used thunk once per OAT.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ThunkKind {
    /// Figure 4a: `ldr x16, [x0, #ENTRY]; br x16` — tail-jump into the
    /// callee through its `ArtMethod`, preserving the `bl`-installed
    /// return address.
    JavaEntry,
    /// Figure 4b: `ldr x16, [x19, #offset]; br x16` — tail-jump into a
    /// runtime entrypoint. One thunk per entrypoint offset.
    RuntimeEntry(u16),
    /// Figure 4c: `sub x16, sp, #GUARD; ldr wzr, [x16]; br x30` — probe
    /// the stack redzone and return.
    StackCheck,
}

/// A call-site relocation: the linker binds the `bl` at word index `at`
/// to the final address of `target` (§3.2: "the later linking phase ...
/// will bind function labels to addresses").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reloc {
    /// Word index of the `bl` within the method's code.
    pub at: usize,
    /// What the call must reach.
    pub target: CallTarget,
}

/// Target of a call-site relocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallTarget {
    /// Another compiled method's entry.
    Method(MethodId),
    /// A CTO pattern thunk.
    Thunk(ThunkKind),
    /// A link-time outlined function, by index (created by LTBO, §3.3.3).
    Outlined(u32),
    /// A merged-function island, by index (created by the function-merge
    /// size pass; cf. the global function merger of PAPERS.md). A thunk
    /// materializes the member's distinguishing constants into parameter
    /// registers and tail-branches here.
    Merged(u32),
    /// A shared-dictionary body in the daemon-wide dictionary island, by
    /// word offset within that island. Unlike [`Outlined`](Self::Outlined)
    /// the body lives outside this OAT, emitted once per daemon and
    /// linked by every tenant (cf. ShareJIT's cross-process sharing,
    /// PAPERS.md).
    Dict(u32),
}

/// One intra-method PC-relative record: instruction at `at` targets the
/// instruction (or literal word) at `target` (word indices). This is the
/// §3.2 "instructions of PC-relative addressing: record the offsets of
/// these instructions, as well as those of their targets".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PcRel {
    /// Word index of the PC-relative instruction.
    pub at: usize,
    /// Word index of its target within the same method.
    pub target: usize,
}

/// A stack-map entry: maps the native return offset of a call site back
/// to the bytecode pc, as ART requires for unwinding/GC (§3.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackMapEntry {
    /// Byte offset (within the method) of the instruction *after* the
    /// call — the value the link register holds while the callee runs.
    pub native_offset: u32,
    /// The bytecode pc of the call instruction.
    pub dex_pc: u32,
}

/// The compilation-time metadata of §3.2, recorded per method.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodMetadata {
    /// PC-relative instructions with their intra-method targets.
    pub pc_rel: Vec<PcRel>,
    /// Word indices of basic-block terminators.
    pub terminators: Vec<usize>,
    /// Embedded (non-instruction) data ranges: `(word offset, word len)`.
    pub embedded_data: Vec<(usize, usize)>,
    /// Method contains an indirect jump (`br`) — unoutlinable (§3.2).
    pub has_indirect_jump: bool,
    /// Method is a Java-native (JNI) stub — unoutlinable (§3.2).
    pub is_native_stub: bool,
    /// Slow-path regions `(start word, end word)` — outlinable even in
    /// hot functions (§3.2, §3.4.2).
    pub slow_paths: Vec<(usize, usize)>,
}

impl MethodMetadata {
    /// Returns `true` if word `idx` lies inside a recorded slow path.
    #[must_use]
    pub fn in_slow_path(&self, idx: usize) -> bool {
        self.slow_paths.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Returns `true` if word `idx` lies inside embedded data.
    #[must_use]
    pub fn in_embedded_data(&self, idx: usize) -> bool {
        self.embedded_data.iter().any(|&(s, l)| idx >= s && idx < s + l)
    }
}

/// A compiled method: instructions (with unresolved call offsets), call
/// relocations, LTBO metadata and stack maps.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The originating method.
    pub method: MethodId,
    /// Machine instructions; embedded literal-pool words are carried as
    /// raw words in `pool` and appended on serialization.
    pub insns: Vec<Insn>,
    /// Raw literal-pool words appended after `insns`.
    pub pool: Vec<u32>,
    /// Call-site relocations.
    pub relocs: Vec<Reloc>,
    /// The §3.2 metadata.
    pub metadata: MethodMetadata,
    /// Stack maps for every call site, ordered by native offset.
    pub stack_maps: Vec<StackMapEntry>,
}

impl CompiledMethod {
    /// Total size in words (instructions + literal pool).
    #[must_use]
    pub fn size_words(&self) -> usize {
        self.insns.len() + self.pool.len()
    }

    /// Total size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_words() as u64 * 4
    }
}

// Compiled methods cross worker-thread boundaries in `calibro::build`'s
// parallel compile phase; fail here if that ever stops holding.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledMethod>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_range_queries() {
        let meta = MethodMetadata {
            slow_paths: vec![(10, 13)],
            embedded_data: vec![(20, 2)],
            ..MethodMetadata::default()
        };
        assert!(meta.in_slow_path(10));
        assert!(meta.in_slow_path(12));
        assert!(!meta.in_slow_path(13));
        assert!(meta.in_embedded_data(21));
        assert!(!meta.in_embedded_data(22));
    }

    #[test]
    fn sizes_count_the_pool() {
        let m = CompiledMethod {
            method: MethodId(0),
            insns: vec![Insn::Nop, Insn::Ret { rn: calibro_isa::Reg::LR }],
            pool: vec![0xdead_beef],
            relocs: vec![],
            metadata: MethodMetadata::default(),
            stack_maps: vec![],
        };
        assert_eq!(m.size_words(), 3);
        assert_eq!(m.size_bytes(), 12);
    }
}
