//! The simulated ART runtime memory layout contract between the code
//! generator and the runtime.
//!
//! The thread register `x19` points at a `Thread` structure holding the
//! runtime entrypoint table (Figure 4b of the paper), the `ArtMethod`
//! table, and the statics area. Each Java method is described by an
//! `ArtMethod` record whose entry point lives at a fixed offset —
//! the constant behind the paper's Figure 4a repetitive pattern.

use calibro_dex::{FieldId, MethodId, StaticId};

/// Byte offset of the entry-point pointer inside an `ArtMethod` record.
/// (The paper reports the hottest WeChat instance using offset 20; we use
/// 24 to keep 8-byte slot alignment.)
pub const ART_METHOD_ENTRY_OFFSET: u16 = 24;

/// Size in bytes of one `ArtMethod` record.
pub const ART_METHOD_SIZE: u64 = 32;

/// `[x19 + THREAD_METHOD_TABLE]` holds the base of the `ArtMethod*` table.
pub const THREAD_METHOD_TABLE: u16 = 0x80;

/// `[x19 + THREAD_STATICS]` holds the base of the static-field area.
pub const THREAD_STATICS: u16 = 0x88;

/// Entrypoint slot: allocate an object (`pAllocObjectResolved`).
pub const EP_ALLOC_OBJECT: u16 = 0x100;

/// Entrypoint slot: throw `ArithmeticException` (division by zero).
pub const EP_THROW_DIV_ZERO: u16 = 0x108;

/// Entrypoint slot: throw `NullPointerException`.
pub const EP_THROW_NPE: u16 = 0x110;

/// Entrypoint slot: deliver an explicitly thrown exception.
pub const EP_DELIVER_EXCEPTION: u16 = 0x118;

/// Entrypoint slot: bridge into a Java native (JNI) method.
pub const EP_NATIVE_BRIDGE: u16 = 0x120;

/// All entrypoint slots, for table construction and iteration.
pub const ENTRYPOINT_SLOTS: [u16; 5] =
    [EP_ALLOC_OBJECT, EP_THROW_DIV_ZERO, EP_THROW_NPE, EP_DELIVER_EXCEPTION, EP_NATIVE_BRIDGE];

/// Stack redzone probed by the overflow check (Figure 4c): 8 KiB.
pub const STACK_GUARD_BYTES: u32 = 0x2000;

/// Byte offset of instance field slots past the object header.
pub const OBJECT_FIELDS_OFFSET: u16 = 8;

/// Byte offset of `field` within an object.
#[must_use]
pub fn field_offset(field: FieldId) -> u16 {
    OBJECT_FIELDS_OFFSET + 8 * field.0 as u16
}

/// Byte offset of a static slot within the statics area.
#[must_use]
pub fn static_offset(slot: StaticId) -> u16 {
    8 * slot.0 as u16
}

/// Byte offset of a method's `ArtMethod*` inside the method table.
#[must_use]
pub fn method_table_offset(method: MethodId) -> u64 {
    8 * u64::from(method.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_8_byte_slots() {
        assert_eq!(field_offset(FieldId(0)), 8);
        assert_eq!(field_offset(FieldId(3)), 32);
        assert_eq!(static_offset(StaticId(2)), 16);
        assert_eq!(method_table_offset(MethodId(10)), 80);
    }

    #[test]
    fn entrypoints_do_not_collide_with_tables() {
        for ep in ENTRYPOINT_SLOTS {
            assert!(ep > THREAD_STATICS);
        }
        assert_ne!(THREAD_METHOD_TABLE, THREAD_STATICS);
    }

    #[test]
    fn guard_matches_paper_figure_4c() {
        assert_eq!(STACK_GUARD_BYTES, 8192);
    }
}
