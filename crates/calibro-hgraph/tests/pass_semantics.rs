//! Differential property tests: the optimization pipeline must preserve
//! the semantics of arbitrary (loop-free, pure) programs.

use calibro_dex::{BinOp, ClassId, Cmp, DexInsn, Method, MethodId, VReg};
use calibro_hgraph::{build_hgraph, check, eval_pure, run_pipeline, EvalOutcome};
use proptest::prelude::*;

const NUM_REGS: u16 = 6;
const NUM_ARGS: u16 = 2;

fn any_vreg() -> impl Strategy<Value = VReg> {
    (0..NUM_REGS).prop_map(VReg)
}

fn any_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn any_cmp() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Eq),
        Just(Cmp::Ne),
        Just(Cmp::Lt),
        Just(Cmp::Ge),
        Just(Cmp::Gt),
        Just(Cmp::Le),
    ]
}

/// One pure body instruction (no memory, no calls).
fn body_insn() -> impl Strategy<Value = DexInsn> {
    prop_oneof![
        (any_vreg(), -100i32..100).prop_map(|(dst, value)| DexInsn::Const { dst, value }),
        (any_vreg(), any_vreg()).prop_map(|(dst, src)| DexInsn::Move { dst, src }),
        (any_binop(), any_vreg(), any_vreg(), any_vreg())
            .prop_map(|(op, dst, a, b)| DexInsn::Bin { op, dst, a, b }),
        (any_binop(), any_vreg(), any_vreg(), -16i16..16)
            .prop_map(|(op, dst, a, lit)| DexInsn::BinLit { op, dst, a, lit }),
    ]
}

/// A loop-free program: instructions at index `i` may branch only to
/// strictly later indices, and the program ends with a return.
fn loop_free_program() -> impl Strategy<Value = Vec<DexInsn>> {
    (2usize..24)
        .prop_flat_map(|len| {
            (
                prop::collection::vec(body_insn(), len),
                prop::collection::vec((any_cmp(), any_vreg(), 1usize..8), len),
                prop::collection::vec(any::<bool>(), len),
                any_vreg(),
            )
        })
        .prop_map(|(body, branches, use_branch, ret)| {
            let len = body.len();
            let mut insns = Vec::with_capacity(len + 1);
            for (i, insn) in body.into_iter().enumerate() {
                if use_branch[i] && i + branches[i].2 < len {
                    let (cmp, a, skip) = branches[i];
                    insns.push(DexInsn::IfZ { cmp, a, target: i + skip });
                } else {
                    insns.push(insn);
                }
            }
            insns.push(DexInsn::Return { src: ret });
            insns
        })
}

fn method_of(insns: Vec<DexInsn>) -> Method {
    Method {
        id: MethodId(0),
        class: ClassId(0),
        name: "prop".into(),
        num_regs: NUM_REGS,
        num_args: NUM_ARGS,
        insns,
        is_native: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Optimizations preserve outcomes (returned value or thrown).
    #[test]
    fn pipeline_preserves_semantics(
        insns in loop_free_program(),
        a0 in -50i32..50,
        a1 in -50i32..50,
    ) {
        let method = method_of(insns);
        let reference = build_hgraph(&method);
        let mut optimized = reference.clone();
        run_pipeline(&mut optimized);
        check(&optimized).expect("pipeline broke graph invariants");

        let args = [a0, a1];
        let before = eval_pure(&reference, &args, 10_000).expect("pure program");
        let after = eval_pure(&optimized, &args, 10_000).expect("pure program");
        prop_assert_eq!(before, after);
        prop_assert_ne!(before, EvalOutcome::OutOfSteps, "loop-free programs terminate");
    }

    /// The pipeline never grows the instruction count.
    #[test]
    fn pipeline_never_grows_code(insns in loop_free_program()) {
        let method = method_of(insns);
        let mut graph = build_hgraph(&method);
        let before = graph.insn_count();
        run_pipeline(&mut graph);
        prop_assert!(graph.insn_count() <= before);
    }
}
