//! Structural invariant checking for HGraphs; used by tests and debug
//! assertions between passes.

use core::fmt;

use crate::graph::{HGraph, HTerminator};

/// A structural violation found by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields name the offending block/register
pub enum CheckError {
    /// The graph has no blocks.
    Empty,
    /// A block's `id` does not equal its index.
    MisnumberedBlock { index: usize },
    /// A terminator references a block outside the graph.
    DanglingEdge { block: usize, target: u32 },
    /// An instruction or terminator uses a register outside `num_regs`.
    RegisterOutOfRange { block: usize, reg: u16 },
    /// A switch terminator with no targets.
    EmptySwitch { block: usize },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Empty => f.write_str("graph has no blocks"),
            CheckError::MisnumberedBlock { index } => {
                write!(f, "block at index {index} has a mismatched id")
            }
            CheckError::DanglingEdge { block, target } => {
                write!(f, "block {block} branches to missing block {target}")
            }
            CheckError::RegisterOutOfRange { block, reg } => {
                write!(f, "block {block} uses out-of-range register v{reg}")
            }
            CheckError::EmptySwitch { block } => write!(f, "block {block} has an empty switch"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks the structural invariants every pass must preserve.
///
/// # Errors
///
/// Returns the first [`CheckError`] found.
pub fn check(graph: &HGraph) -> Result<(), CheckError> {
    if graph.blocks.is_empty() {
        return Err(CheckError::Empty);
    }
    for (index, block) in graph.blocks.iter().enumerate() {
        if block.id.index() != index {
            return Err(CheckError::MisnumberedBlock { index });
        }
        for succ in block.terminator.successors() {
            if succ.index() >= graph.blocks.len() {
                return Err(CheckError::DanglingEdge { block: index, target: succ.0 });
            }
        }
        if let HTerminator::Switch { targets, .. } = &block.terminator {
            if targets.is_empty() {
                return Err(CheckError::EmptySwitch { block: index });
            }
        }
        let mut regs: Vec<calibro_dex::VReg> = Vec::new();
        for insn in &block.insns {
            regs.extend(insn.reads());
            regs.extend(insn.writes());
        }
        regs.extend(block.terminator.reads());
        for reg in regs {
            if reg.0 >= graph.num_regs {
                return Err(CheckError::RegisterOutOfRange { block: index, reg: reg.0 });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock, HInsn};
    use calibro_dex::{MethodId, VReg};

    fn valid() -> HGraph {
        HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![HInsn::Const { dst: VReg(0), value: 1 }],
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        }
    }

    #[test]
    fn accepts_valid() {
        assert_eq!(check(&valid()), Ok(()));
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut g = valid();
        g.blocks[0].terminator = HTerminator::Goto { target: BlockId(7) };
        assert_eq!(check(&g), Err(CheckError::DanglingEdge { block: 0, target: 7 }));
    }

    #[test]
    fn rejects_register_overflow() {
        let mut g = valid();
        g.blocks[0].insns.push(HInsn::Const { dst: VReg(5), value: 0 });
        assert_eq!(check(&g), Err(CheckError::RegisterOutOfRange { block: 0, reg: 5 }));
    }

    #[test]
    fn rejects_misnumbered_blocks() {
        let mut g = valid();
        g.blocks[0].id = BlockId(3);
        assert_eq!(check(&g), Err(CheckError::MisnumberedBlock { index: 0 }));
    }
}
