//! Scalar semantics of the IR operations, plus a pure-fragment HGraph
//! evaluator used for differential testing of optimization passes.

use calibro_dex::{BinOp, Cmp};

use crate::graph::{HGraph, HInsn, HTerminator};

/// Evaluates a binary operation on `i32` with Java semantics: wrapping
/// arithmetic, shift amounts masked to 5 bits. Returns `None` for
/// division by zero (which throws at runtime).
#[must_use]
pub fn eval_binop(op: BinOp, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 31),
        BinOp::Shr => a.wrapping_shr(b as u32 & 31),
    })
}

/// Evaluates a comparison with Java `int` semantics.
#[must_use]
pub fn eval_cmp(cmp: Cmp, a: i32, b: i32) -> bool {
    match cmp {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Lt => a < b,
        Cmp::Ge => a >= b,
        Cmp::Gt => a > b,
        Cmp::Le => a <= b,
    }
}

/// Outcome of evaluating a pure HGraph fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalOutcome {
    /// The graph returned (with an optional value).
    Returned(Option<i32>),
    /// The graph threw (division by zero or explicit throw).
    Threw(i32),
    /// The step budget ran out (assumed-looping graph).
    OutOfSteps,
}

/// An instruction outside the pure fragment was encountered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotPure;

impl core::fmt::Display for NotPure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("graph contains memory or call instructions")
    }
}

impl std::error::Error for NotPure {}

/// Interprets a call-free, memory-free HGraph: constants, moves, binary
/// ops and control flow only. Used as the semantic oracle in pass tests.
///
/// # Errors
///
/// Returns [`NotPure`] when the graph contains field accesses,
/// allocations, or calls.
pub fn eval_pure(graph: &HGraph, args: &[i32], max_steps: usize) -> Result<EvalOutcome, NotPure> {
    assert_eq!(args.len(), graph.num_args as usize, "argument count mismatch");
    let mut regs = vec![0i32; graph.num_regs as usize];
    let first_arg = (graph.num_regs - graph.num_args) as usize;
    regs[first_arg..].copy_from_slice(args);

    let mut block = graph.entry();
    let mut steps = 0usize;
    loop {
        let b = &graph.blocks[block.index()];
        for insn in &b.insns {
            steps += 1;
            if steps > max_steps {
                return Ok(EvalOutcome::OutOfSteps);
            }
            match insn {
                HInsn::Const { dst, value } => regs[dst.index()] = *value,
                HInsn::Move { dst, src } => regs[dst.index()] = regs[src.index()],
                HInsn::Bin { op, dst, a, b } => {
                    match eval_binop(*op, regs[a.index()], regs[b.index()]) {
                        Some(v) => regs[dst.index()] = v,
                        None => return Ok(EvalOutcome::Threw(0)),
                    }
                }
                HInsn::BinLit { op, dst, a, lit } => {
                    match eval_binop(*op, regs[a.index()], i32::from(*lit)) {
                        Some(v) => regs[dst.index()] = v,
                        None => return Ok(EvalOutcome::Threw(0)),
                    }
                }
                _ => return Err(NotPure),
            }
        }
        steps += 1;
        if steps > max_steps {
            return Ok(EvalOutcome::OutOfSteps);
        }
        block = match &b.terminator {
            HTerminator::Goto { target } => *target,
            HTerminator::If { cmp, a, b: rb, then_bb, else_bb } => {
                if eval_cmp(*cmp, regs[a.index()], regs[rb.index()]) {
                    *then_bb
                } else {
                    *else_bb
                }
            }
            HTerminator::IfZ { cmp, a, then_bb, else_bb } => {
                if eval_cmp(*cmp, regs[a.index()], 0) {
                    *then_bb
                } else {
                    *else_bb
                }
            }
            HTerminator::Switch { src, first_key, targets, default } => {
                let idx = i64::from(regs[src.index()]) - i64::from(*first_key);
                if idx >= 0 && (idx as usize) < targets.len() {
                    targets[idx as usize]
                } else {
                    *default
                }
            }
            HTerminator::Return { src } => {
                return Ok(EvalOutcome::Returned(src.map(|r| regs[r.index()])));
            }
            HTerminator::Throw { src } => return Ok(EvalOutcome::Threw(regs[src.index()])),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock};
    use calibro_dex::{MethodId, VReg};

    #[test]
    fn binop_java_semantics() {
        assert_eq!(eval_binop(BinOp::Add, i32::MAX, 1), Some(i32::MIN));
        assert_eq!(eval_binop(BinOp::Div, 7, 2), Some(3));
        assert_eq!(eval_binop(BinOp::Div, -7, 2), Some(-3));
        assert_eq!(eval_binop(BinOp::Div, 1, 0), None);
        assert_eq!(eval_binop(BinOp::Div, i32::MIN, -1), Some(i32::MIN));
        assert_eq!(eval_binop(BinOp::Shl, 1, 33), Some(2), "shift masked to 5 bits");
        assert_eq!(eval_binop(BinOp::Shr, -8, 1), Some(-4), "arithmetic shift");
    }

    #[test]
    fn cmp_semantics() {
        assert!(eval_cmp(Cmp::Lt, -1, 0));
        assert!(eval_cmp(Cmp::Ge, 0, 0));
        assert!(!eval_cmp(Cmp::Gt, 0, 0));
    }

    #[test]
    fn countdown_loop_evaluates() {
        // v0 = 0; while (v1 > 0) { v0 += v1; v1 -= 1 } return v0
        let g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 0 }],
                    terminator: HTerminator::Goto { target: BlockId(1) },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Le,
                        a: VReg(1),
                        then_bb: BlockId(3),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![
                        HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) },
                        HInsn::BinLit { op: BinOp::Add, dst: VReg(1), a: VReg(1), lit: -1 },
                    ],
                    terminator: HTerminator::Goto { target: BlockId(1) },
                },
                HBlock {
                    id: BlockId(3),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
            ],
        };
        assert_eq!(eval_pure(&g, &[4], 1000), Ok(EvalOutcome::Returned(Some(10))));
        assert_eq!(eval_pure(&g, &[0], 1000), Ok(EvalOutcome::Returned(Some(0))));
    }

    #[test]
    fn division_by_zero_throws() {
        let g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![HInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(1), b: VReg(0) }],
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        };
        assert_eq!(eval_pure(&g, &[5], 100), Ok(EvalOutcome::Threw(0)));
    }

    #[test]
    fn impure_graphs_are_rejected() {
        let g = HGraph {
            method: MethodId(0),
            num_regs: 1,
            num_args: 0,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![HInsn::NewInstance { dst: VReg(0), class: calibro_dex::ClassId(0) }],
                terminator: HTerminator::Return { src: None },
            }],
        };
        assert_eq!(eval_pure(&g, &[], 100), Err(NotPure));
    }
}
