//! DEX bytecode -> HGraph construction (the `method -> HGraph` arrow of
//! the paper's Figure 5).

use calibro_dex::{DexInsn, Method};

use crate::graph::{BlockId, HBlock, HGraph, HInsn, HTerminator};

/// Builds the control-flow graph for one method.
///
/// Block leaders are: instruction 0, every branch target, and every
/// instruction following a block-ending instruction.
///
/// # Panics
///
/// Panics if called on a native method (no bytecode) — callers must
/// filter those, as `dex2oat` does.
#[must_use]
pub fn build_hgraph(method: &Method) -> HGraph {
    assert!(!method.is_native, "cannot build an HGraph for a native method");
    assert!(!method.insns.is_empty(), "method body is empty");
    let insns = &method.insns;
    let n = insns.len();

    // 1. Find leaders.
    let mut is_leader = vec![false; n];
    is_leader[0] = true;
    for (i, insn) in insns.iter().enumerate() {
        for t in insn.branch_targets() {
            is_leader[t] = true;
        }
        if insn.is_block_end() && i + 1 < n {
            is_leader[i + 1] = true;
        }
    }

    // 2. Assign block ids by leader position.
    let mut block_of = vec![BlockId(0); n];
    let mut leaders = Vec::new();
    for (i, &lead) in is_leader.iter().enumerate() {
        if lead {
            leaders.push(i);
        }
        block_of[i] = BlockId(leaders.len() as u32 - 1);
    }

    // 3. Emit blocks.
    let mut blocks = Vec::with_capacity(leaders.len());
    for (bi, &start) in leaders.iter().enumerate() {
        let end = leaders.get(bi + 1).copied().unwrap_or(n);
        let id = BlockId(bi as u32);
        let mut body = Vec::new();
        let mut terminator = None;
        for (i, insn) in insns[start..end].iter().enumerate() {
            let at = start + i;
            let fallthrough = || {
                assert!(at + 1 < n, "verifier guarantees no fall-off-end");
                block_of[at + 1]
            };
            match insn {
                DexInsn::Goto { target } => {
                    terminator = Some(HTerminator::Goto { target: block_of[*target] });
                }
                DexInsn::If { cmp, a, b, target } => {
                    terminator = Some(HTerminator::If {
                        cmp: *cmp,
                        a: *a,
                        b: *b,
                        then_bb: block_of[*target],
                        else_bb: fallthrough(),
                    });
                }
                DexInsn::IfZ { cmp, a, target } => {
                    terminator = Some(HTerminator::IfZ {
                        cmp: *cmp,
                        a: *a,
                        then_bb: block_of[*target],
                        else_bb: fallthrough(),
                    });
                }
                DexInsn::Switch { src, first_key, targets } => {
                    terminator = Some(HTerminator::Switch {
                        src: *src,
                        first_key: *first_key,
                        targets: targets.iter().map(|&t| block_of[t]).collect(),
                        default: fallthrough(),
                    });
                }
                DexInsn::Return { src } => {
                    terminator = Some(HTerminator::Return { src: Some(*src) });
                }
                DexInsn::ReturnVoid => terminator = Some(HTerminator::Return { src: None }),
                DexInsn::Throw { src } => terminator = Some(HTerminator::Throw { src: *src }),
                DexInsn::Nop => {}
                DexInsn::Const { dst, value } => {
                    body.push(HInsn::Const { dst: *dst, value: *value });
                }
                DexInsn::Move { dst, src } => body.push(HInsn::Move { dst: *dst, src: *src }),
                DexInsn::Bin { op, dst, a, b } => {
                    body.push(HInsn::Bin { op: *op, dst: *dst, a: *a, b: *b });
                }
                DexInsn::BinLit { op, dst, a, lit } => {
                    body.push(HInsn::BinLit { op: *op, dst: *dst, a: *a, lit: *lit });
                }
                DexInsn::IGet { dst, obj, field } => {
                    body.push(HInsn::IGet { dst: *dst, obj: *obj, field: *field });
                }
                DexInsn::IPut { src, obj, field } => {
                    body.push(HInsn::IPut { src: *src, obj: *obj, field: *field });
                }
                DexInsn::SGet { dst, slot } => body.push(HInsn::SGet { dst: *dst, slot: *slot }),
                DexInsn::SPut { src, slot } => body.push(HInsn::SPut { src: *src, slot: *slot }),
                DexInsn::NewInstance { dst, class } => {
                    body.push(HInsn::NewInstance { dst: *dst, class: *class });
                }
                DexInsn::Invoke { kind, method, args, dst } => body.push(HInsn::Invoke {
                    kind: *kind,
                    method: *method,
                    args: args.clone(),
                    dst: *dst,
                }),
                DexInsn::InvokeNative { method, args, dst } => body.push(HInsn::InvokeNative {
                    method: *method,
                    args: args.clone(),
                    dst: *dst,
                }),
            }
        }
        // A block cut by a leader (no explicit terminator) falls through.
        let terminator = terminator.unwrap_or_else(|| {
            assert!(end < n, "verifier guarantees no fall-off-end");
            HTerminator::Goto { target: block_of[end] }
        });
        blocks.push(HBlock { id, insns: body, terminator });
    }

    HGraph { method: method.id, blocks, num_regs: method.num_regs, num_args: method.num_args }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibro_dex::{BinOp, ClassId, Cmp, MethodBuilder, VReg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = MethodBuilder::new("straight", 2, 1);
        b.push(DexInsn::Const { dst: VReg(0), value: 3 });
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
        b.push(DexInsn::Return { src: VReg(0) });
        let g = build_hgraph(&b.build(ClassId(0)));
        assert_eq!(g.blocks.len(), 1);
        assert_eq!(g.blocks[0].insns.len(), 2);
        assert_eq!(g.blocks[0].terminator, HTerminator::Return { src: Some(VReg(0)) });
    }

    #[test]
    fn diamond_produces_four_blocks() {
        let mut b = MethodBuilder::new("diamond", 2, 1);
        let els = b.label();
        let end = b.label();
        b.if_z(Cmp::Eq, VReg(1), els);
        b.push(DexInsn::Const { dst: VReg(0), value: 1 });
        b.goto(end);
        b.bind(els);
        b.push(DexInsn::Const { dst: VReg(0), value: 2 });
        b.bind(end);
        b.push(DexInsn::Return { src: VReg(0) });
        let g = build_hgraph(&b.build(ClassId(0)));
        assert_eq!(g.blocks.len(), 4);
        match &g.blocks[0].terminator {
            HTerminator::IfZ { then_bb, else_bb, .. } => {
                assert_eq!(*then_bb, BlockId(2));
                assert_eq!(*else_bb, BlockId(1));
            }
            t => panic!("unexpected terminator {t:?}"),
        }
        // The else block falls into the join.
        assert_eq!(g.blocks[2].terminator, HTerminator::Goto { target: BlockId(3) });
    }

    #[test]
    fn loop_back_edge() {
        let mut b = MethodBuilder::new("loop", 2, 1);
        let top = b.label();
        let out = b.label();
        b.bind(top);
        b.if_z(Cmp::Le, VReg(1), out);
        b.push(DexInsn::BinLit { op: BinOp::Add, dst: VReg(1), a: VReg(1), lit: -1 });
        b.goto(top);
        b.bind(out);
        b.push(DexInsn::ReturnVoid);
        let g = build_hgraph(&b.build(ClassId(0)));
        let preds = g.predecessors();
        // The loop head has two predecessors: entry fall-in is itself the
        // head here (block 0), so the body jumps back to it.
        assert!(preds[0].contains(&BlockId(1)));
    }

    #[test]
    fn switch_lowers_to_terminator() {
        let mut b = MethodBuilder::new("sw", 2, 1);
        let a0 = b.label();
        let end = b.label();
        b.switch(VReg(1), 5, &[a0, a0]);
        b.bind(a0);
        b.push(DexInsn::Const { dst: VReg(0), value: 1 });
        b.bind(end);
        b.push(DexInsn::ReturnVoid);
        let g = build_hgraph(&b.build(ClassId(0)));
        match &g.blocks[0].terminator {
            HTerminator::Switch { first_key, targets, default, .. } => {
                assert_eq!(*first_key, 5);
                assert_eq!(targets.len(), 2);
                assert_eq!(*default, BlockId(1));
            }
            t => panic!("unexpected terminator {t:?}"),
        }
        assert!(g.has_switch());
    }

    #[test]
    #[should_panic(expected = "native method")]
    fn native_methods_rejected() {
        let method = calibro_dex::Method {
            id: calibro_dex::MethodId(0),
            class: ClassId(0),
            name: "nat".into(),
            num_regs: 0,
            num_args: 0,
            insns: vec![],
            is_native: true,
        };
        let _ = build_hgraph(&method);
    }
}
