//! # calibro-hgraph
//!
//! The HGraph intermediate representation of the reproduction's
//! `dex2oat`: a register-based control-flow graph built from DEX
//! bytecode, the size-relevant optimization passes dex2oat runs on it
//! (constant folding/propagation, copy propagation, CSE, DCE +
//! unreachable-code elimination, strength reduction, return merging), a
//! structural checker, and a pure-fragment evaluator used as the
//! semantic oracle in differential pass tests.
//!
//! # Examples
//!
//! ```
//! use calibro_dex::{ClassId, DexInsn, MethodBuilder, VReg};
//! use calibro_hgraph::{build_hgraph, check, run_pipeline};
//!
//! let mut b = MethodBuilder::new("f", 2, 1);
//! b.push(DexInsn::Const { dst: VReg(0), value: 21 });
//! b.push(DexInsn::BinLit {
//!     op: calibro_dex::BinOp::Mul,
//!     dst: VReg(0),
//!     a: VReg(0),
//!     lit: 2,
//! });
//! b.push(DexInsn::Return { src: VReg(0) });
//! let mut graph = build_hgraph(&b.build(ClassId(0)));
//! let stats = run_pipeline(&mut graph);
//! assert!(stats.folded > 0); // 21 * 2 folded to 42
//! check(&graph)?;
//! # Ok::<(), calibro_hgraph::CheckError>(())
//! ```

#![warn(missing_docs)]

mod build;
mod check;
mod eval;
mod graph;
pub mod passes;

pub use build::build_hgraph;
pub use check::{check, CheckError};
pub use eval::{eval_binop, eval_cmp, eval_pure, EvalOutcome, NotPure};
pub use graph::{BlockId, HBlock, HGraph, HInsn, HTerminator};
pub use passes::inline::{run_inlining, InlineConfig};
pub use passes::{run_pipeline, run_pipeline_with, PassStats, PipelineConfig};

// The parallel compile phase in `calibro::build` moves graphs across
// worker threads; keep that guarantee explicit so a future interior-
// mutability addition fails here rather than at the driver's use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HGraph>();
    assert_send_sync::<PassStats>();
};
