//! Return merging (listed among dex2oat's code-size optimizations):
//! duplicate return-only blocks are merged into one, so each method keeps
//! a single epilogue per distinct return shape.

use std::collections::HashMap;

use crate::graph::{BlockId, HGraph, HTerminator};

/// Runs the pass; returns the number of redirected edges. Duplicate
/// blocks become unreachable and are collected by
/// [`remove_unreachable`](crate::passes::dce::remove_unreachable).
pub fn run(graph: &mut HGraph) -> usize {
    // Canonical block per return shape (only bodyless return blocks).
    let mut canonical: HashMap<Option<calibro_dex::VReg>, BlockId> = HashMap::new();
    let mut alias: HashMap<BlockId, BlockId> = HashMap::new();
    for block in &graph.blocks {
        if !block.insns.is_empty() {
            continue;
        }
        if let HTerminator::Return { src } = block.terminator {
            match canonical.get(&src) {
                Some(&keep) => {
                    alias.insert(block.id, keep);
                }
                None => {
                    canonical.insert(src, block.id);
                }
            }
        }
    }
    if alias.is_empty() {
        return 0;
    }
    let mut changes = 0;
    let mut fix = |b: &mut BlockId| {
        if let Some(&keep) = alias.get(b) {
            *b = keep;
            changes += 1;
        }
    };
    for block in &mut graph.blocks {
        match &mut block.terminator {
            HTerminator::Goto { target } => fix(target),
            HTerminator::If { then_bb, else_bb, .. }
            | HTerminator::IfZ { then_bb, else_bb, .. } => {
                fix(then_bb);
                fix(else_bb);
            }
            HTerminator::Switch { targets, default, .. } => {
                for t in targets {
                    fix(t);
                }
                fix(default);
            }
            _ => {}
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{HBlock, HInsn};
    use calibro_dex::{Cmp, MethodId, VReg};

    #[test]
    fn duplicate_returns_merge() {
        let ret = |id: u32| HBlock {
            id: BlockId(id),
            insns: vec![],
            terminator: HTerminator::Return { src: Some(VReg(0)) },
        };
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Eq,
                        a: VReg(1),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                ret(1),
                ret(2),
            ],
        };
        assert_eq!(run(&mut g), 1);
        match g.blocks[0].terminator {
            HTerminator::IfZ { then_bb, else_bb, .. } => {
                assert_eq!(then_bb, BlockId(1));
                assert_eq!(else_bb, BlockId(1), "second return redirected to the first");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn distinct_return_values_stay_separate() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Eq,
                        a: VReg(1),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(1)) },
                },
            ],
        };
        assert_eq!(run(&mut g), 0);
    }

    #[test]
    fn blocks_with_bodies_are_not_merged() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Eq,
                        a: VReg(1),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 1 }],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 2 }],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
            ],
        };
        assert_eq!(run(&mut g), 0);
    }
}
