//! The optimization-pass pipeline — the "opt passes" stage of the
//! paper's Figure 5, reproducing dex2oat's size-relevant HGraph passes.

pub mod constant_folding;
pub mod copy_prop;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod return_merge;
pub mod simplify;

use crate::graph::HGraph;

/// Counters reported by [`run_pipeline`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// Instructions folded to constants / branches simplified.
    pub folded: usize,
    /// Operand replacements by copy propagation.
    pub copies_propagated: usize,
    /// Expressions replaced by moves (CSE).
    pub cse_hits: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Algebraic simplifications applied.
    pub simplified: usize,
    /// Return edges merged.
    pub returns_merged: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
    /// Number of pipeline iterations executed.
    pub iterations: usize,
    /// Instructions in the graph before the pipeline ran.
    pub insns_in: usize,
    /// Instructions in the graph after the pipeline ran.
    pub insns_out: usize,
}

impl PassStats {
    /// Total number of individual changes.
    ///
    /// Excludes the instruction-delta counters (`insns_in`/`insns_out`):
    /// `total() == 0` means the pipeline changed nothing, which is what
    /// idempotence checks rely on.
    #[must_use]
    pub fn total(&self) -> usize {
        self.folded
            + self.copies_propagated
            + self.cse_hits
            + self.dead_removed
            + self.simplified
            + self.returns_merged
            + self.blocks_removed
    }

    /// Net instructions removed by the pipeline (never negative: passes
    /// only shrink or keep the graph).
    #[must_use]
    pub fn insns_removed(&self) -> usize {
        self.insns_in.saturating_sub(self.insns_out)
    }
}

impl core::ops::AddAssign for PassStats {
    /// Accumulates another run's counters (used to aggregate per-method
    /// stats into whole-build observability totals).
    fn add_assign(&mut self, other: PassStats) {
        self.folded += other.folded;
        self.copies_propagated += other.copies_propagated;
        self.cse_hits += other.cse_hits;
        self.dead_removed += other.dead_removed;
        self.simplified += other.simplified;
        self.returns_merged += other.returns_merged;
        self.blocks_removed += other.blocks_removed;
        self.iterations += other.iterations;
        self.insns_in += other.insns_in;
        self.insns_out += other.insns_out;
    }
}

/// Per-pass switches for the pipeline — one flag per optimization, so
/// differential harnesses can compile under every pass subset and prove
/// each combination observationally equal to the full pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Copy propagation.
    pub copy_prop: bool,
    /// Constant folding / constant-branch resolution.
    pub constant_folding: bool,
    /// Algebraic simplification / strength reduction.
    pub simplify: bool,
    /// Local common-subexpression elimination.
    pub cse: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Return-edge merging.
    pub return_merge: bool,
    /// Unreachable-block removal.
    pub remove_unreachable: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::all()
    }
}

impl PipelineConfig {
    /// Every pass enabled — the standard dex2oat-style pipeline.
    #[must_use]
    pub const fn all() -> PipelineConfig {
        PipelineConfig {
            copy_prop: true,
            constant_folding: true,
            simplify: true,
            cse: true,
            dce: true,
            return_merge: true,
            remove_unreachable: true,
        }
    }

    /// Every pass disabled — codegen sees the graph as built.
    #[must_use]
    pub const fn none() -> PipelineConfig {
        PipelineConfig {
            copy_prop: false,
            constant_folding: false,
            simplify: false,
            cse: false,
            dce: false,
            return_merge: false,
            remove_unreachable: false,
        }
    }

    /// A short human-readable tag naming the enabled passes (used in
    /// conformance-harness labels and divergence reports).
    #[must_use]
    pub fn label(&self) -> String {
        if *self == PipelineConfig::all() {
            return "all".to_owned();
        }
        if *self == PipelineConfig::none() {
            return "none".to_owned();
        }
        let flags = [
            (self.copy_prop, "cp"),
            (self.constant_folding, "fold"),
            (self.simplify, "simp"),
            (self.cse, "cse"),
            (self.dce, "dce"),
            (self.return_merge, "rm"),
            (self.remove_unreachable, "unr"),
        ];
        let on: Vec<&str> = flags.iter().filter(|(f, _)| *f).map(|&(_, n)| n).collect();
        on.join("+")
    }
}

/// Runs the standard pass pipeline (every pass enabled) to a fixpoint.
pub fn run_pipeline(graph: &mut HGraph) -> PassStats {
    run_pipeline_with(graph, &PipelineConfig::all())
}

/// Runs the pass pipeline with per-pass switches to a fixpoint (bounded
/// at 4 iterations, which suffices for the pass set — each iteration
/// only exposes a bounded amount of new work).
pub fn run_pipeline_with(graph: &mut HGraph, config: &PipelineConfig) -> PassStats {
    let mut stats = PassStats { insns_in: graph.insn_count(), ..PassStats::default() };
    for _ in 0..4 {
        let mut round = 0;
        if config.copy_prop {
            let n = copy_prop::run(graph);
            stats.copies_propagated += n;
            round += n;
        }
        if config.constant_folding {
            let n = constant_folding::run(graph);
            stats.folded += n;
            round += n;
        }
        if config.simplify {
            let n = simplify::run(graph);
            stats.simplified += n;
            round += n;
        }
        if config.cse {
            let n = cse::run(graph);
            stats.cse_hits += n;
            round += n;
        }
        if config.dce {
            let n = dce::run(graph);
            stats.dead_removed += n;
            round += n;
        }
        if config.return_merge {
            let n = return_merge::run(graph);
            stats.returns_merged += n;
            round += n;
        }
        if config.remove_unreachable {
            let n = dce::remove_unreachable(graph);
            stats.blocks_removed += n;
            round += n;
        }
        stats.iterations += 1;
        if round == 0 {
            break;
        }
    }
    stats.insns_out = graph.insn_count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock, HInsn, HTerminator};
    use calibro_dex::{BinOp, Cmp, MethodId, VReg};

    #[test]
    fn pipeline_shrinks_redundant_code() {
        // Constant condition guards two identical returns through
        // redundant arithmetic — the pipeline collapses all of it.
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 4,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![
                        HInsn::Const { dst: VReg(0), value: 3 },
                        HInsn::BinLit { op: BinOp::Mul, dst: VReg(1), a: VReg(0), lit: 4 },
                        HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(1), b: VReg(1) }, // dead
                    ],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Gt,
                        a: VReg(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(1)) },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(1)) },
                },
            ],
        };
        let before = g.insn_count();
        let stats = run_pipeline(&mut g);
        assert!(stats.total() > 0);
        assert!(g.insn_count() < before);
        // The constant branch was resolved and the duplicate return block
        // removed as unreachable.
        assert_eq!(g.blocks.len(), 2);
        assert!(matches!(g.blocks[0].terminator, HTerminator::Goto { .. }));
        // v1 = 3 * 4 folded to 12.
        assert!(g.blocks[0].insns.contains(&HInsn::Const { dst: VReg(1), value: 12 }));
    }

    #[test]
    fn stats_track_instruction_deltas_and_merge() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 4,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 3 },
                    HInsn::BinLit { op: BinOp::Mul, dst: VReg(1), a: VReg(0), lit: 4 },
                    HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(1), b: VReg(1) },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        let before = g.insn_count();
        let stats = run_pipeline(&mut g);
        assert_eq!(stats.insns_in, before);
        assert_eq!(stats.insns_out, g.insn_count());
        assert_eq!(stats.insns_removed(), before - g.insn_count());

        let mut sum = PassStats::default();
        sum += stats;
        sum += stats;
        assert_eq!(sum.insns_in, 2 * stats.insns_in);
        assert_eq!(sum.total(), 2 * stats.total());
        assert_eq!(sum.iterations, 2 * stats.iterations);
    }

    #[test]
    fn disabled_pipeline_changes_nothing() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 4,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 3 },
                    HInsn::BinLit { op: BinOp::Mul, dst: VReg(1), a: VReg(0), lit: 4 },
                    HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(1), b: VReg(1) },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        let snapshot = format!("{g:?}");
        let stats = run_pipeline_with(&mut g, &PipelineConfig::none());
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.insns_in, stats.insns_out);
        assert_eq!(format!("{g:?}"), snapshot);
    }

    #[test]
    fn single_pass_subsets_run_only_their_pass() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 4,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 3 },
                    HInsn::BinLit { op: BinOp::Mul, dst: VReg(1), a: VReg(0), lit: 4 },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        let cfg = PipelineConfig { constant_folding: true, ..PipelineConfig::none() };
        let stats = run_pipeline_with(&mut g, &cfg);
        assert!(stats.folded > 0);
        assert_eq!(stats.total(), stats.folded, "only folding may report changes");
    }

    #[test]
    fn config_labels_are_stable() {
        assert_eq!(PipelineConfig::all().label(), "all");
        assert_eq!(PipelineConfig::none().label(), "none");
        let cfg = PipelineConfig { dce: false, ..PipelineConfig::all() };
        assert_eq!(cfg.label(), "cp+fold+simp+cse+rm+unr");
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 3,
            num_args: 2,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(2) }],
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        };
        run_pipeline(&mut g);
        let snapshot = format!("{g:?}");
        let stats = run_pipeline(&mut g);
        assert_eq!(stats.total(), 0);
        assert_eq!(format!("{g:?}"), snapshot);
    }
}
