//! Global dead-code elimination via backward liveness dataflow, plus
//! unreachable-block elimination — dex2oat's "dead code and unreachable
//! code elimination".

use std::collections::HashSet;

use calibro_dex::VReg;

use crate::graph::{BlockId, HGraph, HTerminator};

/// Removes pure instructions whose results are never used. Returns the
/// number of removed instructions.
pub fn run(graph: &mut HGraph) -> usize {
    let preds = graph.predecessors();
    let n = graph.blocks.len();

    // live_out[b]: registers live when leaving block b. Fixpoint.
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let live_in = live_in_of(graph, bi, &live_out[bi]);
            for &p in &preds[bi] {
                for r in &live_in {
                    if live_out[p.index()].insert(*r) {
                        changed = true;
                    }
                }
            }
        }
    }

    // Sweep each block backwards, dropping dead pure instructions.
    let mut removed = 0;
    for (bi, block_live_out) in live_out.iter().enumerate().take(n) {
        let mut live = block_live_out.clone();
        for r in graph.blocks[bi].terminator.reads() {
            live.insert(r);
        }
        let insns = std::mem::take(&mut graph.blocks[bi].insns);
        let mut kept = Vec::with_capacity(insns.len());
        for insn in insns.into_iter().rev() {
            let dead = match insn.writes() {
                Some(dst) => insn.is_pure() && !live.contains(&dst),
                None => false,
            };
            if dead {
                removed += 1;
                continue;
            }
            if let Some(dst) = insn.writes() {
                live.remove(&dst);
            }
            for r in insn.reads() {
                live.insert(r);
            }
            kept.push(insn);
        }
        kept.reverse();
        graph.blocks[bi].insns = kept;
    }
    removed
}

/// Computes live-in of block `bi` given its live-out set.
fn live_in_of(graph: &HGraph, bi: usize, live_out: &HashSet<VReg>) -> HashSet<VReg> {
    let block = &graph.blocks[bi];
    let mut live = live_out.clone();
    for r in block.terminator.reads() {
        live.insert(r);
    }
    for insn in block.insns.iter().rev() {
        if let Some(dst) = insn.writes() {
            live.remove(&dst);
        }
        for r in insn.reads() {
            live.insert(r);
        }
    }
    live
}

/// Removes blocks unreachable from the entry and renumbers the rest.
/// Returns the number of removed blocks.
pub fn remove_unreachable(graph: &mut HGraph) -> usize {
    let reachable: HashSet<BlockId> = graph.reachable().into_iter().collect();
    if reachable.len() == graph.blocks.len() {
        return 0;
    }
    // Build the renumbering map.
    let mut remap = vec![None; graph.blocks.len()];
    let mut next = 0u32;
    for (i, block) in graph.blocks.iter().enumerate() {
        if reachable.contains(&block.id) {
            remap[i] = Some(BlockId(next));
            next += 1;
        }
    }
    let removed = graph.blocks.len() - next as usize;
    let fix = |b: &mut BlockId| {
        *b = remap[b.index()].expect("edge from a reachable block into a removed block");
    };
    graph.blocks.retain(|b| reachable.contains(&b.id));
    for block in &mut graph.blocks {
        fix(&mut block.id);
        match &mut block.terminator {
            HTerminator::Goto { target } => fix(target),
            HTerminator::If { then_bb, else_bb, .. }
            | HTerminator::IfZ { then_bb, else_bb, .. } => {
                fix(then_bb);
                fix(else_bb);
            }
            HTerminator::Switch { targets, default, .. } => {
                for t in targets {
                    fix(t);
                }
                fix(default);
            }
            _ => {}
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{HBlock, HInsn};
    use calibro_dex::{BinOp, Cmp, MethodId};

    #[test]
    fn removes_dead_pure_code() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 3,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 1 }, // dead
                    HInsn::Const { dst: VReg(1), value: 2 }, // live (returned)
                    HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(2) }, // dead
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        assert_eq!(run(&mut g), 2);
        assert_eq!(g.blocks[0].insns.len(), 1);
    }

    #[test]
    fn keeps_impure_dead_writes() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    // Result unused, but division can throw: must stay.
                    HInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(1), b: VReg(1) },
                ],
                terminator: HTerminator::Return { src: None },
            }],
        };
        assert_eq!(run(&mut g), 0);
        assert_eq!(g.blocks[0].insns.len(), 1);
    }

    #[test]
    fn liveness_crosses_blocks_and_loops() {
        // v0 set in entry, used after the loop: must survive even though
        // the loop body doesn't mention it.
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 42 }],
                    terminator: HTerminator::Goto { target: BlockId(1) },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![HInsn::BinLit {
                        op: BinOp::Add,
                        dst: VReg(1),
                        a: VReg(1),
                        lit: -1,
                    }],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Gt,
                        a: VReg(1),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
            ],
        };
        assert_eq!(run(&mut g), 0);
    }

    #[test]
    fn unreachable_blocks_are_dropped_and_renumbered() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 1,
            num_args: 0,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![],
                    terminator: HTerminator::Goto { target: BlockId(2) },
                },
                HBlock {
                    id: BlockId(1), // unreachable
                    insns: vec![HInsn::Const { dst: VReg(0), value: 9 }],
                    terminator: HTerminator::Return { src: None },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![],
                    terminator: HTerminator::Return { src: None },
                },
            ],
        };
        assert_eq!(remove_unreachable(&mut g), 1);
        assert_eq!(g.blocks.len(), 2);
        assert_eq!(g.blocks[0].terminator, HTerminator::Goto { target: BlockId(1) });
        assert_eq!(g.blocks[1].id, BlockId(1));
    }
}
