//! Whole-program method inlining — dex2oat's inliner, reproduced for
//! single-block callees. The related-work observation that "function
//! inlining may reduce code size if applied carefully" (paper §5) cuts
//! both ways for outlining: inlining duplicates callee bodies, which
//! *creates* repeats for LTBO to fold back.

use std::collections::HashMap;

use calibro_dex::VReg;

use crate::graph::{HGraph, HInsn, HTerminator};

/// Inlining thresholds.
#[derive(Clone, Copy, Debug)]
pub struct InlineConfig {
    /// Maximum callee body size (instructions, terminator excluded).
    pub max_callee_insns: usize,
    /// Maximum number of call sites replaced per caller.
    pub max_sites_per_caller: usize,
}

impl Default for InlineConfig {
    fn default() -> InlineConfig {
        InlineConfig { max_callee_insns: 10, max_sites_per_caller: 8 }
    }
}

/// A candidate callee body: straight-line instructions plus the
/// returned register (if any).
#[derive(Clone, Debug)]
struct InlineBody {
    insns: Vec<HInsn>,
    num_regs: u16,
    num_args: u16,
    returned: Option<VReg>,
}

/// Extracts the inlinable body of a graph: a single block ending in a
/// plain return, with no calls (keeping the inliner one level deep and
/// terminating).
fn inline_body(graph: &HGraph, config: &InlineConfig) -> Option<InlineBody> {
    if graph.blocks.len() != 1 {
        return None;
    }
    let block = &graph.blocks[0];
    if block.insns.len() > config.max_callee_insns {
        return None;
    }
    if block.insns.iter().any(|i| {
        matches!(i, HInsn::Invoke { .. } | HInsn::InvokeNative { .. } | HInsn::NewInstance { .. })
    }) {
        return None;
    }
    match block.terminator {
        HTerminator::Return { src } => Some(InlineBody {
            insns: block.insns.clone(),
            num_regs: graph.num_regs,
            num_args: graph.num_args,
            returned: src,
        }),
        _ => None,
    }
}

/// Runs whole-program inlining over the per-method graphs (indexed by
/// method id; `None` for native methods). Returns the number of call
/// sites inlined.
pub fn run_inlining(graphs: &mut [Option<HGraph>], config: &InlineConfig) -> usize {
    // Phase 1: snapshot inlinable bodies (pre-inlining state, so results
    // do not depend on method order).
    let bodies: HashMap<u32, InlineBody> = graphs
        .iter()
        .enumerate()
        .filter_map(|(id, g)| {
            let g = g.as_ref()?;
            inline_body(g, config).map(|b| (id as u32, b))
        })
        .collect();
    if bodies.is_empty() {
        return 0;
    }

    // Phase 2: rewrite call sites, caller by caller.
    let mut inlined = 0;
    for (caller_id, slot) in graphs.iter_mut().enumerate() {
        let Some(graph) = slot.as_mut() else { continue };
        // 2a: find the sites and the clone-register budget G.
        let mut budget = config.max_sites_per_caller;
        let mut clone_regs: u16 = 0;
        let mut sites = 0usize;
        for block in &graph.blocks {
            for insn in &block.insns {
                if let HInsn::Invoke { method, args, .. } = insn {
                    if budget > 0
                        && method.index() != caller_id
                        && bodies.contains_key(&method.0)
                        && args.len() == bodies[&method.0].num_args as usize
                    {
                        clone_regs += bodies[&method.0].num_regs;
                        budget -= 1;
                        sites += 1;
                    }
                }
            }
        }
        if sites == 0 {
            continue;
        }
        // 2b: arguments live in the trailing registers by convention;
        // growing the register file moves them. Shift the original arg
        // registers up by G first so the convention still holds.
        let old_n = graph.num_regs;
        let num_args = graph.num_args;
        let first_arg = old_n - num_args;
        let shift = |v: VReg| if v.0 >= first_arg { VReg(v.0 + clone_regs) } else { v };
        for block in &mut graph.blocks {
            for insn in &mut block.insns {
                *insn = remap_insn(insn, &shift);
            }
            remap_terminator(&mut block.terminator, &shift);
        }
        graph.num_regs = old_n + clone_regs;
        // Clones go into the vacated range [first_arg, first_arg + G).
        let mut clone_base = first_arg;

        // 2c: splice.
        let mut budget = config.max_sites_per_caller;
        for bi in 0..graph.blocks.len() {
            let mut new_insns = Vec::with_capacity(graph.blocks[bi].insns.len());
            for insn in std::mem::take(&mut graph.blocks[bi].insns) {
                let replaced = match &insn {
                    HInsn::Invoke { method, args, dst, .. }
                        if budget > 0
                            && method.index() != caller_id
                            && bodies.contains_key(&method.0)
                            && args.len() == bodies[&method.0].num_args as usize =>
                    {
                        let body = &bodies[&method.0];
                        splice(clone_base, body, args, *dst, &mut new_insns);
                        clone_base += body.num_regs;
                        budget -= 1;
                        inlined += 1;
                        true
                    }
                    _ => false,
                };
                if !replaced {
                    new_insns.push(insn);
                }
            }
            graph.blocks[bi].insns = new_insns;
        }
    }
    inlined
}

fn remap_terminator(term: &mut HTerminator, remap: &impl Fn(VReg) -> VReg) {
    match term {
        HTerminator::If { a, b, .. } => {
            *a = remap(*a);
            *b = remap(*b);
        }
        HTerminator::IfZ { a, .. } | HTerminator::Switch { src: a, .. } => *a = remap(*a),
        HTerminator::Return { src: Some(a) } | HTerminator::Throw { src: a } => *a = remap(*a),
        _ => {}
    }
}

/// Splices a callee body into `out`, remapping callee registers to a
/// fresh range starting at `base` and wiring arguments/return.
fn splice(base: u16, body: &InlineBody, args: &[VReg], dst: Option<VReg>, out: &mut Vec<HInsn>) {
    let remap = |v: VReg| VReg(base + v.0);
    // Arguments arrive in the callee's trailing registers.
    let first_arg = body.num_regs - body.num_args;
    for (i, &arg) in args.iter().enumerate() {
        out.push(HInsn::Move { dst: remap(VReg(first_arg + i as u16)), src: arg });
    }
    for insn in &body.insns {
        out.push(remap_insn(insn, &remap));
    }
    match (dst, body.returned) {
        (Some(d), Some(r)) => out.push(HInsn::Move { dst: d, src: remap(r) }),
        (Some(d), None) => out.push(HInsn::Const { dst: d, value: 0 }),
        _ => {}
    }
}

fn remap_insn(insn: &HInsn, remap: &impl Fn(VReg) -> VReg) -> HInsn {
    match insn.clone() {
        HInsn::Const { dst, value } => HInsn::Const { dst: remap(dst), value },
        HInsn::Move { dst, src } => HInsn::Move { dst: remap(dst), src: remap(src) },
        HInsn::Bin { op, dst, a, b } => {
            HInsn::Bin { op, dst: remap(dst), a: remap(a), b: remap(b) }
        }
        HInsn::BinLit { op, dst, a, lit } => {
            HInsn::BinLit { op, dst: remap(dst), a: remap(a), lit }
        }
        HInsn::IGet { dst, obj, field } => HInsn::IGet { dst: remap(dst), obj: remap(obj), field },
        HInsn::IPut { src, obj, field } => HInsn::IPut { src: remap(src), obj: remap(obj), field },
        HInsn::SGet { dst, slot } => HInsn::SGet { dst: remap(dst), slot },
        HInsn::SPut { src, slot } => HInsn::SPut { src: remap(src), slot },
        HInsn::NewInstance { dst, class } => HInsn::NewInstance { dst: remap(dst), class },
        HInsn::Invoke { kind, method, args, dst } => HInsn::Invoke {
            kind,
            method,
            args: args.into_iter().map(remap).collect(),
            dst: dst.map(remap),
        },
        HInsn::InvokeNative { method, args, dst } => HInsn::InvokeNative {
            method,
            args: args.into_iter().map(remap).collect(),
            dst: dst.map(remap),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_hgraph;
    use crate::eval::{eval_pure, EvalOutcome};
    use calibro_dex::MethodId;
    use calibro_dex::{BinOp, ClassId, DexInsn, InvokeKind, MethodBuilder};

    fn leaf_add() -> HGraph {
        // fn add(a, b) = a + b  (2 regs of work + 2 args).
        let mut b = MethodBuilder::new("add", 3, 2);
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(2) });
        b.push(DexInsn::Return { src: VReg(0) });
        let mut m = b.build(ClassId(0));
        m.id = MethodId(0);
        build_hgraph(&m)
    }

    fn caller() -> HGraph {
        // fn caller(a, b) = add(a, b) * 2
        let mut b = MethodBuilder::new("caller", 4, 2);
        b.push(DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: MethodId(0),
            args: vec![VReg(2), VReg(3)],
            dst: Some(VReg(0)),
        });
        b.push(DexInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(0), lit: 2 });
        b.push(DexInsn::Return { src: VReg(0) });
        let mut m = b.build(ClassId(0));
        m.id = MethodId(1);
        build_hgraph(&m)
    }

    #[test]
    fn inlines_small_leaf_and_preserves_semantics() {
        let mut graphs = vec![Some(leaf_add()), Some(caller())];
        let n = run_inlining(&mut graphs, &InlineConfig::default());
        assert_eq!(n, 1);
        let inlined = graphs[1].as_ref().unwrap();
        // No calls remain.
        assert!(!inlined.has_calls());
        // (3 + 4) * 2 == 14, same as calling for real.
        assert_eq!(eval_pure(inlined, &[3, 4], 1000), Ok(EvalOutcome::Returned(Some(14))));
        crate::check(inlined).unwrap();
    }

    #[test]
    fn large_callees_are_not_inlined() {
        let mut b = MethodBuilder::new("big", 3, 2);
        for _ in 0..20 {
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(2) });
        }
        b.push(DexInsn::Return { src: VReg(0) });
        let mut m = b.build(ClassId(0));
        m.id = MethodId(0);
        let mut graphs = vec![Some(build_hgraph(&m)), Some(caller())];
        assert_eq!(run_inlining(&mut graphs, &InlineConfig::default()), 0);
    }

    #[test]
    fn multi_block_callees_are_not_inlined() {
        let mut b = MethodBuilder::new("branchy", 3, 2);
        let l = b.label();
        b.if_z(calibro_dex::Cmp::Eq, VReg(1), l);
        b.push(DexInsn::Const { dst: VReg(0), value: 1 });
        b.bind(l);
        b.push(DexInsn::Return { src: VReg(0) });
        let mut m = b.build(ClassId(0));
        m.id = MethodId(0);
        let mut graphs = vec![Some(build_hgraph(&m)), Some(caller())];
        assert_eq!(run_inlining(&mut graphs, &InlineConfig::default()), 0);
    }

    #[test]
    fn recursion_is_never_inlined() {
        // A single-block self-caller can't exist (it would need a call),
        // but a caller must not inline *itself* as callee id == caller.
        let mut graphs = vec![Some(leaf_add())];
        // add calls nothing; nothing to inline.
        assert_eq!(run_inlining(&mut graphs, &InlineConfig::default()), 0);
    }

    #[test]
    fn native_slots_are_skipped() {
        let mut graphs = vec![None, Some(caller())];
        assert_eq!(run_inlining(&mut graphs, &InlineConfig::default()), 0);
    }
}
