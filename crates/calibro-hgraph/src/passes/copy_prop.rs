//! Local copy propagation: within a block, uses of a copied register are
//! redirected to the copy source while the copy relation holds.

use std::collections::HashMap;

use calibro_dex::VReg;

use crate::graph::{HGraph, HInsn, HTerminator};

/// Runs the pass; returns the number of operand replacements.
pub fn run(graph: &mut HGraph) -> usize {
    let mut changes = 0;
    for block in &mut graph.blocks {
        // copy_of[r] = s  means  r currently holds the same value as s.
        let mut copy_of: HashMap<VReg, VReg> = HashMap::new();
        let resolve =
            |copy_of: &HashMap<VReg, VReg>, r: VReg| copy_of.get(&r).copied().unwrap_or(r);
        let kill = |copy_of: &mut HashMap<VReg, VReg>, dst: VReg| {
            copy_of.remove(&dst);
            copy_of.retain(|_, src| *src != dst);
        };

        for insn in &mut block.insns {
            // Rewrite reads first.
            changes += rewrite_reads(insn, |r| resolve(&copy_of, r));
            // Then update the relation for the write.
            match insn {
                HInsn::Move { dst, src } if dst != src => {
                    let (d, s) = (*dst, *src);
                    kill(&mut copy_of, d);
                    copy_of.insert(d, s);
                }
                _ => {
                    if let Some(dst) = insn.writes() {
                        kill(&mut copy_of, dst);
                    }
                }
            }
        }
        changes += rewrite_terminator_reads(&mut block.terminator, |r| resolve(&copy_of, r));
    }
    changes
}

fn rewrite_reads(insn: &mut HInsn, resolve: impl Fn(VReg) -> VReg) -> usize {
    let mut n = 0;
    let mut fix = |r: &mut VReg| {
        let to = resolve(*r);
        if to != *r {
            *r = to;
            n += 1;
        }
    };
    match insn {
        HInsn::Move { src, .. } => fix(src),
        HInsn::Bin { a, b, .. } => {
            fix(a);
            fix(b);
        }
        HInsn::BinLit { a, .. } => fix(a),
        HInsn::IGet { obj, .. } => fix(obj),
        HInsn::IPut { src, obj, .. } => {
            fix(src);
            fix(obj);
        }
        HInsn::SPut { src, .. } => fix(src),
        HInsn::Invoke { args, .. } | HInsn::InvokeNative { args, .. } => {
            for a in args {
                fix(a);
            }
        }
        _ => {}
    }
    n
}

fn rewrite_terminator_reads(term: &mut HTerminator, resolve: impl Fn(VReg) -> VReg) -> usize {
    let mut n = 0;
    let mut fix = |r: &mut VReg| {
        let to = resolve(*r);
        if to != *r {
            *r = to;
            n += 1;
        }
    };
    match term {
        HTerminator::If { a, b, .. } => {
            fix(a);
            fix(b);
        }
        HTerminator::IfZ { a, .. } | HTerminator::Switch { src: a, .. } => fix(a),
        HTerminator::Return { src: Some(a) } | HTerminator::Throw { src: a } => fix(a),
        _ => {}
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock};
    use calibro_dex::{BinOp, MethodId};

    #[test]
    fn propagates_through_uses() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 3,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Move { dst: VReg(0), src: VReg(2) },
                    HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(0), b: VReg(0) },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        let changes = run(&mut g);
        assert_eq!(changes, 2);
        assert_eq!(
            g.blocks[0].insns[1],
            HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(2), b: VReg(2) }
        );
    }

    #[test]
    fn redefinition_kills_the_relation() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 3,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Move { dst: VReg(0), src: VReg(2) },
                    HInsn::Const { dst: VReg(2), value: 9 }, // source overwritten
                    HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(0), b: VReg(0) },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
        };
        let changes = run(&mut g);
        assert_eq!(changes, 0, "copy must not survive source redefinition");
    }

    #[test]
    fn terminator_reads_are_rewritten() {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![HInsn::Move { dst: VReg(0), src: VReg(1) }],
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        };
        let changes = run(&mut g);
        assert_eq!(changes, 1);
        assert_eq!(g.blocks[0].terminator, HTerminator::Return { src: Some(VReg(1)) });
    }
}
