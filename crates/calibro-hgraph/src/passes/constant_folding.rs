//! Constant folding and propagation + static branch simplification
//! (per-block, as in dex2oat's per-method HGraph passes).

use std::collections::HashMap;

use calibro_dex::VReg;

use crate::eval::{eval_binop, eval_cmp};
use crate::graph::{HGraph, HInsn, HTerminator};

/// Runs the pass; returns the number of instructions or terminators
/// rewritten.
pub fn run(graph: &mut HGraph) -> usize {
    let mut changes = 0;
    for block in &mut graph.blocks {
        let mut known: HashMap<VReg, i32> = HashMap::new();
        for insn in &mut block.insns {
            let rewritten = match insn {
                HInsn::Const { dst, value } => {
                    known.insert(*dst, *value);
                    continue;
                }
                HInsn::Move { dst, src } => known.get(src).map(|v| (*dst, *v)),
                HInsn::Bin { op, dst, a, b } => match (known.get(a), known.get(b)) {
                    (Some(&va), Some(&vb)) => eval_binop(*op, va, vb).map(|v| (*dst, v)),
                    _ => None,
                },
                HInsn::BinLit { op, dst, a, lit } => known
                    .get(a)
                    .and_then(|&va| eval_binop(*op, va, i32::from(*lit)))
                    .map(|v| (*dst, v)),
                _ => None,
            };
            match rewritten {
                Some((dst, value)) => {
                    *insn = HInsn::Const { dst, value };
                    known.insert(dst, value);
                    changes += 1;
                }
                None => {
                    if let Some(dst) = insn.writes() {
                        known.remove(&dst);
                    }
                }
            }
        }
        // Branch simplification on statically-known conditions.
        let new_term = match &block.terminator {
            HTerminator::If { cmp, a, b, then_bb, else_bb } => match (known.get(a), known.get(b)) {
                (Some(&va), Some(&vb)) => Some(HTerminator::Goto {
                    target: if eval_cmp(*cmp, va, vb) { *then_bb } else { *else_bb },
                }),
                _ => None,
            },
            HTerminator::IfZ { cmp, a, then_bb, else_bb } => {
                known.get(a).map(|&va| HTerminator::Goto {
                    target: if eval_cmp(*cmp, va, 0) { *then_bb } else { *else_bb },
                })
            }
            HTerminator::Switch { src, first_key, targets, default } => known.get(src).map(|&v| {
                let idx = i64::from(v) - i64::from(*first_key);
                let target = if idx >= 0 && (idx as usize) < targets.len() {
                    targets[idx as usize]
                } else {
                    *default
                };
                HTerminator::Goto { target }
            }),
            _ => None,
        };
        if let Some(t) = new_term {
            block.terminator = t;
            changes += 1;
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock};
    use calibro_dex::{BinOp, Cmp, MethodId};

    fn graph(blocks: Vec<HBlock>, num_regs: u16) -> HGraph {
        HGraph { method: MethodId(0), blocks, num_regs, num_args: 0 }
    }

    #[test]
    fn folds_chains() {
        let mut g = graph(
            vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 6 },
                    HInsn::Const { dst: VReg(1), value: 7 },
                    HInsn::Bin { op: BinOp::Mul, dst: VReg(2), a: VReg(0), b: VReg(1) },
                    HInsn::BinLit { op: BinOp::Add, dst: VReg(2), a: VReg(2), lit: 1 },
                ],
                terminator: HTerminator::Return { src: Some(VReg(2)) },
            }],
            3,
        );
        let changes = run(&mut g);
        assert_eq!(changes, 2);
        assert_eq!(g.blocks[0].insns[2], HInsn::Const { dst: VReg(2), value: 42 });
        assert_eq!(g.blocks[0].insns[3], HInsn::Const { dst: VReg(2), value: 43 });
    }

    #[test]
    fn never_folds_division_by_zero() {
        let mut g = graph(
            vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 5 },
                    HInsn::Const { dst: VReg(1), value: 0 },
                    HInsn::Bin { op: BinOp::Div, dst: VReg(2), a: VReg(0), b: VReg(1) },
                ],
                terminator: HTerminator::Return { src: Some(VReg(2)) },
            }],
            3,
        );
        run(&mut g);
        assert!(matches!(g.blocks[0].insns[2], HInsn::Bin { op: BinOp::Div, .. }));
    }

    #[test]
    fn simplifies_known_branches() {
        let mut g = graph(
            vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 0 }],
                    terminator: HTerminator::IfZ {
                        cmp: Cmp::Eq,
                        a: VReg(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![],
                    terminator: HTerminator::Return { src: None },
                },
                HBlock {
                    id: BlockId(2),
                    insns: vec![],
                    terminator: HTerminator::Return { src: None },
                },
            ],
            1,
        );
        run(&mut g);
        assert_eq!(g.blocks[0].terminator, HTerminator::Goto { target: BlockId(1) });
    }

    #[test]
    fn calls_kill_constants() {
        let mut g = graph(
            vec![HBlock {
                id: BlockId(0),
                insns: vec![
                    HInsn::Const { dst: VReg(0), value: 1 },
                    HInsn::Invoke {
                        kind: calibro_dex::InvokeKind::Static,
                        method: MethodId(1),
                        args: vec![],
                        dst: Some(VReg(0)),
                    },
                    HInsn::BinLit { op: BinOp::Add, dst: VReg(1), a: VReg(0), lit: 1 },
                ],
                terminator: HTerminator::Return { src: Some(VReg(1)) },
            }],
            2,
        );
        let changes = run(&mut g);
        assert_eq!(changes, 0, "value after call is unknown");
    }
}
