//! Instruction simplification and strength reduction (dex2oat's
//! "strength reduction" family): algebraic identities on binary ops.

use calibro_dex::{BinOp, VReg};

use crate::graph::{HGraph, HInsn};

/// Runs the pass; returns the number of simplified instructions.
pub fn run(graph: &mut HGraph) -> usize {
    let mut changes = 0;
    for block in &mut graph.blocks {
        for insn in &mut block.insns {
            if let Some(simpler) = simplify(insn) {
                *insn = simpler;
                changes += 1;
            }
        }
    }
    changes
}

fn simplify(insn: &HInsn) -> Option<HInsn> {
    match *insn {
        HInsn::BinLit { op, dst, a, lit } => match (op, lit) {
            // x * 2^k  ->  x << k (the canonical strength reduction).
            (BinOp::Mul, l) if l > 1 && (l as u16).is_power_of_two() => Some(HInsn::BinLit {
                op: BinOp::Shl,
                dst,
                a,
                lit: i16::from((l as u16).trailing_zeros() as u8),
            }),
            (BinOp::Mul, 1) => Some(HInsn::Move { dst, src: a }),
            (BinOp::Mul, 0) => Some(HInsn::Const { dst, value: 0 }),
            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr, 0) => {
                Some(HInsn::Move { dst, src: a })
            }
            (BinOp::And, 0) => Some(HInsn::Const { dst, value: 0 }),
            (BinOp::And, -1) => Some(HInsn::Move { dst, src: a }),
            (BinOp::Div, 1) => Some(HInsn::Move { dst, src: a }),
            _ => None,
        },
        HInsn::Bin { op, dst, a, b } if a == b => match op {
            // x - x == 0, x ^ x == 0.
            BinOp::Sub | BinOp::Xor => Some(HInsn::Const { dst, value: 0 }),
            // x & x == x | x == x.
            BinOp::And | BinOp::Or => Some(HInsn::Move { dst, src: a }),
            _ => None,
        },
        HInsn::Move { dst, src } if dst == src => {
            // A self-move is a nop; canonicalize to Const? No — drop is
            // DCE's job; rewrite into a no-op-equivalent is not smaller.
            None
        }
        _ => None,
    }
    .filter(|s| s != insn)
}

/// Convenience for tests: the register the instruction defines.
#[allow(dead_code)]
fn defined(insn: &HInsn) -> Option<VReg> {
    insn.writes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock, HTerminator};
    use calibro_dex::MethodId;

    fn apply(insn: HInsn) -> HInsn {
        let mut g = HGraph {
            method: MethodId(0),
            num_regs: 4,
            num_args: 2,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns: vec![insn],
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        };
        run(&mut g);
        g.blocks[0].insns[0].clone()
    }

    #[test]
    fn multiply_by_power_of_two_becomes_shift() {
        let out = apply(HInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(2), lit: 8 });
        assert_eq!(out, HInsn::BinLit { op: BinOp::Shl, dst: VReg(0), a: VReg(2), lit: 3 });
    }

    #[test]
    fn additive_identities() {
        let out = apply(HInsn::BinLit { op: BinOp::Add, dst: VReg(0), a: VReg(2), lit: 0 });
        assert_eq!(out, HInsn::Move { dst: VReg(0), src: VReg(2) });
        let out = apply(HInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(2), lit: 0 });
        assert_eq!(out, HInsn::Const { dst: VReg(0), value: 0 });
        let out = apply(HInsn::BinLit { op: BinOp::And, dst: VReg(0), a: VReg(2), lit: -1 });
        assert_eq!(out, HInsn::Move { dst: VReg(0), src: VReg(2) });
    }

    #[test]
    fn same_operand_folds() {
        let out = apply(HInsn::Bin { op: BinOp::Xor, dst: VReg(0), a: VReg(2), b: VReg(2) });
        assert_eq!(out, HInsn::Const { dst: VReg(0), value: 0 });
        let out = apply(HInsn::Bin { op: BinOp::Or, dst: VReg(0), a: VReg(2), b: VReg(2) });
        assert_eq!(out, HInsn::Move { dst: VReg(0), src: VReg(2) });
    }

    #[test]
    fn negative_multiplier_untouched() {
        // -32768 as u16 is a power of two bit pattern; must not trigger.
        let insn = HInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(2), lit: i16::MIN };
        assert_eq!(apply(insn.clone()), insn);
        let insn = HInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(2), lit: -4 };
        assert_eq!(apply(insn.clone()), insn);
    }

    #[test]
    fn division_by_one_is_safe_to_elide() {
        let out = apply(HInsn::BinLit { op: BinOp::Div, dst: VReg(0), a: VReg(2), lit: 1 });
        assert_eq!(out, HInsn::Move { dst: VReg(0), src: VReg(2) });
    }
}
