//! Local common-subexpression elimination (dex2oat lists global CSE; this
//! reproduction implements the per-block variant over pure expressions).

use std::collections::HashMap;

use calibro_dex::{BinOp, VReg};

use crate::graph::{HGraph, HInsn};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Expr {
    Bin(BinOp, VReg, VReg),
    BinLit(BinOp, VReg, i16),
}

/// Runs the pass; returns the number of expressions replaced by moves.
pub fn run(graph: &mut HGraph) -> usize {
    let mut changes = 0;
    for block in &mut graph.blocks {
        // available[expr] = register currently holding its value.
        let mut available: HashMap<Expr, VReg> = HashMap::new();
        for insn in &mut block.insns {
            let expr = match insn {
                HInsn::Bin { op, a, b, .. } if !matches!(op, BinOp::Div) => {
                    Some(Expr::Bin(*op, *a, *b))
                }
                HInsn::BinLit { op, a, lit, .. } if !matches!(op, BinOp::Div) => {
                    Some(Expr::BinLit(*op, *a, *lit))
                }
                _ => None,
            };
            if let (Some(expr), Some(dst)) = (expr, insn.writes()) {
                if let Some(&holder) = available.get(&expr) {
                    if holder != dst {
                        *insn = HInsn::Move { dst, src: holder };
                        changes += 1;
                    }
                    invalidate(&mut available, dst);
                    // After `dst = holder`, dst holds the expression too,
                    // but keeping a single holder is simpler and sound.
                    continue;
                }
                invalidate(&mut available, dst);
                // A self-overwriting expression (dst is one of its own
                // operands, e.g. `v2 = v2 + v4`) must not be recorded:
                // the table entry would describe the pre-instruction
                // operand value, which this instruction just destroyed.
                let reads_dst = match expr {
                    Expr::Bin(_, a, b) => a == dst || b == dst,
                    Expr::BinLit(_, a, _) => a == dst,
                };
                if !reads_dst {
                    available.insert(expr, dst);
                }
            } else if let Some(dst) = insn.writes() {
                invalidate(&mut available, dst);
            }
        }
    }
    changes
}

/// Drops every expression that reads or is held in `reg`.
fn invalidate(available: &mut HashMap<Expr, VReg>, reg: VReg) {
    available.retain(|expr, holder| {
        if *holder == reg {
            return false;
        }
        match expr {
            Expr::Bin(_, a, b) => *a != reg && *b != reg,
            Expr::BinLit(_, a, _) => *a != reg,
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{BlockId, HBlock, HTerminator};
    use calibro_dex::MethodId;

    fn one_block(insns: Vec<HInsn>, num_regs: u16) -> HGraph {
        HGraph {
            method: MethodId(0),
            num_regs,
            num_args: 2,
            blocks: vec![HBlock {
                id: BlockId(0),
                insns,
                terminator: HTerminator::Return { src: Some(VReg(0)) },
            }],
        }
    }

    #[test]
    fn duplicate_expression_becomes_move() {
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(2), b: VReg(3) },
                HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 1);
        assert_eq!(g.blocks[0].insns[1], HInsn::Move { dst: VReg(1), src: VReg(0) });
    }

    #[test]
    fn operand_redefinition_invalidates() {
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(2), b: VReg(3) },
                HInsn::Const { dst: VReg(2), value: 5 },
                HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0);
    }

    #[test]
    fn holder_redefinition_invalidates() {
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(2), b: VReg(3) },
                HInsn::Const { dst: VReg(0), value: 5 },
                HInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0);
    }

    #[test]
    fn division_is_not_cse_candidate() {
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(2), b: VReg(3) },
                HInsn::Bin { op: BinOp::Div, dst: VReg(1), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0, "division can throw; must not be merged");
    }

    #[test]
    fn self_overwriting_expression() {
        // dst equals an operand: x0 = x0 + x1 twice must NOT fold — the
        // second computes a different value.
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(2), b: VReg(3) },
                HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0);
    }

    #[test]
    fn self_overwriting_expression_is_not_recorded() {
        // Found by the conformance harness (motif-app seed 42, shrunk):
        // `v2 = v2 + v4; v0 = v2 + v4` — the first add destroys its own
        // operand, so the second is a DIFFERENT value and must stay a
        // real add, not become `Move v0 <- v2`.
        let mut g = one_block(
            vec![
                HInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(2), b: VReg(3) },
                HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(2), b: VReg(3) },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0);
        assert_eq!(
            g.blocks[0].insns[1],
            HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(2), b: VReg(3) }
        );

        // Same for the literal form.
        let mut g = one_block(
            vec![
                HInsn::BinLit { op: BinOp::Add, dst: VReg(2), a: VReg(2), lit: 7 },
                HInsn::BinLit { op: BinOp::Add, dst: VReg(0), a: VReg(2), lit: 7 },
            ],
            4,
        );
        assert_eq!(run(&mut g), 0);
    }
}
