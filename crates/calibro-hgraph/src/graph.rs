//! The HGraph IR: dex2oat's control-flow-graph intermediate
//! representation, reproduced as a register-based CFG.
//!
//! ART's real HGraph is SSA-form; this reproduction keeps virtual
//! registers and runs dataflow-based passes instead, which preserves the
//! pipeline structure the paper relies on (Figure 5: `method -> HGraph ->
//! opt passes -> code generation`) without the full SSA machinery.

use calibro_dex::{BinOp, ClassId, Cmp, FieldId, InvokeKind, MethodId, StaticId, VReg};

/// Identifier of a basic block within one [`HGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A non-terminator HGraph instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant fields are self-describing operands
pub enum HInsn {
    /// `dst = value`.
    Const { dst: VReg, value: i32 },
    /// `dst = src`.
    Move { dst: VReg, src: VReg },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: VReg, a: VReg, b: VReg },
    /// `dst = a <op> lit`.
    BinLit { op: BinOp, dst: VReg, a: VReg, lit: i16 },
    /// `dst = obj.field`.
    IGet { dst: VReg, obj: VReg, field: FieldId },
    /// `obj.field = src`.
    IPut { src: VReg, obj: VReg, field: FieldId },
    /// `dst = statics[slot]`.
    SGet { dst: VReg, slot: StaticId },
    /// `statics[slot] = src`.
    SPut { src: VReg, slot: StaticId },
    /// `dst = new class`.
    NewInstance { dst: VReg, class: ClassId },
    /// Java method call.
    Invoke { kind: InvokeKind, method: MethodId, args: Vec<VReg>, dst: Option<VReg> },
    /// JNI method call.
    InvokeNative { method: MethodId, args: Vec<VReg>, dst: Option<VReg> },
}

impl HInsn {
    /// Registers read.
    #[must_use]
    pub fn reads(&self) -> Vec<VReg> {
        match self {
            HInsn::Move { src, .. } => vec![*src],
            HInsn::Bin { a, b, .. } => vec![*a, *b],
            HInsn::BinLit { a, .. } => vec![*a],
            HInsn::IGet { obj, .. } => vec![*obj],
            HInsn::IPut { src, obj, .. } => vec![*src, *obj],
            HInsn::SPut { src, .. } => vec![*src],
            HInsn::Invoke { args, .. } | HInsn::InvokeNative { args, .. } => args.clone(),
            _ => Vec::new(),
        }
    }

    /// Register written, if any.
    #[must_use]
    pub fn writes(&self) -> Option<VReg> {
        match self {
            HInsn::Const { dst, .. }
            | HInsn::Move { dst, .. }
            | HInsn::Bin { dst, .. }
            | HInsn::BinLit { dst, .. }
            | HInsn::IGet { dst, .. }
            | HInsn::SGet { dst, .. }
            | HInsn::NewInstance { dst, .. } => Some(*dst),
            HInsn::Invoke { dst, .. } | HInsn::InvokeNative { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Returns `true` if removing this instruction (when its result is
    /// dead) cannot change observable behaviour. Division is impure — it
    /// can throw.
    #[must_use]
    pub fn is_pure(&self) -> bool {
        match self {
            HInsn::Const { .. } | HInsn::Move { .. } | HInsn::BinLit { .. } => {
                !matches!(self, HInsn::BinLit { op: BinOp::Div, .. })
            }
            HInsn::Bin { op, .. } => !matches!(op, BinOp::Div),
            HInsn::SGet { .. } => true,
            // Field loads can fault on null receivers.
            _ => false,
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant fields are self-describing operands
pub enum HTerminator {
    /// Unconditional jump.
    Goto { target: BlockId },
    /// Two-register conditional.
    If { cmp: Cmp, a: VReg, b: VReg, then_bb: BlockId, else_bb: BlockId },
    /// Register-vs-zero conditional.
    IfZ { cmp: Cmp, a: VReg, then_bb: BlockId, else_bb: BlockId },
    /// Jump table.
    Switch { src: VReg, first_key: i32, targets: Vec<BlockId>, default: BlockId },
    /// Return, optionally with a value.
    Return { src: Option<VReg> },
    /// Throw an exception value.
    Throw { src: VReg },
}

impl HTerminator {
    /// Successor blocks in evaluation order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            HTerminator::Goto { target } => vec![*target],
            HTerminator::If { then_bb, else_bb, .. }
            | HTerminator::IfZ { then_bb, else_bb, .. } => {
                vec![*then_bb, *else_bb]
            }
            HTerminator::Switch { targets, default, .. } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            HTerminator::Return { .. } | HTerminator::Throw { .. } => Vec::new(),
        }
    }

    /// Registers read by the terminator.
    #[must_use]
    pub fn reads(&self) -> Vec<VReg> {
        match self {
            HTerminator::If { a, b, .. } => vec![*a, *b],
            HTerminator::IfZ { a, .. } | HTerminator::Switch { src: a, .. } => vec![*a],
            HTerminator::Return { src: Some(a) } | HTerminator::Throw { src: a } => vec![*a],
            _ => Vec::new(),
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HBlock {
    /// The block's id (== its index in the graph).
    pub id: BlockId,
    /// Straight-line body.
    pub insns: Vec<HInsn>,
    /// The closing control transfer.
    pub terminator: HTerminator,
}

/// A method's control-flow graph.
#[derive(Clone, Debug)]
pub struct HGraph {
    /// The method this graph was built from.
    pub method: MethodId,
    /// Blocks; index 0 is the entry block.
    pub blocks: Vec<HBlock>,
    /// Virtual register count (arguments included).
    pub num_regs: u16,
    /// Argument count; arguments arrive in the trailing registers.
    pub num_args: u16,
}

impl HGraph {
    /// The entry block id.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Total instruction count including terminators.
    #[must_use]
    pub fn insn_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len() + 1).sum()
    }

    /// Predecessor map: `preds[b]` lists blocks jumping to `b`.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for block in &self.blocks {
            for succ in block.terminator.successors() {
                preds[succ.index()].push(block.id);
            }
        }
        preds
    }

    /// Blocks reachable from the entry, in depth-first order.
    #[must_use]
    pub fn reachable(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry()];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.index()], true) {
                continue;
            }
            order.push(b);
            for s in self.blocks[b.index()].terminator.successors() {
                stack.push(s);
            }
        }
        order
    }

    /// Returns `true` if any instruction is a call (method is non-leaf).
    #[must_use]
    pub fn has_calls(&self) -> bool {
        self.blocks.iter().any(|b| {
            b.insns.iter().any(|i| {
                matches!(
                    i,
                    HInsn::Invoke { .. } | HInsn::InvokeNative { .. } | HInsn::NewInstance { .. }
                )
            })
        })
    }

    /// Returns `true` if the graph contains a switch terminator.
    #[must_use]
    pub fn has_switch(&self) -> bool {
        self.blocks.iter().any(|b| matches!(b.terminator, HTerminator::Switch { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_graph() -> HGraph {
        HGraph {
            method: MethodId(0),
            num_regs: 2,
            num_args: 1,
            blocks: vec![
                HBlock {
                    id: BlockId(0),
                    insns: vec![HInsn::Const { dst: VReg(0), value: 1 }],
                    terminator: HTerminator::Goto { target: BlockId(1) },
                },
                HBlock {
                    id: BlockId(1),
                    insns: vec![],
                    terminator: HTerminator::Return { src: Some(VReg(0)) },
                },
            ],
        }
    }

    #[test]
    fn successor_and_predecessor_queries() {
        let g = two_block_graph();
        assert_eq!(g.blocks[0].terminator.successors(), vec![BlockId(1)]);
        let preds = g.predecessors();
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn reachability() {
        let mut g = two_block_graph();
        // Add an unreachable block.
        g.blocks.push(HBlock {
            id: BlockId(2),
            insns: vec![],
            terminator: HTerminator::Return { src: None },
        });
        let reach = g.reachable();
        assert!(reach.contains(&BlockId(0)) && reach.contains(&BlockId(1)));
        assert!(!reach.contains(&BlockId(2)));
    }

    #[test]
    fn purity() {
        assert!(HInsn::Const { dst: VReg(0), value: 3 }.is_pure());
        assert!(HInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(1) }.is_pure());
        assert!(!HInsn::Bin { op: BinOp::Div, dst: VReg(0), a: VReg(1), b: VReg(1) }.is_pure());
        assert!(!HInsn::IGet { dst: VReg(0), obj: VReg(1), field: FieldId(0) }.is_pure());
        assert!(!HInsn::Invoke {
            kind: InvokeKind::Static,
            method: MethodId(0),
            args: vec![],
            dst: None
        }
        .is_pure());
    }

    #[test]
    fn insn_count_includes_terminators() {
        assert_eq!(two_block_graph().insn_count(), 3);
    }
}
