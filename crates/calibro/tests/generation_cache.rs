//! Generation-aware cache behaviour: the per-method cache keys carry
//! the full options fingerprint — hot set included — so artifacts from
//! different profile generations can never be confused through a shared
//! [`ArtifactStore`], and returning to an earlier generation's hot set
//! replays that generation's bytes exactly.

use std::collections::HashSet;
use std::sync::Arc;

use calibro::{build_with_store, BuildOptions};
use calibro_cache::{ArtifactStore, CacheConfig};
use calibro_workloads::{generate, AppSpec};

/// Builds with hot sets A, B, A through one shared store. The hot-set
/// change must miss the cache completely (disjoint keys — a "cold"
/// generation must never replay a "hot" generation's artifacts), and
/// the third build must replay the first byte-identically from cache.
#[test]
fn hot_set_generations_have_disjoint_keys_and_replay_exactly() {
    let app = generate(&AppSpec::small("gen-cache", 11));
    let hot: HashSet<u32> = (0..app.dex.methods().len() as u32).filter(|m| m % 2 == 0).collect();
    let unrestricted = BuildOptions::cto_ltbo();
    let restricted = BuildOptions::cto_ltbo().with_hot_filter(hot);

    let store = Arc::new(ArtifactStore::new(CacheConfig::default()));

    let gen1 = build_with_store(&app.dex, &unrestricted, &store).expect("generation 1");
    let elf1 = calibro_oat::to_elf_bytes(&gen1.oat);
    let after_gen1 = store.stats();
    assert_eq!(after_gen1.hits, 0, "cold store must not hit");

    // Generation 2: same program, hot-restricted outlining. Every
    // method key differs, so nothing from generation 1 may be reused.
    let gen2 = build_with_store(&app.dex, &restricted, &store).expect("generation 2");
    let elf2 = calibro_oat::to_elf_bytes(&gen2.oat);
    let gen2_delta = store.stats().since(&after_gen1);
    assert_eq!(
        gen2_delta.hits, 0,
        "a hot-set change must not replay the previous generation's method artifacts"
    );
    assert_ne!(elf1, elf2, "hot-restricted outlining must change the linked image");

    // Back to generation 1's options: a full warm replay, byte-exact.
    let before_replay = store.stats();
    let replay = build_with_store(&app.dex, &unrestricted, &store).expect("generation 1 replay");
    let replay_delta = store.stats().since(&before_replay);
    assert_eq!(calibro_oat::to_elf_bytes(&replay.oat), elf1, "replay must be byte-identical");
    assert_eq!(
        replay_delta.hits,
        app.dex.methods().len() as u64,
        "every method must replay from the shared store"
    );
    assert_eq!(replay_delta.misses, 0, "no method may recompile on replay");

    // And generation 2 replays its own bytes — the store serves both
    // generations side by side without cross-talk.
    let replay2 = build_with_store(&app.dex, &restricted, &store).expect("generation 2 replay");
    assert_eq!(calibro_oat::to_elf_bytes(&replay2.oat), elf2);
}
