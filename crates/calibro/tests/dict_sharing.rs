//! Cross-tenant shared-dictionary behaviour: a cold tenant publishes
//! its outlined bodies, a sealed epoch serves them to later tenants at
//! call overhead only, and dictionary-routed builds stay conformant
//! and byte-deterministic at any thread count.

use std::collections::HashMap;
use std::sync::Arc;

use calibro::{BuildOptions, BuildSession, DictRegistry};
use calibro_cache::{ArtifactStore, CacheConfig};
use calibro_dex::{BinOp, DexFile, DexInsn, MethodBuilder, MethodId, VReg};
use calibro_oat::DictImage;
use calibro_runtime::{Runtime, RuntimeEnv};

fn env_for(dex: &DexFile) -> RuntimeEnv {
    RuntimeEnv {
        class_sizes: dex.classes().iter().map(calibro_dex::Class::instance_size).collect(),
        natives: HashMap::new(),
        statics: vec![0; dex.num_statics() as usize],
        icache: false,
    }
}

/// A dex file with heavy cross-method redundancy, the same motif shape
/// the LTBO correctness suite uses: `n` methods sharing a straight-line
/// body that outlines into multi-word candidates.
fn redundant_dex(n: usize) -> DexFile {
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 2);
    dex.reserve_statics(2);
    for i in 0..n {
        let mut b = MethodBuilder::new(format!("m{i}"), 6, 2);
        b.push(DexInsn::Const { dst: VReg(0), value: i as i32 });
        for _ in 0..3 {
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(4), b: VReg(5) });
            b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(2), a: VReg(1), b: VReg(4) });
            b.push(DexInsn::BinLit { op: BinOp::Shl, dst: VReg(3), a: VReg(2), lit: 3 });
            b.push(DexInsn::Bin { op: BinOp::Sub, dst: VReg(1), a: VReg(3), b: VReg(2) });
        }
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }
    dex
}

fn dict_session(registry: &Arc<DictRegistry>) -> BuildSession {
    BuildSession::with_config(CacheConfig::default()).with_dict_registry(Arc::clone(registry))
}

fn island_for(registry: &DictRegistry, oat: &calibro_oat::OatFile) -> Option<DictImage> {
    oat.dict.map(|d| DictImage {
        base_address: d.base_address,
        epoch: d.epoch,
        words: registry.layout(d.epoch).expect("linked epoch is fenced").words().to_vec(),
    })
}

#[test]
fn cold_tenant_publishes_and_sealed_epoch_serves_later_tenants() {
    let dex = redundant_dex(8);
    let registry = Arc::new(DictRegistry::default());
    let options = BuildOptions::cto_ltbo().with_dict();

    // Tenant 1, epoch 0 (empty island): every candidate misses, gets
    // published, and is outlined privately — the emitted image equals a
    // plain LTBO build's.
    let tenant1 = dict_session(&registry).build(&dex, &options).expect("tenant 1");
    assert_eq!(tenant1.stats.dict.hits, 0, "the empty island cannot hit");
    assert!(tenant1.stats.dict.publishes > 0, "cold candidates must publish");
    assert_eq!(tenant1.stats.dict_epoch, 0);
    assert!(tenant1.oat.dict.is_none(), "no reloc can use an empty island");
    let plain = calibro::build(&dex, &BuildOptions::cto_ltbo()).expect("plain ltbo");
    assert_eq!(
        calibro_oat::to_elf_bytes(&tenant1.oat),
        calibro_oat::to_elf_bytes(&plain.oat),
        "an all-miss dict build must emit exactly the private-outline image"
    );

    // Seal: the staged bodies become epoch 1's island.
    assert_eq!(registry.seal_epoch(), 1);

    // Tenant 2: byte-identical candidates now hit the island, so its
    // private outlined bodies disappear from its own text.
    let tenant2 = dict_session(&registry).build(&dex, &options).expect("tenant 2");
    assert!(tenant2.stats.dict.hits > 0, "sealed bodies must hit");
    assert_eq!(tenant2.stats.dict.publishes, 0, "nothing new to publish");
    assert_eq!(tenant2.stats.dict_epoch, 1);
    let link = tenant2.oat.dict.expect("dict-routed build must record its island");
    assert_eq!(link.epoch, 1);
    assert_eq!(link.size_words, tenant2.stats.dict_island_words);
    assert!(
        tenant2.oat.text_size_bytes() < tenant1.oat.text_size_bytes(),
        "island-routed text {} must shrink below private-outline text {}",
        tenant2.oat.text_size_bytes(),
        tenant1.oat.text_size_bytes()
    );
    calibro_oat::validate_structure(&tenant2.oat).expect("island calls are structurally valid");
    calibro_oat::validate_stack_maps(&tenant2.oat).expect("stack maps survive dict routing");

    // Aggregate win: with the island emitted once per daemon, every
    // tenant past the second rides free. (At exactly two tenants shared
    // and private tie — the island is the first tenant's bodies plus
    // one `ret` each, the same words a private outline carries.)
    let tenant3 = dict_session(&registry).build(&dex, &options).expect("tenant 3");
    assert!(tenant3.stats.dict.hits > 0);
    let island_bytes = registry.layout(1).unwrap().size_bytes();
    let shared_total = tenant1.oat.text_size_bytes()
        + tenant2.oat.text_size_bytes()
        + tenant3.oat.text_size_bytes()
        + island_bytes;
    let private_total = 3 * plain.oat.text_size_bytes();
    assert!(
        shared_total < private_total,
        "shared {shared_total} must beat private {private_total}"
    );
}

#[test]
fn dict_routed_build_behaves_identically() {
    let dex = redundant_dex(8);
    let env = env_for(&dex);
    let registry = Arc::new(DictRegistry::default());
    let options = BuildOptions::cto_ltbo().with_dict();

    // Warm the dictionary, then build the tenant that actually routes.
    dict_session(&registry).build(&dex, &options).expect("publisher");
    registry.seal_epoch();
    let routed = dict_session(&registry).build(&dex, &options).expect("routed");
    assert!(routed.stats.dict.hits > 0);

    let baseline = calibro::build(&dex, &BuildOptions::baseline()).expect("baseline");
    let island = island_for(&registry, &routed.oat);
    let mut rt_a = Runtime::new(&baseline.oat, &env);
    let mut rt_b = Runtime::new_with_dict(&routed.oat, &env, island.as_ref());
    for m in 0..8u32 {
        for args in [[3, 4], [0, 0], [-5, 17]] {
            let a = rt_a.call(MethodId(m), &args, 100_000).unwrap();
            let b = rt_b.call(MethodId(m), &args, 100_000).unwrap();
            assert_eq!(a.outcome, b.outcome, "m{m} args {args:?}");
        }
    }
    assert_eq!(rt_a.snapshot(), rt_b.snapshot(), "observable state must match");
}

#[test]
fn dict_builds_are_byte_identical_at_any_thread_count_warm_or_cold() {
    let dex = redundant_dex(8);
    let registry = Arc::new(DictRegistry::default());
    let seed = BuildOptions::cto_ltbo().with_dict();
    dict_session(&registry).build(&dex, &seed).expect("publisher");
    registry.seal_epoch();

    // The worker-thread count must never reach the bytes: 1-thread and
    // 8-thread builds, each cold then warm, all four images identical.
    // (Detection groups stay fixed at 4 — only the schedule varies.)
    let mut images = Vec::new();
    for threads in [1, 8] {
        let options = BuildOptions::cto_ltbo_parallel(4, threads).with_compile_threads(threads);
        // `threads` is fingerprinted, so cold really recompiles here.
        let mut options = options;
        options.dict = true;
        let store = Arc::new(ArtifactStore::new(CacheConfig::default()));
        let session =
            BuildSession::with_store(Arc::clone(&store)).with_dict_registry(Arc::clone(&registry));
        let cold = session.build(&dex, &options).expect("cold");
        let warm = session.build(&dex, &options).expect("warm");
        assert!(cold.stats.dict.hits > 0, "threads={threads} must still hit the island");
        assert_eq!(warm.stats.dict.hits, cold.stats.dict.hits, "warm arbitration must replay");
        images.push(calibro_oat::to_elf_bytes(&cold.oat));
        images.push(calibro_oat::to_elf_bytes(&warm.oat));
    }
    for image in &images[1..] {
        assert_eq!(
            image, &images[0],
            "dict-routed images must be byte-identical at any thread count, warm or cold"
        );
    }
    // And repeated global-mode builds replay their own bytes too.
    let a = dict_session(&registry).build(&dex, &seed).expect("global a");
    let b = dict_session(&registry).build(&dex, &seed).expect("global b");
    assert_eq!(calibro_oat::to_elf_bytes(&a.oat), calibro_oat::to_elf_bytes(&b.oat));
}
