//! LTBO correctness: outlined builds must be smaller, structurally
//! valid, and observationally identical to the baseline — on hand-built
//! programs and on randomized program suites.

use std::collections::{HashMap, HashSet};

use calibro::{build, BuildOptions, LtboMode};
use calibro_dex::{
    BinOp, Cmp, DexFile, DexInsn, FieldId, InvokeKind, MethodBuilder, MethodId, StaticId, VReg,
};
use calibro_runtime::{Runtime, RuntimeEnv};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env_for(dex: &DexFile) -> RuntimeEnv {
    RuntimeEnv {
        class_sizes: dex.classes().iter().map(calibro_dex::Class::instance_size).collect(),
        natives: HashMap::new(),
        statics: vec![0; dex.num_statics() as usize],
        icache: false,
    }
}

/// A dex file with heavy cross-method redundancy: `n` methods sharing a
/// long straight-line motif.
fn redundant_dex(n: usize) -> DexFile {
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 2);
    dex.reserve_statics(2);
    for i in 0..n {
        let mut b = MethodBuilder::new(format!("m{i}"), 6, 2);
        // Unique prefix so methods are not wholly identical.
        b.push(DexInsn::Const { dst: VReg(0), value: i as i32 });
        // Shared motif (12 instructions, no calls, no branches).
        for _ in 0..3 {
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(4), b: VReg(5) });
            b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(2), a: VReg(1), b: VReg(4) });
            b.push(DexInsn::BinLit { op: BinOp::Shl, dst: VReg(3), a: VReg(2), lit: 3 });
            b.push(DexInsn::Bin { op: BinOp::Sub, dst: VReg(1), a: VReg(3), b: VReg(2) });
        }
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }
    dex
}

#[test]
fn ltbo_shrinks_redundant_code() {
    let dex = redundant_dex(8);
    let baseline = build(&dex, &BuildOptions::baseline()).unwrap();
    let outlined = build(&dex, &BuildOptions::cto_ltbo()).unwrap();
    assert!(outlined.stats.ltbo.outlined_functions > 0);
    assert!(outlined.stats.ltbo.occurrences_replaced >= 8);
    assert!(
        outlined.oat.text_size_bytes() < baseline.oat.text_size_bytes(),
        "outlined {} >= baseline {}",
        outlined.oat.text_size_bytes(),
        baseline.oat.text_size_bytes()
    );
    calibro_oat::validate_stack_maps(&outlined.oat).unwrap();
}

#[test]
fn outlined_build_behaves_identically() {
    let dex = redundant_dex(8);
    let env = env_for(&dex);
    let baseline = build(&dex, &BuildOptions::baseline()).unwrap();
    let outlined = build(&dex, &BuildOptions::cto_ltbo()).unwrap();
    let mut rt_a = Runtime::new(&baseline.oat, &env);
    let mut rt_b = Runtime::new(&outlined.oat, &env);
    for m in 0..8u32 {
        for args in [[3, 4], [0, 0], [-5, 17]] {
            let a = rt_a.call(MethodId(m), &args, 100_000).unwrap();
            let b = rt_b.call(MethodId(m), &args, 100_000).unwrap();
            assert_eq!(a.outcome, b.outcome, "m{m} args {args:?}");
        }
    }
    assert_eq!(rt_a.heap_allocs(), rt_b.heap_allocs());
}

#[test]
fn parallel_mode_is_correct_but_may_miss_cross_group_repeats() {
    let dex = redundant_dex(12);
    let env = env_for(&dex);
    let global = build(&dex, &BuildOptions::cto_ltbo()).unwrap();
    let parallel = build(&dex, &BuildOptions::cto_ltbo_parallel(4, 2)).unwrap();
    // PlOpti never beats the global tree on size.
    assert!(parallel.oat.text_size_bytes() >= global.oat.text_size_bytes());
    // And still behaves identically.
    let mut rt = Runtime::new(&parallel.oat, &env);
    let inv = rt.call(MethodId(0), &[2, 3], 100_000).unwrap();
    let mut rt_base = Runtime::new(&build(&dex, &BuildOptions::baseline()).unwrap().oat, &env);
    let base = rt_base.call(MethodId(0), &[2, 3], 100_000).unwrap();
    assert_eq!(inv.outcome, base.outcome);
}

#[test]
fn hot_filtering_excludes_hot_bodies() {
    let dex = redundant_dex(8);
    let all_hot: HashSet<u32> = (0..8).collect();
    let unfiltered = build(&dex, &BuildOptions::cto_ltbo()).unwrap();
    let filtered = build(&dex, &BuildOptions::cto_ltbo().with_hot_filter(all_hot)).unwrap();
    // Methods have no slow paths here, so filtering everything disables
    // outlining entirely.
    assert_eq!(filtered.stats.ltbo.outlined_functions, 0);
    assert!(filtered.oat.text_size_bytes() > unfiltered.oat.text_size_bytes());
}

#[test]
fn hot_methods_still_outline_slow_paths() {
    // Methods whose only redundancy sits in division slow paths.
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 0);
    for i in 0..6 {
        let mut b = MethodBuilder::new(format!("d{i}"), 4, 2);
        b.push(DexInsn::Const { dst: VReg(0), value: i });
        b.push(DexInsn::Bin { op: BinOp::Div, dst: VReg(1), a: VReg(2), b: VReg(3) });
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(1) });
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }
    let all_hot: HashSet<u32> = (0..6).collect();
    let filtered = build(&dex, &BuildOptions::cto_ltbo().with_hot_filter(all_hot)).unwrap();
    assert!(
        filtered.stats.ltbo.hot_restricted_methods == 6,
        "all methods restricted to slow paths"
    );
    // The slow paths are two instructions + guard; with min_len 2 they
    // repeat across methods — at least one outlined function when the
    // benefit model approves.
    let env = env_for(&dex);
    let mut rt = Runtime::new(&filtered.oat, &env);
    assert_eq!(
        rt.call(MethodId(0), &[10, 2], 100_000).unwrap().outcome,
        calibro_runtime::ExecOutcome::Returned(5)
    );
    assert!(matches!(
        rt.call(MethodId(1), &[10, 0], 100_000).unwrap().outcome,
        calibro_runtime::ExecOutcome::Threw(calibro_runtime::ThrowKind::DivZero)
    ));
}

#[test]
fn switch_methods_are_excluded() {
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 0);
    let mut b = MethodBuilder::new("sw", 4, 1);
    let arm = b.label();
    let end = b.label();
    b.switch(VReg(3), 0, &[arm, arm]);
    b.bind(arm);
    // Redundant body inside the switch method.
    for _ in 0..8 {
        b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(3), b: VReg(3) });
        b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(1), a: VReg(0), b: VReg(3) });
    }
    b.bind(end);
    b.push(DexInsn::Return { src: VReg(0) });
    dex.add_method(b.build(class));

    let out = build(&dex, &BuildOptions::cto_ltbo()).unwrap();
    assert_eq!(out.stats.ltbo.excluded_methods, 1);
    assert_eq!(out.stats.ltbo.outlined_functions, 0);
}

// ---------------------------------------------------------------------
// Randomized differential suite.
// ---------------------------------------------------------------------

/// Generates a multi-method dex file with seeded redundancy: motifs are
/// drawn from a small pool so repeats occur across methods.
fn random_app(seed: u64, n_methods: usize) -> DexFile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 3);
    dex.reserve_statics(4);

    // Motif pool: short straight-line snippets.
    let motif_pool: Vec<Vec<DexInsn>> = (0..6)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(1000 + k);
            (0..4 + k as usize % 3)
                .map(|_| {
                    let ops = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And, BinOp::Or];
                    DexInsn::Bin {
                        op: ops[rng.gen_range(0..ops.len())],
                        dst: VReg(rng.gen_range(0..4)),
                        a: VReg(rng.gen_range(0..6)),
                        b: VReg(rng.gen_range(0..6)),
                    }
                })
                .collect()
        })
        .collect();

    for i in 0..n_methods {
        let mut b = MethodBuilder::new(format!("m{i}"), 6, 2);
        b.push(DexInsn::Const { dst: VReg(0), value: rng.gen_range(-100..100) });
        // Motifs read v0..v5 freely; seed the locals so every read is
        // definitely assigned (the verifier rejects undefined reads).
        for r in 1..4 {
            b.push(DexInsn::Const { dst: VReg(r), value: rng.gen_range(-10..10) });
        }
        let blocks = rng.gen_range(1..4);
        for _ in 0..blocks {
            // Optional guard.
            if rng.gen_bool(0.5) {
                let skip = b.label();
                b.if_z(Cmp::Lt, VReg(rng.gen_range(4..6)), skip);
                for insn in &motif_pool[rng.gen_range(0..motif_pool.len())] {
                    b.push(insn.clone());
                }
                b.bind(skip);
            } else {
                for insn in &motif_pool[rng.gen_range(0..motif_pool.len())] {
                    b.push(insn.clone());
                }
            }
            // Occasional heap/static traffic.
            if rng.gen_bool(0.3) {
                b.push(DexInsn::NewInstance { dst: VReg(1), class });
                b.push(DexInsn::IPut { src: VReg(0), obj: VReg(1), field: FieldId(0) });
                b.push(DexInsn::IGet { dst: VReg(2), obj: VReg(1), field: FieldId(0) });
                b.push(DexInsn::SPut { src: VReg(2), slot: StaticId(rng.gen_range(0..4)) });
            }
            // Call an earlier method (acyclic).
            if i > 0 && rng.gen_bool(0.4) {
                let callee = MethodId(rng.gen_range(0..i) as u32);
                b.push(DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                    args: vec![VReg(4), VReg(5)],
                    dst: Some(VReg(3)),
                });
                b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(3) });
            }
        }
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }
    dex
}

/// The suite body: every optimization level must behave identically to
/// the baseline on the random app for `seed`, across all ten methods.
/// Plain asserts so the promoted regression test below reuses it;
/// proptest catches the panics and shrinks.
fn assert_all_levels_equal(seed: u64, a0: i32, a1: i32) {
    let dex = random_app(seed, 10);
    let env = env_for(&dex);
    let baseline = build(&dex, &BuildOptions::baseline()).unwrap();
    let variants = [
        build(&dex, &BuildOptions::cto()).unwrap(),
        build(&dex, &BuildOptions::cto_ltbo()).unwrap(),
        build(&dex, &BuildOptions::cto_ltbo_parallel(3, 2)).unwrap(),
        build(
            &dex,
            &BuildOptions { cto: false, ltbo: Some(LtboMode::Global), ..BuildOptions::default() },
        )
        .unwrap(),
    ];
    let mut rt_base = Runtime::new(&baseline.oat, &env);
    let mut results = Vec::new();
    for m in 0..10u32 {
        results.push(rt_base.call(MethodId(m), &[a0, a1], 2_000_000).unwrap());
    }
    for (vi, variant) in variants.iter().enumerate() {
        calibro_oat::validate_stack_maps(&variant.oat).unwrap();
        let mut rt = Runtime::new(&variant.oat, &env);
        for m in 0..10u32 {
            let inv = rt.call(MethodId(m), &[a0, a1], 2_000_000).unwrap();
            assert_eq!(
                inv.outcome, results[m as usize].outcome,
                "variant {vi} method {m} seed {seed}"
            );
        }
        assert_eq!(rt.heap_allocs(), rt_base.heap_allocs());
        assert_eq!(
            rt.state_digest(),
            rt_base.state_digest(),
            "heap/static state diverged in variant {vi}"
        );
    }
}

/// Promoted from `ltbo_correctness.proptest-regressions`: the minimal
/// seed on which an early outlining bug diverged from the baseline.
/// Named and always-run so the case survives seed-file pruning.
#[test]
fn regression_seed_zero_all_levels_equal() {
    assert_all_levels_equal(0, 0, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every optimization level behaves identically to the baseline on
    /// random multi-method apps, across methods and argument sets.
    #[test]
    fn all_levels_are_observationally_equal(seed in 0u64..5_000, a0 in -50i32..50, a1 in 1i32..50) {
        assert_all_levels_equal(seed, a0, a1);
    }
}

#[test]
fn inlining_composes_with_outlining() {
    // dex2oat inlines small leaves; the duplicated bodies become LTBO
    // repeats. Correctness must hold across the composition.
    let dex = redundant_dex(6);
    let env = env_for(&dex);
    let plain = build(&dex, &BuildOptions::baseline()).unwrap();
    let composed =
        build(&dex, &BuildOptions { inlining: true, ..BuildOptions::cto_ltbo() }).unwrap();
    calibro_oat::validate_stack_maps(&composed.oat).unwrap();
    let mut rt_a = Runtime::new(&plain.oat, &env);
    let mut rt_b = Runtime::new(&composed.oat, &env);
    for m in 0..6u32 {
        let a = rt_a.call(MethodId(m), &[9, -3], 100_000).unwrap();
        let b = rt_b.call(MethodId(m), &[9, -3], 100_000).unwrap();
        assert_eq!(a.outcome, b.outcome, "m{m}");
    }
}
