//! The composable size-pass pipeline: every size transform between
//! codegen and link — today CTO's metadata-assisted LTBO and the
//! function-merge backend — is a [`SizePass`] stage over one shared
//! [`SizeArtifact`].
//!
//! Each pass declares
//!
//! * a **config fingerprint** ([`SizePass::fingerprint`]) folded into
//!   the build's 128-bit cache keys through
//!   [`fingerprint_options`](crate::fingerprint_options), exactly as
//!   [`LtboConfig`] always was — so no pass knob can silently be left
//!   out of a key;
//! * a **cache lane** in `calibro-cache` (the group-plan lane for
//!   outlining, the merge-plan lane for merging), each with its own
//!   memory + checksummed-disk tiers and hit/miss/store/evict counters
//!   surfaced through [`CacheStats`](calibro_cache::CacheStats); and
//! * its edits to the **typed inter-stage artifact**, whose
//!   [`digest`](SizeArtifact::digest) lets harnesses assert warm/cold
//!   equivalence between any two passes.
//!
//! Pass order is canonical: merge runs before outline, so LTBO sees
//! thunks (and skips them — a thunk's `bl`-outlined movs would clobber
//! the return address its island's `ret` consumes) and arbitration can
//! leave a group for the outliner to compress instead.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use calibro_cache::{ArtifactStore, CacheEntry, CacheKey, StableHasher, SymbolTemplate};
use calibro_codegen::CompiledMethod;
use calibro_dict::{DictSession, DictStats};
use calibro_isa::Insn;
use calibro_oat::{DictImage, MergedBody};

use crate::driver::{BuildError, BuildOptions};
use crate::fingerprint::{fingerprint_ltbo_config, fingerprint_merge_config};
use crate::ltbo::{run_ltbo_prepared, LtboConfig, LtboStats, MethodSymbols, OutlineError};
use crate::merge::{run_merge, MergeConfig, MergeStats};

/// The typed artifact flowing through the size passes and into the
/// linker: the (progressively rewritten) methods plus everything the
/// passes extracted out of them.
pub struct SizeArtifact {
    /// The methods, in method-index order — merged members become
    /// parameter thunks, outlined occurrences become `bl`s.
    pub methods: Vec<CompiledMethod>,
    /// Outlined function bodies, in `CallTarget::Outlined` index order.
    pub outlined: Vec<Vec<Insn>>,
    /// Merged-function islands, in `CallTarget::Merged` index order.
    pub merged: Vec<MergedBody>,
    /// Merge statistics (zeroed when the merge pass is off).
    pub merge: MergeStats,
    /// LTBO statistics (zeroed when LTBO is off).
    pub ltbo: LtboStats,
    /// Wall time of the merge pass.
    pub merge_time: Duration,
    /// Wall time of the outline pass.
    pub ltbo_time: Duration,
    /// Wall time of the outline pass's detection core: cache-key probes
    /// plus suffix-tree detection / plan replay (excludes symbolization
    /// and edit application).
    pub detect_time: Duration,
    /// Total instruction words before any size pass ran.
    pub words_before: usize,
    /// Shared-dictionary arbitration outcomes (zeroed without a
    /// dictionary session).
    pub dict: DictStats,
    /// Dictionary epoch the outline pass routed against (0 without a
    /// session).
    pub dict_epoch: u64,
    /// The island image this artifact's `CallTarget::Dict` relocations
    /// resolve into — handed to
    /// [`link_with_dict`](calibro_oat::link_with_dict). `None` without
    /// a dictionary session.
    pub dict_island: Option<DictImage>,
}

/// The historical name of the artifact the size stage hands the linker,
/// kept for callers of the staged API from before merging existed.
pub type LtboArtifact = SizeArtifact;

impl SizeArtifact {
    /// Wraps freshly compiled methods into the artifact every size pass
    /// edits in place.
    #[must_use]
    pub fn new(methods: Vec<CompiledMethod>) -> SizeArtifact {
        let words_before = methods.iter().map(CompiledMethod::size_words).sum();
        SizeArtifact {
            methods,
            outlined: Vec::new(),
            merged: Vec::new(),
            merge: MergeStats::default(),
            ltbo: LtboStats::default(),
            merge_time: Duration::default(),
            ltbo_time: Duration::default(),
            detect_time: Duration::default(),
            words_before,
            dict: DictStats::default(),
            dict_epoch: 0,
            dict_island: None,
        }
    }

    /// A digest of the artifact's content: methods, outlined bodies and
    /// merged islands. Equal digests mean the linker will produce
    /// byte-identical text segments.
    #[must_use]
    pub fn digest(&self) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_usize(self.methods.len());
        for m in &self.methods {
            hash_compiled(m, &mut h);
        }
        h.write_usize(self.outlined.len());
        for body in &self.outlined {
            h.write_usize(body.len());
            for insn in body {
                h.write_u32(insn.encode().unwrap_or(u32::MAX));
            }
        }
        h.write_usize(self.merged.len());
        for island in &self.merged {
            h.write_usize(island.insns.len());
            for insn in &island.insns {
                h.write_u32(insn.encode().unwrap_or(u32::MAX));
            }
        }
        // The dictionary island is part of what the linker reads: the
        // same methods against a different island resolve `Dict` calls
        // to different displacements.
        match &self.dict_island {
            None => h.write_tag(0),
            Some(d) => {
                h.write_tag(1);
                h.write_u64(d.base_address);
                h.write_u64(d.epoch);
                h.write_usize(d.words.len());
                for &w in &d.words {
                    h.write_u32(w);
                }
            }
        }
        h.finish()
    }
}

pub(crate) fn hash_compiled(m: &CompiledMethod, h: &mut StableHasher) {
    h.write_u32(m.method.0);
    h.write_usize(m.insns.len());
    for insn in &m.insns {
        // Unbound `bl` placeholders encode as 0 offsets; anything truly
        // unencodable is caught by the linker, not the digest.
        h.write_u32(insn.encode().unwrap_or(u32::MAX));
    }
    h.write_usize(m.pool.len());
    for &w in &m.pool {
        h.write_u32(w);
    }
    // Relocations are part of the linked bytes: a dict-routed build and
    // a private-outline build can carry identical instruction words
    // (both `bl` placeholders) yet link to different targets.
    crate::merge::hash_relocs(&m.relocs, h);
}

/// Session state the passes share: the artifact store behind each
/// pass's cache lane, the per-method store entries (source of cached
/// symbolization templates), and the warm-overlap symbolization slots.
/// Opaque to keep the warm-path internals (`MethodSymbols`) private;
/// built by [`PassContext::new`] or by
/// [`BuildSession`](crate::BuildSession) internally.
pub struct PassContext<'a> {
    pub(crate) store: Option<&'a ArtifactStore>,
    pub(crate) entries: Vec<Arc<CacheEntry>>,
    pub(crate) prepared: Vec<Option<MethodSymbols>>,
    pub(crate) hot_methods: Option<&'a HashSet<u32>>,
    pub(crate) dict: Option<&'a mut DictSession>,
}

impl<'a> PassContext<'a> {
    /// A context for driving passes outside a
    /// [`BuildSession`](crate::BuildSession): optional store (enables
    /// the plan-cache lanes), per-method entries (enables template
    /// replay; may be empty), and the hot-method set.
    #[must_use]
    pub fn new(
        store: Option<&'a ArtifactStore>,
        entries: Vec<Arc<CacheEntry>>,
        hot_methods: Option<&'a HashSet<u32>>,
    ) -> PassContext<'a> {
        PassContext { store, entries, prepared: Vec::new(), hot_methods, dict: None }
    }

    /// Attaches a dictionary session for the outline pass to route
    /// candidates through (requires a store for the dictionary lane).
    #[must_use]
    pub fn with_dict(mut self, session: &'a mut DictSession) -> PassContext<'a> {
        self.dict = Some(session);
        self
    }
}

/// One composable size transform between codegen and link.
pub trait SizePass {
    /// Stable pass name (used in logs and reports).
    fn name(&self) -> &'static str;

    /// Feeds the pass's full configuration into `h`. Folded into every
    /// per-method cache key via
    /// [`fingerprint_options`](crate::fingerprint_options), and into
    /// the pass's own plan-cache keys.
    fn fingerprint(&self, h: &mut StableHasher);

    /// Runs the pass, editing the artifact in place.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the pass's cache lane holds a
    /// corrupt entry or one of its workers panics.
    fn run(&self, artifact: &mut SizeArtifact, ctx: &mut PassContext<'_>)
        -> Result<(), BuildError>;
}

/// The function-merge pass (see [`crate::merge`]).
pub struct MergePass {
    /// Merge configuration.
    pub config: MergeConfig,
}

impl SizePass for MergePass {
    fn name(&self) -> &'static str {
        "merge"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        fingerprint_merge_config(&self.config, h);
    }

    fn run(
        &self,
        artifact: &mut SizeArtifact,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), BuildError> {
        let start = Instant::now();
        let base_island = u32::try_from(artifact.merged.len()).expect("island count fits u32");
        let outcome = run_merge(
            &mut artifact.methods,
            &self.config,
            ctx.hot_methods,
            ctx.store,
            base_island,
        )?;
        // Thunked methods must not reach the outliner through the warm
        // prepass either — their prepared slots still describe the
        // original bodies.
        for &idx in &outcome.thunked {
            if idx < ctx.prepared.len() {
                ctx.prepared[idx] = Some(MethodSymbols::Excluded);
            }
        }
        artifact.merged.extend(outcome.islands);
        artifact.merge = outcome.stats;
        artifact.merge_time = start.elapsed();
        Ok(())
    }
}

/// The LTBO outline pass (see [`crate::ltbo`]).
pub struct OutlinePass {
    /// Outlining configuration.
    pub config: LtboConfig,
}

impl SizePass for OutlinePass {
    fn name(&self) -> &'static str {
        "outline"
    }

    fn fingerprint(&self, h: &mut StableHasher) {
        fingerprint_ltbo_config(&self.config, h);
    }

    fn run(
        &self,
        artifact: &mut SizeArtifact,
        ctx: &mut PassContext<'_>,
    ) -> Result<(), BuildError> {
        let start = Instant::now();
        debug_assert!(artifact.outlined.is_empty(), "a second outline pass would clash ids");
        let templates: Vec<Option<&SymbolTemplate>> =
            ctx.entries.iter().map(|e| e.template.as_ref()).collect();
        let prepared = std::mem::take(&mut ctx.prepared);
        let result = run_ltbo_prepared(
            &mut artifact.methods,
            &self.config,
            &templates,
            ctx.store,
            prepared,
            ctx.dict.as_deref_mut(),
        )
        .map_err(|e| match e {
            OutlineError::Worker { group, message } => BuildError::OutlineWorker { group, message },
            OutlineError::Cache(e) => BuildError::Cache(e),
        })?;
        artifact.outlined = result.outlined;
        artifact.ltbo = result.stats;
        artifact.detect_time = result.detect_time;
        artifact.ltbo_time = start.elapsed();
        Ok(())
    }
}

/// The size-pass composition a [`BuildOptions`] asks for, in canonical
/// order: merge (when [`BuildOptions::merge`] is set), then outline
/// (when [`BuildOptions::ltbo`] is set).
#[must_use]
pub fn size_passes(options: &BuildOptions) -> Vec<Box<dyn SizePass>> {
    let mut passes: Vec<Box<dyn SizePass>> = Vec::new();
    if let Some(config) = &options.merge {
        passes.push(Box::new(MergePass { config: config.clone() }));
    }
    if let Some(mode) = options.ltbo {
        passes.push(Box::new(OutlinePass {
            config: LtboConfig {
                mode,
                min_len: options.min_seq_len,
                hot_methods: options.hot_methods.clone(),
            },
        }));
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_follows_the_options() {
        let names = |options: &BuildOptions| {
            size_passes(options).iter().map(|p| p.name()).collect::<Vec<_>>()
        };
        assert!(names(&BuildOptions::baseline()).is_empty());
        assert_eq!(names(&BuildOptions::cto_ltbo()), ["outline"]);
        assert_eq!(names(&BuildOptions::cto_merge()), ["merge"]);
        assert_eq!(names(&BuildOptions::cto_merge_ltbo()), ["merge", "outline"]);
    }

    #[test]
    fn pass_fingerprints_are_distinct() {
        let fp = |pass: &dyn SizePass| {
            let mut h = StableHasher::new();
            pass.fingerprint(&mut h);
            h.finish()
        };
        let merge = MergePass { config: MergeConfig::default() };
        let merge2 =
            MergePass { config: MergeConfig { min_body_words: 5, ..MergeConfig::default() } };
        let outline = OutlinePass { config: LtboConfig::default() };
        assert_ne!(fp(&merge), fp(&merge2));
        assert_ne!(fp(&merge), fp(&outline));
    }
}
