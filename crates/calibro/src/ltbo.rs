//! LTBO.2 — linking-time binary code outlining (§3.3 of the paper).
//!
//! Consumes the compiled methods *with* their §3.2 metadata, and:
//!
//! 1. chooses candidate methods (§3.3.1) — excluding methods with
//!    indirect jumps and Java-native stubs; under hot-function filtering
//!    (§3.4.2) hot methods contribute only their slow paths;
//! 2. maps each method's code to a symbol sequence in which terminators
//!    become unique separator numbers (§3.3.2) — plus, for binary-level
//!    soundness, unique numbers for basic-block leaders, PC-relative
//!    instructions, link-register users and SP writers;
//! 3. detects repetitive sequences with (optionally paralleled, §3.4.1)
//!    suffix trees and the Figure 2 benefit model;
//! 4. outlines each selected sequence into a function ending in
//!    `br x30`, replaces occurrences with `bl`, and
//! 5. patches every PC-relative instruction whose relative target moved
//!    (§3.3.4) while updating terminator/slow-path/stack-map records
//!    (§3.5).

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calibro_cache::{
    ArtifactStore, CacheEntry, CacheError, CacheKey, GroupPlanEntry, SymbolTemplate, TemplateSlot,
};
use calibro_codegen::{CallTarget, CompiledMethod, PcRel, Reloc};
use calibro_dict::DictSession;
use calibro_isa::Insn;
use calibro_suffix::{
    detect_group, group_text_len, partition_stable_by, replay_group_plan, GroupPlan,
    TaggedSequence, UNIQUE_SEPARATOR_BASE,
};

use crate::fingerprint::group_plan_key_from;
use crate::pipeline::{panic_message, run_indexed};

/// How the suffix-tree stage runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LtboMode {
    /// One global suffix tree over all candidate methods (§3.3).
    Global,
    /// `PlOpti` (§3.4.1): partition candidates into `groups` groups and
    /// run them on `threads` worker threads.
    Parallel {
        /// Number of per-group suffix trees.
        groups: usize,
        /// Worker threads.
        threads: usize,
    },
}

/// LTBO configuration.
#[derive(Clone, Debug)]
pub struct LtboConfig {
    /// Suffix-tree organization.
    pub mode: LtboMode,
    /// Minimum repeated-sequence length in instructions.
    pub min_len: usize,
    /// Hot methods (from `HfOpti` profiling, §3.4.2): only their slow
    /// paths are outlined. `None` disables hot filtering.
    pub hot_methods: Option<HashSet<u32>>,
}

impl Default for LtboConfig {
    fn default() -> LtboConfig {
        LtboConfig { mode: LtboMode::Global, min_len: 2, hot_methods: None }
    }
}

/// Statistics reported by [`run_ltbo`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct LtboStats {
    /// Methods eligible for outlining after §3.3.1 exclusions.
    pub candidate_methods: usize,
    /// Methods excluded for indirect jumps or nativeness.
    pub excluded_methods: usize,
    /// Hot methods restricted to slow paths.
    pub hot_restricted_methods: usize,
    /// Outlined functions created.
    pub outlined_functions: usize,
    /// Call sites rewritten.
    pub occurrences_replaced: usize,
    /// Net instruction words saved (occurrences shrunk minus outlined
    /// function bodies added).
    pub words_saved: i64,
    /// PC-relative instructions patched (§3.3.4).
    pub pc_rel_patched: usize,
    /// Stack-map entries updated (§3.5).
    pub stack_maps_updated: usize,
    /// Suffix-tree groups the detection stage was organized into
    /// (1 under [`LtboMode::Global`]). Identical warm and cold, and for
    /// any worker-thread count — only the *cache* counters say how many
    /// groups replayed instead of re-detecting.
    pub detection_groups: usize,
}

/// A typed failure from [`run_ltbo_cached`].
#[derive(Debug)]
pub enum OutlineError {
    /// Detection or materialization of one group's plan panicked; the
    /// worker's panic payload is captured instead of aborting the
    /// process.
    Worker {
        /// Index of the offending group.
        group: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The group-plan cache returned an error (corrupt or unreadable
    /// persisted plan).
    Cache(CacheError),
}

impl core::fmt::Display for OutlineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OutlineError::Worker { group, message } => {
                write!(f, "outline worker for group {group} panicked: {message}")
            }
            OutlineError::Cache(e) => write!(f, "group-plan cache error: {e}"),
        }
    }
}

impl std::error::Error for OutlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OutlineError::Worker { .. } => None,
            OutlineError::Cache(e) => Some(e),
        }
    }
}

/// Test-only fault injection for the detection pool: arming a group
/// index makes that group's detection panic, exercising the typed
/// worker-error path ([`OutlineError::Worker`] /
/// `BuildError::OutlineWorker`) from integration tests. Disarmed by
/// default; the hook costs one relaxed atomic load per group.
#[doc(hidden)]
pub mod detect_fault {
    use std::sync::atomic::{AtomicUsize, Ordering};

    const DISARMED: usize = usize::MAX;
    static TARGET: AtomicUsize = AtomicUsize::new(DISARMED);

    /// Arms the fault: detection of group `index` will panic.
    pub fn arm(index: usize) {
        TARGET.store(index, Ordering::SeqCst);
    }

    /// Disarms the fault.
    pub fn disarm() {
        TARGET.store(DISARMED, Ordering::SeqCst);
    }

    pub(crate) fn check(index: usize) {
        if TARGET.load(Ordering::Relaxed) == index {
            panic!("injected detection fault in group {index}");
        }
    }
}

/// The result of a link-time outlining run.
#[derive(Debug)]
pub struct LtboResult {
    /// The outlined functions, in `CallTarget::Outlined` index order.
    pub outlined: Vec<Vec<Insn>>,
    /// Run statistics.
    pub stats: LtboStats,
    /// Wall time of the detection phase alone (cache probe + suffix-tree
    /// detection / plan replay), excluding symbolization and patching.
    pub detect_time: Duration,
}

const UNIQUE_BASE: u64 = UNIQUE_SEPARATOR_BASE;

/// Width of each method's private separator band: method `idx` numbers
/// its separators from `UNIQUE_BASE + (idx + 1) * SEP_STRIDE`. Giving
/// every method a band derived from its own index (rather than a global
/// running counter) makes symbolization order-independent across
/// methods — a cache-hit method can be symbolized concurrently with
/// codegen of the methods before it and still get the exact symbols a
/// sequential pass would assign. Detection is invariant under any
/// injective renaming of separators (they are canonicalized in hashes
/// and never appear inside candidates), so the numbering scheme itself
/// is free to change — which is also why this differs from the global
/// counter older schemas used.
const SEP_STRIDE: u64 = 1 << 24;

/// First separator value of method `idx`'s private band.
fn sep_base(idx: usize) -> u64 {
    // Group joint separators live at 0xfffe << 48; method bands must
    // stay strictly below them.
    const GROUP_SEP_BASE: u64 = 0xfffe_0000_0000_0000;
    let base = UNIQUE_BASE + (idx as u64 + 1) * SEP_STRIDE;
    assert!(base + SEP_STRIDE < GROUP_SEP_BASE, "method index {idx} exhausts separator space");
    base
}

/// One method's symbol-offset → code-word-index map. Freshly extracted
/// methods own a materialized vector; cache-hit methods answer lookups
/// straight from their entry's template slots (one symbol per slot, so
/// offsets coincide), which spares the warm prepass from writing a
/// second O(text) vector per hit whose contents the template already
/// holds.
#[derive(Debug)]
pub(crate) enum SymbolMap {
    /// Materialized map, as [`SymbolTemplate::replay`] builds it.
    Owned(Vec<usize>),
    /// Backed by the cache entry's template; the entry is kept alive
    /// here and always carries `Some` template (enforced at
    /// construction in [`prepare_hit_symbols`]).
    Template(Arc<CacheEntry>),
}

impl SymbolMap {
    /// The code-word index behind symbol offset `sym`.
    fn word_at(&self, sym: usize) -> usize {
        match self {
            SymbolMap::Owned(map) => map[sym],
            SymbolMap::Template(entry) => {
                entry.template.as_ref().expect("constructed from a templated entry").word_at(sym)
            }
        }
    }
}

/// One method's §3.3.1/§3.3.2 outcome, computed either inline by
/// [`run_ltbo_cached`] or ahead of time — concurrently with codegen —
/// by [`prepare_hit_symbols`].
#[derive(Debug)]
pub(crate) enum MethodSymbols {
    /// Not a candidate (indirect jump, native stub, or hot with no slow
    /// paths).
    Excluded,
    /// A candidate sequence plus everything the detection stage needs
    /// from it, precomputed so the post-codegen path is O(1) per method.
    Candidate {
        /// Hot method restricted to its slow paths.
        hot: bool,
        /// The symbol sequence (separators in the method's own band).
        symbols: Vec<u64>,
        /// Symbol offset → code word index.
        map: SymbolMap,
        /// Canonical content key — the Merkle leaf of the group key.
        content_key: CacheKey,
        /// Content-stable partition hash.
        group_hash: u64,
    },
}

/// Classifies and symbolizes one method (§3.3.1 + §3.3.2), assigning
/// separators from the method's private band, and precomputes the
/// sequence's content key and partition hash.
pub(crate) fn symbolize_method(
    idx: usize,
    m: &CompiledMethod,
    template: Option<&SymbolTemplate>,
    config: &LtboConfig,
) -> MethodSymbols {
    if m.metadata.has_indirect_jump || m.metadata.is_native_stub {
        return MethodSymbols::Excluded;
    }
    let hot = config.hot_methods.as_ref().is_some_and(|set| set.contains(&m.method.0));
    if hot && m.metadata.slow_paths.is_empty() {
        return MethodSymbols::Excluded;
    }
    let mut unique = sep_base(idx);
    let fresh;
    let template = match template {
        Some(template) if !hot => template,
        _ => {
            fresh = build_template(m, hot);
            &fresh
        }
    };
    let (symbols, map) = template.replay(&mut unique);
    assert!(
        unique <= sep_base(idx) + SEP_STRIDE,
        "method {idx} used more than {SEP_STRIDE} separators"
    );
    // Both hashes canonicalize separators, so the values the template
    // cached at build time equal a direct hash of `symbols` regardless
    // of this method's band — no per-build re-hashing of the sequence.
    MethodSymbols::Candidate {
        hot,
        symbols,
        map: SymbolMap::Owned(map),
        content_key: template.content_key(),
        group_hash: template.group_hash(),
    }
}

/// [`symbolize_method`] for a cache-hit method, replaying the entry's
/// cached template without materializing the word map — the
/// [`SymbolMap::Template`] variant answers map lookups from the slots.
/// Hot-restricted and template-less entries fall back to the general
/// path (hot methods need a freshly filtered template anyway).
fn symbolize_hit(idx: usize, entry: &Arc<CacheEntry>, config: &LtboConfig) -> MethodSymbols {
    let m = &entry.compiled;
    if m.metadata.has_indirect_jump || m.metadata.is_native_stub {
        return MethodSymbols::Excluded;
    }
    let hot = config.hot_methods.as_ref().is_some_and(|set| set.contains(&m.method.0));
    let template = match &entry.template {
        Some(template) if !hot => template,
        _ => return symbolize_method(idx, m, entry.template.as_ref(), config),
    };
    let mut unique = sep_base(idx);
    let symbols = template.replay_symbols(&mut unique);
    assert!(
        unique <= sep_base(idx) + SEP_STRIDE,
        "method {idx} used more than {SEP_STRIDE} separators"
    );
    MethodSymbols::Candidate {
        hot,
        symbols,
        map: SymbolMap::Template(Arc::clone(entry)),
        content_key: template.content_key(),
        group_hash: template.group_hash(),
    }
}

/// The warm-path prepass: symbolizes every cache-*hit* method from its
/// store entry (compiled code + cached template), leaving `None` slots
/// for misses, whose code does not exist yet. [`BuildSession::build`]
/// runs this on the calling thread **concurrently with codegen** of the
/// dirty methods, so by the time the outline stage starts, the heavy
/// O(text) work for every clean method — template replay, content keys,
/// partition hashes — is already done; only the dirty methods (and the
/// O(members) group-key finalization) remain on the critical path.
///
/// Per-method separator bands make this sound: the symbols assigned
/// here are identical to what a sequential post-codegen pass would
/// assign, because no method's numbering depends on any other method.
///
/// [`BuildSession::build`]: crate::BuildSession::build
pub(crate) fn prepare_hit_symbols(
    cached: &[Option<Arc<CacheEntry>>],
    config: &LtboConfig,
) -> Vec<Option<MethodSymbols>> {
    cached
        .iter()
        .enumerate()
        .map(|(idx, slot)| slot.as_ref().map(|entry| symbolize_hit(idx, entry, config)))
        .collect()
}

/// Where an outlined call site's `bl` lands.
#[derive(Clone, Copy)]
enum EditCall {
    /// A private outlined function of this build.
    Outlined(u32),
    /// The shared dictionary island, at this word offset.
    Dict(u32),
}

/// One planned rewrite within a method.
struct Edit {
    start: usize,
    len: usize,
    call: EditCall,
}

/// Runs LTBO over the compiled methods, mutating them in place and
/// returning the outlined functions to hand to the linker.
///
/// # Panics
///
/// Panics if metadata is inconsistent with the code (these are internal
/// invariants; the compiler produces consistent metadata, and cached
/// artifacts are validated at load time).
pub fn run_ltbo(methods: &mut [CompiledMethod], config: &LtboConfig) -> LtboResult {
    run_ltbo_with_templates(methods, config, &[])
}

/// [`run_ltbo`] with precomputed symbolization templates: `templates`
/// is indexed by method position; a `Some` slot replays the cached
/// §3.3.2 symbol structure instead of re-extracting it from the code
/// and metadata (templates are built for the unfiltered case, so
/// hot-restricted methods always re-extract). An empty or short slice
/// falls back to extraction everywhere — `run_ltbo` passes `&[]`.
///
/// # Panics
///
/// As [`run_ltbo`].
pub fn run_ltbo_with_templates(
    methods: &mut [CompiledMethod],
    config: &LtboConfig,
    templates: &[Option<&SymbolTemplate>],
) -> LtboResult {
    match run_ltbo_cached(methods, config, templates, None) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_ltbo_with_templates`] with two extra capabilities the staged
/// pipeline uses:
///
/// - **Typed worker errors.** A panic inside one group's detection or
///   materialization (e.g. a [`GroupPlan::resolve`] separator-space
///   panic on an inconsistent plan) is caught and surfaced as
///   [`OutlineError::Worker`] with the group index and the panic
///   payload, instead of unwinding through — or, on a pool thread,
///   aborting — the whole build.
/// - **Incremental detection.** With `store` set, each group's selected
///   candidates are cached under a key covering the group's
///   canonicalized symbol text plus the `LtboConfig` fingerprint
///   ([`group_plan_key`]). Groups whose key hits replay the cached plan
///   ([`replay_group_plan`]) and skip suffix-tree construction
///   entirely; only dirty groups re-detect. Replay is byte-exact:
///   content-stable partitioning ([`partition_stable`]) pins each
///   sequence's group, and detection is deterministic under the
///   order-isomorphic separator renumbering that a rebuild performs, so
///   a cached plan equals the plan fresh detection would produce.
///
/// Under [`LtboMode::Global`] the single whole-program group goes
/// through the same cache (useful when *nothing* changed); under
/// [`LtboMode::Parallel`] dirty-group detection runs on the configured
/// worker threads.
///
/// # Errors
///
/// [`OutlineError::Worker`] as above; [`OutlineError::Cache`] when a
/// persisted group plan exists but is corrupt or unreadable.
pub fn run_ltbo_cached(
    methods: &mut [CompiledMethod],
    config: &LtboConfig,
    templates: &[Option<&SymbolTemplate>],
    store: Option<&ArtifactStore>,
) -> Result<LtboResult, OutlineError> {
    run_ltbo_prepared(methods, config, templates, store, Vec::new(), None)
}

/// [`run_ltbo_cached`] with an optional warm prepass: `prepared` is
/// indexed by method position, and a `Some` slot carries the result of
/// [`prepare_hit_symbols`] — symbolization already done concurrently
/// with codegen. `None` slots (and everything past the end of a short
/// vector) are symbolized here. This is the third leg of taking the
/// warm path off the detection barrier: clean groups replay their
/// cached plans using work that overlapped codegen, and only dirty
/// methods' symbolization plus the O(members) Merkle group keys run
/// after codegen completes.
///
/// With `dict` set (which requires `store` for the dictionary lane),
/// every selected candidate is arbitrated through
/// [`DictSession::route`] before materialization: a byte-identical body
/// in the session's pinned island becomes `bl`s into the island
/// (`CallTarget::Dict`, zero body cost this build); everything else is
/// outlined privately, with misses published for future epochs.
/// Arbitration runs sequentially in plan order, so the decision
/// sequence — and therefore the emitted code — is identical at any
/// detection thread count, warm or cold.
pub(crate) fn run_ltbo_prepared(
    methods: &mut [CompiledMethod],
    config: &LtboConfig,
    templates: &[Option<&SymbolTemplate>],
    store: Option<&ArtifactStore>,
    mut prepared: Vec<Option<MethodSymbols>>,
    mut dict: Option<&mut DictSession>,
) -> Result<LtboResult, OutlineError> {
    let mut stats = LtboStats::default();

    // --- §3.3.1: choose candidates; §3.3.2: map to symbols. ------------
    // Each method's separators come from its own index-derived band (see
    // SEP_STRIDE), so a slot symbolized by the concurrent prepass equals
    // what this loop would compute.
    prepared.resize_with(methods.len(), || None);
    let mut sequences = Vec::new();
    let mut sym_maps: Vec<SymbolMap> =
        (0..methods.len()).map(|_| SymbolMap::Owned(Vec::new())).collect();
    let mut content_keys: Vec<CacheKey> = vec![CacheKey { hi: 0, lo: 0 }; methods.len()];
    let mut group_hashes: Vec<u64> = vec![0; methods.len()];
    for (idx, m) in methods.iter().enumerate() {
        let symbols = match prepared[idx].take() {
            Some(s) => s,
            None => symbolize_method(idx, m, templates.get(idx).copied().flatten(), config),
        };
        match symbols {
            MethodSymbols::Excluded => stats.excluded_methods += 1,
            MethodSymbols::Candidate { hot, symbols, map, content_key, group_hash } => {
                if hot {
                    stats.hot_restricted_methods += 1;
                }
                stats.candidate_methods += 1;
                sequences.push(TaggedSequence { tag: idx, symbols });
                sym_maps[idx] = map;
                content_keys[idx] = content_key;
                group_hashes[idx] = group_hash;
            }
        }
    }

    // --- §3.3.3: detect repeats and select the outline plan. ------------
    let detect_start = Instant::now();
    let (groups, threads) = match config.mode {
        LtboMode::Global => (vec![sequences], 1),
        LtboMode::Parallel { groups, threads } => {
            (partition_stable_by(sequences, groups, |_, s| group_hashes[s.tag]), threads.max(1))
        }
    };
    stats.detection_groups = groups.len();

    // Probe the plan cache; a hit means the group's canonicalized text
    // (and the LTBO config) is unchanged since the plan was detected.
    // The key is composed Merkle-style from the members' precomputed
    // content keys — O(members) here, not O(text).
    let mut keys: Vec<CacheKey> = Vec::new();
    let mut cached: Vec<Option<Arc<GroupPlanEntry>>> = vec![None; groups.len()];
    if let Some(store) = store {
        keys = groups
            .iter()
            .map(|g| {
                let members: Vec<CacheKey> = g.iter().map(|s| content_keys[s.tag]).collect();
                group_plan_key_from(config, &members)
            })
            .collect();
        for (slot, &key) in cached.iter_mut().zip(&keys) {
            *slot = store.get_group_plan(key).map_err(OutlineError::Cache)?;
        }
    }

    let min_len = config.min_len;
    let groups_ref = &groups;
    let cached_ref = &cached;
    let (tagged_plans, _loads) = run_indexed(groups.len(), threads, |i| {
        if let Some(entry) = &cached_ref[i] {
            return (replay_group_plan(&groups_ref[i], entry.candidates.clone()), true, 0);
        }
        detect_fault::check(i);
        let group_start = Instant::now();
        let plan = detect_group(&groups_ref[i], min_len);
        let cost_us = u64::try_from(group_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        (plan, false, cost_us)
    })
    .map_err(|p| OutlineError::Worker { group: p.index, message: p.message })?;
    let detect_time = detect_start.elapsed();

    if let Some(store) = store {
        for (i, (plan, reused, cost_us)) in tagged_plans.iter().enumerate() {
            if !reused {
                // Detection CPU rides into the plan lane as recompute
                // cost, so eviction pressure drops cheap plans first.
                store.insert_group_plan_with_cost(
                    keys[i],
                    GroupPlanEntry {
                        text_len: group_text_len(&groups[i]),
                        candidates: plan.candidates.clone(),
                    },
                    *cost_us,
                );
            }
        }
    }
    let plans: Vec<GroupPlan> = tagged_plans.into_iter().map(|(plan, _, _)| plan).collect();

    // --- Materialize outlined functions and per-method edits. -----------
    let mut outlined: Vec<Vec<Insn>> = Vec::new();
    let mut edits: Vec<Vec<Edit>> = (0..methods.len()).map(|_| Vec::new()).collect();
    for (group, plan) in plans.iter().enumerate() {
        let dict = &mut dict;
        let materialized = catch_unwind(AssertUnwindSafe(|| {
            for cand in &plan.candidates {
                let body: Vec<Insn> = cand
                    .symbols
                    .iter()
                    .map(|&s| {
                        calibro_isa::decode(u32::try_from(s).expect("candidate symbol is a word"))
                            .expect("candidate symbols decode")
                    })
                    .collect();
                // Dictionary arbitration: a byte-identical island body
                // serves every occurrence at call overhead only.
                let call = match (dict.as_deref_mut(), store) {
                    (Some(session), Some(store)) => session.route(&body, store).map(EditCall::Dict),
                    _ => None,
                };
                let call = match call {
                    Some(call) => call,
                    None => {
                        let id = outlined.len() as u32;
                        let mut body = body;
                        body.push(Insn::Br { rn: calibro_isa::Reg::LR });
                        stats.words_saved -= body.len() as i64;
                        outlined.push(body);
                        stats.outlined_functions += 1;
                        EditCall::Outlined(id)
                    }
                };
                for &pos in &cand.positions {
                    let (tag, sym_off) = plan.resolve(pos);
                    let word = sym_maps[tag].word_at(sym_off);
                    edits[tag].push(Edit { start: word, len: cand.len, call });
                    stats.occurrences_replaced += 1;
                    stats.words_saved += cand.len as i64 - 1;
                }
            }
        }));
        if let Err(payload) = materialized {
            return Err(OutlineError::Worker { group, message: panic_message(payload) });
        }
    }

    // --- §3.3.4 + §3.5: apply edits, patch PC-relative, fix records. ----
    for (idx, mut method_edits) in edits.into_iter().enumerate() {
        if method_edits.is_empty() {
            continue;
        }
        method_edits.sort_by_key(|e| e.start);
        let (patched, maps_updated) = apply_edits(&mut methods[idx], &method_edits);
        stats.pc_rel_patched += patched;
        stats.stack_maps_updated += maps_updated;
    }

    Ok(LtboResult { outlined, stats, detect_time })
}

/// Builds the §3.3.2 symbolization structure for one method: which
/// words are separator-forced (terminators, PC-relative sites, LR
/// users, SP writers, block leaders) and the encoded words of the rest.
/// Replaying the result through [`SymbolTemplate::replay`] yields
/// exactly the symbol sequence the original extraction produced — the
/// cache stores the `hot_slow_paths_only = false` template so warm
/// builds skip this scan and the per-instruction encoding entirely.
///
/// # Panics
///
/// Panics if an instruction fails to encode (codegen only emits
/// encodable instructions, and cached entries re-validated this).
pub(crate) fn build_template(m: &CompiledMethod, hot_slow_paths_only: bool) -> SymbolTemplate {
    let code_len = m.insns.len();
    let mut is_pc_rel_site = vec![false; code_len];
    let mut is_leader = vec![false; code_len];
    for rec in &m.metadata.pc_rel {
        is_pc_rel_site[rec.at] = true;
        if rec.target < code_len {
            is_leader[rec.target] = true;
        }
    }
    // Call relocations are also position-bound (the linker rewrites their
    // offsets per site); LR rules would exclude them anyway.
    for r in &m.relocs {
        is_pc_rel_site[r.at] = true;
    }
    let mut is_terminator = vec![false; code_len];
    for &t in &m.metadata.terminators {
        if t < code_len {
            is_terminator[t] = true;
        }
    }

    let mut slots = Vec::with_capacity(code_len + 8);
    for (word, insn) in m.insns.iter().enumerate() {
        // A basic-block leader must start a fresh sequence: branches land
        // here, so no repeat may span this boundary.
        if is_leader[word] {
            slots.push(TemplateSlot::Leader);
        }
        let excluded = is_terminator[word]
            || is_pc_rel_site[word]
            || insn.reads_lr()
            || insn.writes_lr()
            || writes_sp(insn)
            || (hot_slow_paths_only && !m.metadata.in_slow_path(word));
        let word = u32::try_from(word).expect("method shorter than 2^32 words");
        if excluded {
            slots.push(TemplateSlot::Fresh { word });
        } else {
            let encoded = insn.encode().expect("compiled instruction encodes");
            slots.push(TemplateSlot::Lit { encoded, word });
        }
    }
    SymbolTemplate::new(slots)
}

/// Returns `true` if executing the instruction changes `sp` — such
/// instructions cannot move into an outlined function (which must be
/// frame-transparent).
fn writes_sp(insn: &Insn) -> bool {
    match insn {
        Insn::AddImm { set_flags: false, rd, .. } | Insn::SubImm { set_flags: false, rd, .. } => {
            rd.is_reg31()
        }
        Insn::Stp { rn, mode, .. } | Insn::Ldp { rn, mode, .. } => {
            rn.is_reg31() && !matches!(mode, calibro_isa::PairMode::SignedOffset)
        }
        _ => false,
    }
}

/// Applies sorted, non-overlapping edits to one method: replaces each
/// outlined range with a `bl`, rebuilds the position map, patches
/// PC-relative instructions, and updates every §3.2/§3.5 record.
/// Returns `(pc_rel_patched, stack_maps_updated)`.
fn apply_edits(m: &mut CompiledMethod, edits: &[Edit]) -> (usize, usize) {
    let old_len = m.insns.len();
    // old word index -> new word index (usize::MAX = removed).
    let mut map = vec![usize::MAX; old_len + m.pool.len() + 1];
    let mut new_insns = Vec::with_capacity(old_len);
    let mut new_relocs: Vec<Reloc> = Vec::new();
    let mut next_edit = 0;
    let mut word = 0;
    while word < old_len {
        if next_edit < edits.len() && edits[next_edit].start == word {
            let edit = &edits[next_edit];
            map[word] = new_insns.len();
            let target = match edit.call {
                EditCall::Outlined(id) => CallTarget::Outlined(id),
                EditCall::Dict(at) => CallTarget::Dict(at),
            };
            new_relocs.push(Reloc { at: new_insns.len(), target });
            new_insns.push(Insn::Bl { offset: 0 });
            // Interior words vanish.
            word += edit.len;
            next_edit += 1;
        } else {
            map[word] = new_insns.len();
            new_insns.push(m.insns[word]);
            word += 1;
        }
    }
    debug_assert_eq!(next_edit, edits.len(), "edit start did not align to a word");
    // Pool words shift as a block; map old pool indices too.
    let new_code_len = new_insns.len();
    for (i, slot) in map.iter_mut().enumerate().skip(old_len) {
        *slot = new_code_len + (i - old_len);
    }

    // Carry over original call relocations.
    for r in &m.relocs {
        let at = map[r.at];
        assert_ne!(at, usize::MAX, "call site removed by outlining");
        new_relocs.push(Reloc { at, target: r.target });
    }
    new_relocs.sort_by_key(|r| r.at);

    // §3.3.4: patch PC-relative instructions with their updated offsets.
    let mut patched = 0;
    let mut new_pc_rel = Vec::with_capacity(m.metadata.pc_rel.len());
    for rec in &m.metadata.pc_rel {
        let at = map[rec.at];
        let target = map[rec.target];
        assert_ne!(at, usize::MAX, "PC-relative instruction removed by outlining");
        assert_ne!(target, usize::MAX, "branch target removed by outlining");
        let new_offset = (target as i64 - at as i64) * 4;
        if new_insns[at].pc_rel_offset() != Some(new_offset) {
            new_insns[at] = new_insns[at].with_pc_rel_offset(new_offset);
            patched += 1;
        }
        new_pc_rel.push(PcRel { at, target });
    }

    // Terminators: removed ones (inside outlined ranges) cannot exist —
    // terminators are separators — so every record survives remapping.
    let mut new_terminators = Vec::with_capacity(m.metadata.terminators.len());
    for &t in &m.metadata.terminators {
        let nt = map[t];
        assert_ne!(nt, usize::MAX, "terminator removed by outlining");
        new_terminators.push(nt);
    }

    // Slow paths: remap range endpoints. Starts are leaders (branch
    // targets) and ends follow terminators, so both survive; interior
    // shrinkage is fine.
    let mut new_slow = Vec::with_capacity(m.metadata.slow_paths.len());
    for &(s, e) in &m.metadata.slow_paths {
        let ns = map[s];
        let ne = if e == old_len { new_code_len } else { map[e] };
        assert_ne!(ns, usize::MAX);
        assert_ne!(ne, usize::MAX);
        new_slow.push((ns, ne));
    }

    // Embedded data: the pool block moved as a whole.
    let mut new_embedded = Vec::with_capacity(m.metadata.embedded_data.len());
    for &(s, l) in &m.metadata.embedded_data {
        new_embedded.push((map[s], l));
    }

    // §3.5: stack maps — return offsets move with their call sites.
    let mut maps_updated = 0;
    for sm in &mut m.stack_maps {
        let old_word = (sm.native_offset / 4) as usize;
        // The entry names the word *after* the call; remap via the call.
        // An offset of 0 would name the word before the method, i.e. the
        // metadata is corrupt — panic with context instead of letting the
        // subtraction wrap around to index `map[usize::MAX]`.
        let call_word = old_word.checked_sub(1).unwrap_or_else(|| {
            panic!(
                "stack map at native offset 0 in method {:?}: \
                 entries name the word after a call, so offset 0 cannot \
                 follow any instruction",
                m.method
            )
        });
        let new_call = map[call_word];
        assert_ne!(new_call, usize::MAX, "call under a stack map removed");
        let new_offset = (new_call as u32 + 1) * 4;
        if new_offset != sm.native_offset {
            sm.native_offset = new_offset;
            maps_updated += 1;
        }
    }

    m.insns = new_insns;
    m.relocs = new_relocs;
    m.metadata.pc_rel = new_pc_rel;
    m.metadata.terminators = new_terminators;
    m.metadata.slow_paths = new_slow;
    m.metadata.embedded_data = new_embedded;
    (patched, maps_updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibro_codegen::{MethodMetadata, StackMapEntry};
    use calibro_dex::MethodId;
    use calibro_isa::Reg;

    fn method_with_stack_map(native_offset: u32) -> CompiledMethod {
        let mov = |rd: Reg, rm: Reg| Insn::OrrReg { wide: true, rd, rn: Reg::ZR, rm, shift: 0 };
        CompiledMethod {
            method: MethodId(7),
            insns: vec![
                mov(Reg::X1, Reg::X2),
                mov(Reg::X3, Reg::X4),
                mov(Reg::X5, Reg::X6),
                Insn::Ret { rn: Reg::LR },
            ],
            pool: vec![],
            relocs: vec![],
            metadata: MethodMetadata::default(),
            stack_maps: vec![StackMapEntry { native_offset, dex_pc: 0 }],
        }
    }

    #[test]
    #[should_panic(expected = "stack map at native offset 0")]
    fn apply_edits_rejects_stack_map_at_offset_zero() {
        // A stack map names the word after its call, so native offset 0 is
        // unconstructible from valid codegen. Before the guard this
        // underflowed `old_word - 1` and indexed `map[usize::MAX]`.
        let mut m = method_with_stack_map(0);
        apply_edits(&mut m, &[Edit { start: 0, len: 2, call: EditCall::Outlined(0) }]);
    }

    #[test]
    fn apply_edits_remaps_valid_stack_maps() {
        // The stack map names word 3 (offset 12); outlining words 0-1 into
        // a single `bl` shifts it back by one word, to offset 8.
        let mut m = method_with_stack_map(12);
        let (_patched, maps_updated) =
            apply_edits(&mut m, &[Edit { start: 0, len: 2, call: EditCall::Outlined(0) }]);
        assert_eq!(maps_updated, 1);
        assert_eq!(m.stack_maps[0].native_offset, 8);
        assert_eq!(m.insns.len(), 3);
        assert!(matches!(m.insns[0], Insn::Bl { .. }));
    }
}
