//! Size-reduction reporting in the paper's Table 4 format.

use calibro_oat::OatFile;

/// A size comparison between a baseline build and an optimized build.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeReport {
    /// Baseline `.text` bytes.
    pub baseline_bytes: u64,
    /// Optimized `.text` bytes.
    pub optimized_bytes: u64,
}

impl SizeReport {
    /// Reduction ratio relative to the baseline (Table 4's bottom rows).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        if self.baseline_bytes == 0 {
            return 0.0;
        }
        (self.baseline_bytes as f64 - self.optimized_bytes as f64) / self.baseline_bytes as f64
    }

    /// Bytes saved (negative when the optimized build is larger).
    #[must_use]
    pub fn saved_bytes(&self) -> i64 {
        self.baseline_bytes as i64 - self.optimized_bytes as i64
    }
}

impl core::fmt::Display for SizeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} -> {} bytes ({:.2}% reduction)",
            self.baseline_bytes,
            self.optimized_bytes,
            self.reduction_ratio() * 100.0
        )
    }
}

/// Builds a [`SizeReport`] from two linked OAT files.
#[must_use]
pub fn size_report(baseline: &OatFile, optimized: &OatFile) -> SizeReport {
    SizeReport {
        baseline_bytes: baseline.text_size_bytes(),
        optimized_bytes: optimized.text_size_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_math() {
        let r = SizeReport { baseline_bytes: 1000, optimized_bytes: 850 };
        assert!((r.reduction_ratio() - 0.15).abs() < 1e-9);
        assert_eq!(r.saved_bytes(), 150);
        let r = SizeReport { baseline_bytes: 0, optimized_bytes: 0 };
        assert_eq!(r.reduction_ratio(), 0.0);
    }
}
