//! The function-merge size pass — the second size backend next to LTBO.
//!
//! Android apps carry families of near-identical compiled methods
//! (generated accessors, clone-and-tweak handlers) whose bodies differ
//! only in a couple of immediate constants. Outlining cannot collapse
//! them completely: the differing constants break every repeat at the
//! `mov`-immediate sites. Function merging can: the pass
//!
//! 1. buckets candidate bodies by a *structural hash* that ignores
//!    `movz`/`movn` immediates (§ the shape of the code, not its
//!    constants);
//! 2. forms groups of bodies that are word-identical except at up to
//!    [`MergeConfig::max_params`] mov-immediate positions;
//! 3. lets the paper's Figure 2 benefit model arbitrate merge-vs-outline
//!    per group (a group whose repeats outlining would compress better
//!    is left for LTBO); and
//! 4. folds each surviving group into one shared *island* — the
//!    representative body with each differing position rewritten to read
//!    a parameter register — and replaces every member with a *thunk*
//!    that materializes its distinguishing constants into `x16`/`x17`
//!    (the AArch64 intra-procedure-call scratch registers) and
//!    tail-branches to the island with a plain `b`.
//!
//! Correctness is inherited: an island is the representative body
//! executed with the same machine state the original member entry had —
//! the thunk only writes `x16`/`x17`, which no candidate body touches —
//! so whatever made the member correct makes the island correct,
//! including its `ret`, which consumes the caller's untouched return
//! address.
//!
//! Like LTBO's group plans, merge decisions are cached: one
//! [`MergePlanEntry`] per shape bucket, keyed by the full
//! [`MergeConfig`] fingerprint plus every member body's content hash
//! ([`merge_plan_key_from`]), so a warm build replays the same merges
//! without re-running the pairwise grouping scan.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use calibro_cache::{ArtifactStore, CacheKey, MergePlanEntry, MergePlanGroup, StableHasher};
use calibro_codegen::{CallTarget, CompiledMethod, MethodMetadata, Reloc, ThunkKind};
use calibro_isa::{Insn, Reg};
use calibro_oat::MergedBody;
use calibro_suffix::benefit;

use crate::driver::BuildError;
use crate::fingerprint::merge_plan_key_from;

/// Parameter registers a thunk may materialize constants into, in
/// parameter order. `x16`/`x17` are the AArch64 intra-procedure-call
/// scratch registers — a branch sequence (which a thunk is) may clobber
/// them, and candidate bodies that touch them are excluded.
pub(crate) const PARAM_REGS: [Reg; 2] = [Reg::X16, Reg::X17];

/// Function-merge configuration — the knobs of the second size backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeConfig {
    /// Minimum body length (instruction words) for a method to be a
    /// merge candidate. Tiny bodies cannot amortize a thunk.
    pub min_body_words: usize,
    /// Maximum differing mov-immediate positions per group. Each costs
    /// one parameter register; at most [`PARAM_REGS`] (two) are
    /// available, and larger values are clamped.
    pub max_params: usize,
    /// Let the Figure 2 benefit model arbitrate merge-vs-outline per
    /// group: merge only when the merge saving beats the estimated
    /// outlining saving over the same bodies. Merge-only builds (no
    /// LTBO pass downstream to pick up dropped groups) should disable
    /// this — [`BuildOptions::cto_merge`](crate::BuildOptions::cto_merge)
    /// does.
    pub arbitrate: bool,
}

impl Default for MergeConfig {
    fn default() -> MergeConfig {
        MergeConfig { min_body_words: 4, max_params: 2, arbitrate: true }
    }
}

/// Statistics reported by the merge pass.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MergeStats {
    /// Methods eligible for merging.
    pub candidate_methods: usize,
    /// Methods excluded (indirect jumps, literal pools, short bodies,
    /// PC-dependent addressing, parameter-register use, hot filtering).
    pub excluded_methods: usize,
    /// Merge groups applied (one island each).
    pub merge_groups: usize,
    /// Methods replaced by thunks (members of applied groups).
    pub merged_methods: usize,
    /// Net instruction words saved: original member bodies minus
    /// (thunks + islands).
    pub words_saved: i64,
    /// Groups dropped because the benefit model preferred outlining.
    /// Counted only when a bucket's plan is freshly arbitrated — a
    /// replayed plan stores surviving groups alone, so warm builds
    /// report zero here (the cache counters say a replay happened).
    pub outline_preferred: usize,
}

/// The merge pass's output: islands for the linker plus statistics and
/// the indices of every method that became a thunk.
pub(crate) struct MergeOutcome {
    /// Island bodies, in `CallTarget::Merged` index order (offset by the
    /// `base_island` the pass ran with).
    pub islands: Vec<MergedBody>,
    /// Run statistics.
    pub stats: MergeStats,
    /// Method indices replaced by thunks — the caller must mark these
    /// excluded from any downstream outlining prepass.
    pub thunked: Vec<usize>,
}

/// The content hash of one merge candidate's body: encoded instruction
/// words plus call relocations — exactly the inputs group formation
/// compares. The Merkle leaf of [`merge_plan_key_from`]: any change to
/// any member's body or call structure moves its bucket's plan key.
#[must_use]
pub fn merge_content_key(m: &CompiledMethod) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_tag(0x6D); // 'm'
    h.write_usize(m.insns.len());
    for insn in &m.insns {
        h.write_u32(insn.encode().unwrap_or(u32::MAX));
    }
    h.write_usize(m.pool.len());
    for &w in &m.pool {
        h.write_u32(w);
    }
    hash_relocs(&m.relocs, &mut h);
    h.finish()
}

pub(crate) fn hash_relocs(relocs: &[Reloc], h: &mut StableHasher) {
    h.write_usize(relocs.len());
    for r in relocs {
        h.write_usize(r.at);
        match r.target {
            CallTarget::Method(id) => {
                h.write_tag(0);
                h.write_u32(id.0);
            }
            CallTarget::Thunk(kind) => {
                h.write_tag(1);
                match kind {
                    ThunkKind::JavaEntry => h.write_tag(0),
                    ThunkKind::RuntimeEntry(off) => {
                        h.write_tag(1);
                        h.write_u32(off.into());
                    }
                    ThunkKind::StackCheck => h.write_tag(2),
                }
            }
            CallTarget::Outlined(i) => {
                h.write_tag(2);
                h.write_u32(i);
            }
            CallTarget::Merged(i) => {
                h.write_tag(3);
                h.write_u32(i);
            }
            CallTarget::Dict(i) => {
                h.write_tag(4);
                h.write_u32(i);
            }
        }
    }
}

/// The structural hash bodies are bucketed by: every instruction's
/// encoded word except `movz`/`movn`, which contribute only their
/// variant, width and destination — the immediate (the merge's
/// parameter) is dropped, so clones differing in constants collide.
fn shape_hash(m: &CompiledMethod) -> u64 {
    let mut h = StableHasher::new();
    h.write_tag(0x53); // 'S'
    h.write_usize(m.insns.len());
    for insn in &m.insns {
        match *insn {
            Insn::Movz { wide, rd, .. } => {
                h.write_tag(1);
                h.write_bool(wide);
                h.write_u32(u32::from(rd.index()));
            }
            Insn::Movn { wide, rd, .. } => {
                h.write_tag(2);
                h.write_bool(wide);
                h.write_u32(u32::from(rd.index()));
            }
            _ => {
                h.write_tag(0);
                h.write_u32(insn.encode().unwrap_or(u32::MAX));
            }
        }
    }
    hash_relocs(&m.relocs, &mut h);
    let k = h.finish();
    k.hi ^ k.lo
}

/// Returns `true` if the instruction reads or writes a parameter
/// register. `dest_reg`/`source_regs` cover most variants; pair
/// loads/stores enumerate their fields explicitly because `dest_reg`
/// reports a single destination.
fn touches_param_reg(insn: &Insn) -> bool {
    let p = |r: Reg| PARAM_REGS.contains(&r);
    if insn.dest_reg().is_some_and(p) {
        return true;
    }
    if insn.source_regs().into_iter().any(p) {
        return true;
    }
    match *insn {
        Insn::Ldp { rt, rt2, rn, .. } | Insn::Stp { rt, rt2, rn, .. } => p(rt) || p(rt2) || p(rn),
        _ => false,
    }
}

/// §3.3.1-style candidate choice for merging. A body qualifies only
/// when relocating it wholesale into an island cannot change its
/// behavior: no indirect jumps or native stubs, no literal pool or
/// embedded data, no PC-dependent address computation (`adr`/`adrp`/
/// `ldr` literal), no parameter-register use, and a trailing `ret` so
/// the island returns where the original method returned. Hot methods
/// are excluded — a thunk indirection on a hot entry is the exact cost
/// HfOpti exists to avoid.
fn eligible(m: &CompiledMethod, config: &MergeConfig, hot: Option<&HashSet<u32>>) -> bool {
    if m.metadata.has_indirect_jump || m.metadata.is_native_stub {
        return false;
    }
    if !m.pool.is_empty() || !m.metadata.embedded_data.is_empty() {
        return false;
    }
    if m.insns.len() < config.min_body_words.max(1) {
        return false;
    }
    if hot.is_some_and(|set| set.contains(&m.method.0)) {
        return false;
    }
    if !matches!(m.insns.last(), Some(Insn::Ret { .. })) {
        return false;
    }
    m.insns.iter().all(|insn| {
        !matches!(insn, Insn::Adr { .. } | Insn::Adrp { .. } | Insn::LdrLit { .. })
            && !touches_param_reg(insn)
    })
}

/// Returns `true` when two differing instructions at one position may
/// become a merge parameter: both fully-defining mov-immediates of the
/// same variant, width and destination (only the constant differs).
/// `movk` is never a parameter — it read-modify-writes its destination.
fn diff_compatible(a: &Insn, b: &Insn) -> bool {
    match (*a, *b) {
        (Insn::Movz { wide: wa, rd: ra, .. }, Insn::Movz { wide: wb, rd: rb, .. })
        | (Insn::Movn { wide: wa, rd: ra, .. }, Insn::Movn { wide: wb, rd: rb, .. }) => {
            wa == wb && ra == rb
        }
        _ => false,
    }
}

/// The merge saving of a group: `k` bodies of `w` words collapse to one
/// `w`-word island plus `k` thunks of `p + 1` words (`p` parameter movs
/// and the tail branch).
fn merge_saving(w: usize, k: usize, p: usize) -> i64 {
    (k as i64 - 1) * w as i64 - k as i64 * (p as i64 + 1)
}

/// Estimates what LTBO could save on the same `count` bodies instead:
/// the body splits into maximal runs at every merge parameter, call
/// site, terminator and the trailing `ret` (all separator-forced in
/// §3.3.2), and each profitable run contributes the Figure 2 saving.
fn outline_estimate(body: &CompiledMethod, diffs: &[u32], count: usize) -> i64 {
    let w = body.insns.len();
    let mut cut = vec![false; w];
    if w > 0 {
        cut[w - 1] = true;
    }
    for &d in diffs {
        cut[d as usize] = true;
    }
    for r in &body.relocs {
        if r.at < w {
            cut[r.at] = true;
        }
    }
    for &t in &body.metadata.terminators {
        if t < w {
            cut[t] = true;
        }
    }
    let mut total = 0i64;
    let mut run = 0usize;
    for &is_cut in &cut {
        if is_cut {
            if benefit::is_profitable(run, count) {
                total += benefit::saving(run, count);
            }
            run = 0;
        } else {
            run += 1;
        }
    }
    if benefit::is_profitable(run, count) {
        total += benefit::saving(run, count);
    }
    total
}

/// Computes one shape bucket's merge plan from scratch: greedy group
/// formation in member order, then benefit arbitration. Returns the
/// surviving groups (bucket-local indices) plus the count of groups the
/// benefit model handed to outlining instead.
fn plan_bucket(bodies: &[&CompiledMethod], config: &MergeConfig) -> (Vec<MergePlanGroup>, usize) {
    let max_params = config.max_params.min(PARAM_REGS.len());
    let mut assigned = vec![false; bodies.len()];
    let mut groups = Vec::new();
    let mut outline_preferred = 0;
    for rep in 0..bodies.len() {
        if assigned[rep] {
            continue;
        }
        let rep_body = bodies[rep];
        let mut members = vec![rep as u32];
        let mut diffs: Vec<u32> = Vec::new();
        for cand in rep + 1..bodies.len() {
            if assigned[cand] {
                continue;
            }
            let cand_body = bodies[cand];
            if cand_body.insns.len() != rep_body.insns.len() || cand_body.relocs != rep_body.relocs
            {
                continue;
            }
            let mut cand_diffs: Vec<u32> = Vec::new();
            let mut compatible = true;
            for (i, (a, b)) in rep_body.insns.iter().zip(&cand_body.insns).enumerate() {
                if a == b {
                    continue;
                }
                if diff_compatible(a, b) {
                    cand_diffs.push(i as u32);
                } else {
                    compatible = false;
                    break;
                }
            }
            if !compatible {
                continue;
            }
            let union = merge_sorted(&diffs, &cand_diffs);
            if union.len() > max_params {
                continue;
            }
            diffs = union;
            members.push(cand as u32);
        }
        if members.len() < 2 {
            continue;
        }
        let saving = merge_saving(rep_body.insns.len(), members.len(), diffs.len());
        if saving <= 0 {
            continue;
        }
        if config.arbitrate && outline_estimate(rep_body, &diffs, members.len()) >= saving {
            outline_preferred += 1;
            continue;
        }
        for &m in &members {
            assigned[m as usize] = true;
        }
        groups.push(MergePlanGroup { rep: rep as u32, members, diff_positions: diffs });
    }
    (groups, outline_preferred)
}

/// Union of two sorted, duplicate-free position lists.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Verifies a cached plan against the bucket's *current* bodies before
/// replaying it: every structural fact group formation would have
/// established is re-checked in O(members × words), so a replayed merge
/// is provably identical to a freshly computed one even under a content
/// hash collision. A `false` falls back to recomputation.
fn plan_is_applicable(bodies: &[&CompiledMethod], entry: &MergePlanEntry) -> bool {
    if entry.member_count as usize != bodies.len() {
        return false;
    }
    let mut seen = vec![false; bodies.len()];
    for group in &entry.groups {
        if group.members.len() < 2 || !group.members.contains(&group.rep) {
            return false;
        }
        let Some(&rep_body) = bodies.get(group.rep as usize) else { return false };
        if group.diff_positions.iter().any(|&d| d as usize >= rep_body.insns.len()) {
            return false;
        }
        for &m in &group.members {
            let Some(&body) = bodies.get(m as usize) else { return false };
            if seen[m as usize] {
                return false;
            }
            seen[m as usize] = true;
            if body.insns.len() != rep_body.insns.len() || body.relocs != rep_body.relocs {
                return false;
            }
            for (i, (a, b)) in rep_body.insns.iter().zip(&body.insns).enumerate() {
                let is_diff = group.diff_positions.contains(&(i as u32));
                if is_diff {
                    // Parameter positions must be mov-immediates even
                    // when this member happens to equal the rep there
                    // (`diff_compatible(a, a)` covers the equal case).
                    if !diff_compatible(a, b) {
                        return false;
                    }
                } else if a != b {
                    return false;
                }
            }
        }
    }
    true
}

/// Builds one group's island: the representative body with each
/// parameter position rewritten to copy its value from the parameter
/// register (`orr rd, zr, xN` — a register `mov` of the original width).
fn make_island(rep: &CompiledMethod, diffs: &[u32]) -> MergedBody {
    let mut insns = rep.insns.clone();
    for (j, &d) in diffs.iter().enumerate() {
        let (wide, rd) = match insns[d as usize] {
            Insn::Movz { wide, rd, .. } | Insn::Movn { wide, rd, .. } => (wide, rd),
            ref other => unreachable!("merge parameter at non-mov instruction {other:?}"),
        };
        insns[d as usize] = Insn::OrrReg { wide, rd, rn: Reg::ZR, rm: PARAM_REGS[j], shift: 0 };
    }
    MergedBody { insns, relocs: rep.relocs.clone() }
}

/// Builds one member's thunk: its distinguishing mov-immediates
/// retargeted to the parameter registers, then a plain `b` to the
/// island (patched by the linker through the `Merged` relocation).
fn make_thunk(member: &CompiledMethod, diffs: &[u32], island: u32) -> (Vec<Insn>, Vec<Reloc>) {
    let mut insns = Vec::with_capacity(diffs.len() + 1);
    for (j, &d) in diffs.iter().enumerate() {
        let insn = match member.insns[d as usize] {
            Insn::Movz { wide, imm16, hw, .. } => Insn::Movz { wide, rd: PARAM_REGS[j], imm16, hw },
            Insn::Movn { wide, imm16, hw, .. } => Insn::Movn { wide, rd: PARAM_REGS[j], imm16, hw },
            ref other => unreachable!("merge parameter at non-mov instruction {other:?}"),
        };
        insns.push(insn);
    }
    let at = insns.len();
    insns.push(Insn::B { offset: 0 });
    (insns, vec![Reloc { at, target: CallTarget::Merged(island) }])
}

/// Runs the function-merge pass over the compiled methods, mutating
/// merged members into thunks in place and returning the islands for
/// the linker. Island ids start at `base_island` (the number of islands
/// an earlier pass already emitted).
///
/// Deterministic by construction: candidates are scanned in method
/// order, buckets form in first-seen order, group formation is greedy
/// in member order, and the whole pass runs on the calling thread — its
/// cost is a single linear scan plus pairwise comparison inside (rare)
/// same-shape buckets, far below a compile fan-out's.
///
/// # Errors
///
/// [`BuildError::Cache`] when a persisted merge plan exists but is
/// corrupt or unreadable.
pub(crate) fn run_merge(
    methods: &mut [CompiledMethod],
    config: &MergeConfig,
    hot: Option<&HashSet<u32>>,
    store: Option<&ArtifactStore>,
    base_island: u32,
) -> Result<MergeOutcome, BuildError> {
    let mut stats = MergeStats::default();

    // --- Choose candidates and bucket by shape, in method order. --------
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    let mut by_shape: HashMap<u64, usize> = HashMap::new();
    for (idx, m) in methods.iter().enumerate() {
        if !eligible(m, config, hot) {
            stats.excluded_methods += 1;
            continue;
        }
        stats.candidate_methods += 1;
        let slot = *by_shape.entry(shape_hash(m)).or_insert_with(|| {
            buckets.push(Vec::new());
            buckets.len() - 1
        });
        buckets[slot].push(idx);
    }

    // --- Plan each bucket: replay a cached plan or compute afresh. ------
    let mut planned: Vec<(Vec<usize>, Vec<MergePlanGroup>)> = Vec::new();
    for bucket in buckets {
        if bucket.len() < 2 {
            continue;
        }
        let bodies: Vec<&CompiledMethod> = bucket.iter().map(|&i| &methods[i]).collect();
        let groups = match store {
            Some(store) => {
                let members: Vec<CacheKey> = bodies.iter().map(|m| merge_content_key(m)).collect();
                let key = merge_plan_key_from(config, &members);
                match store.get_merge_plan(key).map_err(BuildError::Cache)? {
                    Some(entry) if plan_is_applicable(&bodies, &entry) => entry.groups.clone(),
                    hit => {
                        let plan_start = Instant::now();
                        let (groups, preferred) = plan_bucket(&bodies, config);
                        stats.outline_preferred += preferred;
                        // An inapplicable hit means the key is already
                        // taken (keep-first store) — don't re-insert.
                        if hit.is_none() {
                            let cost_us =
                                u64::try_from(plan_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                            store.insert_merge_plan_with_cost(
                                key,
                                MergePlanEntry {
                                    member_count: bucket.len() as u32,
                                    groups: groups.clone(),
                                },
                                cost_us,
                            );
                        }
                        groups
                    }
                }
            }
            None => {
                let (groups, preferred) = plan_bucket(&bodies, config);
                stats.outline_preferred += preferred;
                groups
            }
        };
        if !groups.is_empty() {
            planned.push((bucket, groups));
        }
    }

    // --- Materialize islands and thunks. --------------------------------
    let mut islands = Vec::new();
    let mut thunked = Vec::new();
    for (bucket, groups) in planned {
        for group in groups {
            let island_id = base_island + islands.len() as u32;
            let diffs = &group.diff_positions;
            let rep_global = bucket[group.rep as usize];
            let body_words = methods[rep_global].insns.len();
            islands.push(make_island(&methods[rep_global], diffs));
            for &m in &group.members {
                let global = bucket[m as usize];
                let (insns, relocs) = make_thunk(&methods[global], diffs, island_id);
                let method = &mut methods[global];
                method.insns = insns;
                method.relocs = relocs;
                // Conservatively mark the thunk unoutlinable: outlining
                // its movs behind a `bl` would clobber the return
                // address the island's `ret` consumes.
                method.metadata =
                    MethodMetadata { has_indirect_jump: true, ..MethodMetadata::default() };
                method.stack_maps = Vec::new();
                thunked.push(global);
                stats.merged_methods += 1;
            }
            stats.merge_groups += 1;
            stats.words_saved += merge_saving(body_words, group.members.len(), diffs.len());
        }
    }
    thunked.sort_unstable();
    Ok(MergeOutcome { islands, stats, thunked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibro_dex::MethodId;

    fn mov_z(rd: Reg, imm16: u16) -> Insn {
        Insn::Movz { wide: true, rd, imm16, hw: 0 }
    }

    fn add(rd: Reg, rn: Reg, rm: Reg) -> Insn {
        Insn::AddReg { wide: true, set_flags: false, rd, rn, rm, shift: 0 }
    }

    /// A straight-line candidate body: load a constant, combine, return.
    fn clone_body(id: u32, imm: u16) -> CompiledMethod {
        CompiledMethod {
            method: MethodId(id),
            insns: vec![
                mov_z(Reg::X1, imm),
                add(Reg::X0, Reg::X0, Reg::X1),
                add(Reg::X0, Reg::X0, Reg::X0),
                add(Reg::X2, Reg::X0, Reg::X1),
                add(Reg::X0, Reg::X2, Reg::X0),
                Insn::Ret { rn: Reg::LR },
            ],
            pool: vec![],
            relocs: vec![],
            metadata: MethodMetadata::default(),
            stack_maps: vec![],
        }
    }

    #[test]
    fn clones_differing_in_one_constant_merge() {
        let mut methods = vec![clone_body(0, 10), clone_body(1, 11), clone_body(2, 12)];
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let outcome = run_merge(&mut methods, &config, None, None, 0).unwrap();
        assert_eq!(outcome.islands.len(), 1);
        assert_eq!(outcome.stats.merge_groups, 1);
        assert_eq!(outcome.stats.merged_methods, 3);
        assert_eq!(outcome.thunked, vec![0, 1, 2]);
        // k=3 bodies of w=6 words, p=1 parameter: 2*6 - 3*2 = 6 saved.
        assert_eq!(outcome.stats.words_saved, 6);
        // Every member became a two-word thunk: mov x16, #imm; b island.
        for (i, m) in methods.iter().enumerate() {
            assert_eq!(m.insns.len(), 2, "member {i}");
            assert!(matches!(m.insns[0], Insn::Movz { rd: Reg::X16, .. }));
            assert!(matches!(m.insns[1], Insn::B { .. }));
            assert_eq!(m.relocs, vec![Reloc { at: 1, target: CallTarget::Merged(0) }]);
            assert!(m.metadata.has_indirect_jump);
        }
        // The island reads the parameter register where the constant was.
        assert!(matches!(
            outcome.islands[0].insns[0],
            Insn::OrrReg { rd: Reg::X1, rm: Reg::X16, .. }
        ));
    }

    #[test]
    fn structurally_different_bodies_do_not_merge() {
        let mut other = clone_body(1, 10);
        other.insns[3] = add(Reg::X3, Reg::X0, Reg::X1); // different dest
        let mut methods = vec![clone_body(0, 10), other];
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let outcome = run_merge(&mut methods, &config, None, None, 0).unwrap();
        assert!(outcome.islands.is_empty());
        assert_eq!(outcome.stats.merged_methods, 0);
    }

    #[test]
    fn param_register_use_excludes_a_body() {
        let mut tainted = clone_body(0, 10);
        tainted.insns[1] = add(Reg::X0, Reg::X0, Reg::X16);
        let mut methods = vec![tainted, clone_body(1, 11), clone_body(2, 12)];
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let outcome = run_merge(&mut methods, &config, None, None, 0).unwrap();
        assert_eq!(outcome.stats.excluded_methods, 1);
        // The two clean clones still merge.
        assert_eq!(outcome.stats.merged_methods, 2);
        assert!(matches!(methods[0].insns[1], Insn::AddReg { .. }), "tainted body untouched");
    }

    #[test]
    fn hot_methods_are_excluded() {
        let mut methods = vec![clone_body(0, 10), clone_body(1, 11)];
        let hot: HashSet<u32> = [0].into_iter().collect();
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let outcome = run_merge(&mut methods, &config, Some(&hot), None, 0).unwrap();
        assert_eq!(outcome.stats.excluded_methods, 1);
        assert_eq!(outcome.stats.merged_methods, 0, "one survivor cannot form a group");
    }

    #[test]
    fn plans_replay_from_the_store_identically() {
        let store = ArtifactStore::new(calibro_cache::CacheConfig::default());
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let mut cold = vec![clone_body(0, 10), clone_body(1, 11), clone_body(2, 12)];
        let cold_out = run_merge(&mut cold, &config, None, Some(&store), 0).unwrap();
        assert_eq!(store.stats().merge_misses, 1);
        assert_eq!(store.stats().merge_stores, 1);
        let mut warm = vec![clone_body(0, 10), clone_body(1, 11), clone_body(2, 12)];
        let warm_out = run_merge(&mut warm, &config, None, Some(&store), 0).unwrap();
        assert_eq!(store.stats().merge_hits, 1);
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.insns, w.insns);
            assert_eq!(c.relocs, w.relocs);
        }
        for (c, w) in cold_out.islands.iter().zip(&warm_out.islands) {
            assert_eq!(c.insns, w.insns);
            assert_eq!(c.relocs, w.relocs);
        }
        assert_eq!(cold_out.stats.merge_groups, warm_out.stats.merge_groups);
        assert_eq!(cold_out.stats.words_saved, warm_out.stats.words_saved);
    }

    #[test]
    fn max_params_bounds_group_formation() {
        // Three constants differ — more than the two parameter registers.
        let triple = |id: u32, a: u16, b: u16, c: u16| CompiledMethod {
            method: MethodId(id),
            insns: vec![
                mov_z(Reg::X1, a),
                mov_z(Reg::X2, b),
                mov_z(Reg::X3, c),
                add(Reg::X0, Reg::X1, Reg::X2),
                add(Reg::X0, Reg::X0, Reg::X3),
                Insn::Ret { rn: Reg::LR },
            ],
            pool: vec![],
            relocs: vec![],
            metadata: MethodMetadata::default(),
            stack_maps: vec![],
        };
        let mut methods = vec![triple(0, 1, 2, 3), triple(1, 4, 5, 6)];
        let config = MergeConfig { arbitrate: false, ..MergeConfig::default() };
        let outcome = run_merge(&mut methods, &config, None, None, 0).unwrap();
        assert_eq!(outcome.stats.merged_methods, 0);
        // With only one constant differing, the same shape merges.
        let mut methods = vec![triple(0, 1, 2, 3), triple(1, 1, 2, 6)];
        let outcome = run_merge(&mut methods, &config, None, None, 0).unwrap();
        assert_eq!(outcome.stats.merged_methods, 2);
        assert_eq!(outcome.islands[0].insns.len(), 6);
    }
}
