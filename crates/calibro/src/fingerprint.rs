//! Canonical fingerprints of build configuration — the "BuildOptions
//! fingerprint" component of every per-method cache key.
//!
//! Every function destructures its input exhaustively (no `..`): adding
//! a field to [`BuildOptions`], [`PipelineConfig`], [`LtboConfig`] or a
//! variant to [`LtboMode`] fails compilation here, so a new knob can
//! never silently be left out of the cache key (which would let two
//! different configurations collide on one cached artifact — a stale-hit
//! miscompile).
//!
//! The fingerprint covers *every* field, including fields such as
//! `compile_threads` and `base_address` that provably do not change
//! per-method code bytes. That costs a few avoidable cache misses and
//! buys an unconditional safety argument: equal keys ⇒ equal full
//! configuration ⇒ equal compile inputs.

use calibro_cache::{hash_method, hash_program, CacheKey, StableHasher, SCHEMA_VERSION};
use calibro_dex::{DexFile, Method};
use calibro_hgraph::PipelineConfig;
use calibro_suffix::{TaggedSequence, UNIQUE_SEPARATOR_BASE};

use crate::driver::BuildOptions;
use crate::ltbo::{LtboConfig, LtboMode};

/// Feeds the full [`BuildOptions`] into `h`.
pub fn fingerprint_options(options: &BuildOptions, h: &mut StableHasher) {
    let BuildOptions {
        cto,
        ltbo,
        min_seq_len,
        hot_methods,
        base_address,
        force_metadata,
        inlining,
        compile_threads,
        passes,
    } = options;
    h.write_tag(0x42); // 'B'
    h.write_bool(*cto);
    match ltbo {
        None => h.write_tag(0),
        Some(mode) => {
            h.write_tag(1);
            fingerprint_ltbo_mode(mode, h);
        }
    }
    h.write_usize(*min_seq_len);
    match hot_methods {
        None => h.write_tag(0),
        Some(set) => {
            h.write_tag(1);
            let mut sorted: Vec<u32> = set.iter().copied().collect();
            sorted.sort_unstable();
            h.write_usize(sorted.len());
            for id in sorted {
                h.write_u32(id);
            }
        }
    }
    h.write_u64(*base_address);
    h.write_bool(*force_metadata);
    h.write_bool(*inlining);
    h.write_usize(*compile_threads);
    fingerprint_pipeline(passes, h);
}

/// Feeds a [`PipelineConfig`] into `h`.
pub fn fingerprint_pipeline(config: &PipelineConfig, h: &mut StableHasher) {
    let PipelineConfig {
        copy_prop,
        constant_folding,
        simplify,
        cse,
        dce,
        return_merge,
        remove_unreachable,
    } = config;
    h.write_tag(0x51); // 'Q'
    h.write_bool(*copy_prop);
    h.write_bool(*constant_folding);
    h.write_bool(*simplify);
    h.write_bool(*cse);
    h.write_bool(*dce);
    h.write_bool(*return_merge);
    h.write_bool(*remove_unreachable);
}

/// Feeds an [`LtboMode`] into `h`.
pub fn fingerprint_ltbo_mode(mode: &LtboMode, h: &mut StableHasher) {
    match mode {
        LtboMode::Global => h.write_tag(0x10),
        LtboMode::Parallel { groups, threads } => {
            h.write_tag(0x11);
            h.write_usize(*groups);
            h.write_usize(*threads);
        }
    }
}

/// Feeds an [`LtboConfig`] into `h` — used by harnesses that drive
/// [`run_ltbo`](crate::run_ltbo) directly rather than through
/// [`BuildOptions`].
pub fn fingerprint_ltbo_config(config: &LtboConfig, h: &mut StableHasher) {
    let LtboConfig { mode, min_len, hot_methods } = config;
    h.write_tag(0x4C); // 'L'
    fingerprint_ltbo_mode(mode, h);
    h.write_usize(*min_len);
    match hot_methods {
        None => h.write_tag(0),
        Some(set) => {
            h.write_tag(1);
            let mut sorted: Vec<u32> = set.iter().copied().collect();
            sorted.sort_unstable();
            h.write_usize(sorted.len());
            for id in sorted {
                h.write_u32(id);
            }
        }
    }
}

/// The configuration fingerprint shared by every method key of a build:
/// schema salt plus the full [`BuildOptions`].
#[must_use]
pub fn options_fingerprint(options: &BuildOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str(SCHEMA_VERSION);
    fingerprint_options(options, &mut h);
    h.finish()
}

/// The content address of one detection group's cached
/// [`GroupPlanEntry`](calibro_cache::GroupPlanEntry): schema salt, the
/// full [`LtboConfig`], and the group's concatenated symbol text.
///
/// Separator symbols (any symbol `>= UNIQUE_SEPARATOR_BASE`) are
/// canonicalized to a fixed tag rather than hashed by value: their
/// numbering depends on a global counter that drifts across builds as
/// unrelated methods change, while detection results depend only on the
/// fact that each separator is unique within its group. Literal symbols
/// (always `< 2^32`) are hashed exactly. Sequence boundaries are framed
/// by length so distinct splits of the same flattened text get distinct
/// keys.
#[must_use]
pub fn group_plan_key(config: &LtboConfig, group: &[TaggedSequence]) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str(SCHEMA_VERSION);
    h.write_tag(0x47); // 'G'
    fingerprint_ltbo_config(config, &mut h);
    h.write_usize(group.len());
    for seq in group {
        h.write_usize(seq.symbols.len());
        for &sym in &seq.symbols {
            if sym >= UNIQUE_SEPARATOR_BASE {
                h.write_tag(1);
            } else {
                h.write_u64(sym);
            }
        }
    }
    h.finish()
}

/// The whole-program salt, folded into every key when whole-program
/// inlining is enabled (a method's code can then depend on any callee's
/// body, so per-method hashing alone would under-invalidate).
#[must_use]
pub fn program_salt(dex: &DexFile) -> CacheKey {
    let mut h = StableHasher::new();
    hash_program(dex, &mut h);
    h.finish()
}

/// The content address of one method's compilation artifact.
#[must_use]
pub fn method_cache_key(
    method: &Method,
    options_fp: CacheKey,
    program_salt: Option<CacheKey>,
) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_u64(options_fp.hi);
    h.write_u64(options_fp.lo);
    match program_salt {
        None => h.write_tag(0),
        Some(salt) => {
            h.write_tag(1);
            h.write_u64(salt.hi);
            h.write_u64(salt.lo);
        }
    }
    hash_method(method, &mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_fingerprint_is_stable_within_a_process() {
        assert_eq!(
            options_fingerprint(&BuildOptions::default()),
            options_fingerprint(&BuildOptions::default())
        );
    }

    #[test]
    fn hot_set_order_does_not_matter() {
        let a = BuildOptions::default().with_hot_filter([3, 1, 2].into_iter().collect());
        let b = BuildOptions::default().with_hot_filter([2, 3, 1].into_iter().collect());
        assert_eq!(options_fingerprint(&a), options_fingerprint(&b));
        let c = BuildOptions::default().with_hot_filter([2, 3].into_iter().collect());
        assert_ne!(options_fingerprint(&a), options_fingerprint(&c));
    }

    #[test]
    fn ltbo_modes_are_distinguished() {
        let mut keys = Vec::new();
        for mode in [
            None,
            Some(LtboMode::Global),
            Some(LtboMode::Parallel { groups: 4, threads: 2 }),
            Some(LtboMode::Parallel { groups: 2, threads: 4 }),
        ] {
            let options = BuildOptions { ltbo: mode, ..BuildOptions::default() };
            keys.push(options_fingerprint(&options));
        }
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
