//! Canonical fingerprints of build configuration — the "BuildOptions
//! fingerprint" component of every per-method cache key.
//!
//! Every function destructures its input exhaustively (no `..`): adding
//! a field to [`BuildOptions`], [`PipelineConfig`], [`LtboConfig`] or a
//! variant to [`LtboMode`] fails compilation here, so a new knob can
//! never silently be left out of the cache key (which would let two
//! different configurations collide on one cached artifact — a stale-hit
//! miscompile).
//!
//! The fingerprint covers *every* field, including fields such as
//! `compile_threads` and `base_address` that provably do not change
//! per-method code bytes. That costs a few avoidable cache misses and
//! buys an unconditional safety argument: equal keys ⇒ equal full
//! configuration ⇒ equal compile inputs.

use std::cell::RefCell;

use calibro_cache::{hash_method, hash_program, CacheKey, StableHasher, SCHEMA_VERSION};
use calibro_dex::{DexFile, Method};
use calibro_hgraph::PipelineConfig;
use calibro_suffix::TaggedSequence;

use crate::driver::BuildOptions;
use crate::ltbo::{LtboConfig, LtboMode};
use crate::merge::MergeConfig;

thread_local! {
    /// The reusable per-worker serialization buffer: every method (and
    /// symbol-sequence) key on one worker thread reuses one allocation
    /// via [`StableHasher::finish_reset`]. Only bounded-size inputs go
    /// through it — whole-program hashing allocates its own buffer so a
    /// one-off multi-megabyte program hash does not pin that capacity
    /// in the thread-local for the rest of the process.
    static SCRATCH: RefCell<StableHasher> = RefCell::new(StableHasher::with_capacity(4096));
}

/// Feeds the full [`BuildOptions`] into `h`.
pub fn fingerprint_options(options: &BuildOptions, h: &mut StableHasher) {
    let BuildOptions {
        cto,
        ltbo,
        merge,
        dict,
        min_seq_len,
        hot_methods,
        base_address,
        force_metadata,
        inlining,
        compile_threads,
        passes,
    } = options;
    h.write_tag(0x42); // 'B'
    h.write_bool(*cto);
    match ltbo {
        None => h.write_tag(0),
        Some(mode) => {
            h.write_tag(1);
            fingerprint_ltbo_mode(mode, h);
        }
    }
    match merge {
        None => h.write_tag(0),
        Some(config) => {
            h.write_tag(1);
            fingerprint_merge_config(config, h);
        }
    }
    h.write_tag(0x44); // 'D'
    h.write_bool(*dict);
    h.write_usize(*min_seq_len);
    match hot_methods {
        None => h.write_tag(0),
        Some(set) => {
            h.write_tag(1);
            let mut sorted: Vec<u32> = set.iter().copied().collect();
            sorted.sort_unstable();
            h.write_usize(sorted.len());
            for id in sorted {
                h.write_u32(id);
            }
        }
    }
    h.write_u64(*base_address);
    h.write_bool(*force_metadata);
    h.write_bool(*inlining);
    h.write_usize(*compile_threads);
    fingerprint_pipeline(passes, h);
}

/// Feeds a [`PipelineConfig`] into `h`.
pub fn fingerprint_pipeline(config: &PipelineConfig, h: &mut StableHasher) {
    let PipelineConfig {
        copy_prop,
        constant_folding,
        simplify,
        cse,
        dce,
        return_merge,
        remove_unreachable,
    } = config;
    h.write_tag(0x51); // 'Q'
    h.write_bool(*copy_prop);
    h.write_bool(*constant_folding);
    h.write_bool(*simplify);
    h.write_bool(*cse);
    h.write_bool(*dce);
    h.write_bool(*return_merge);
    h.write_bool(*remove_unreachable);
}

/// Feeds an [`LtboMode`] into `h`.
pub fn fingerprint_ltbo_mode(mode: &LtboMode, h: &mut StableHasher) {
    match mode {
        LtboMode::Global => h.write_tag(0x10),
        LtboMode::Parallel { groups, threads } => {
            h.write_tag(0x11);
            h.write_usize(*groups);
            h.write_usize(*threads);
        }
    }
}

/// Feeds an [`LtboConfig`] into `h` — used by harnesses that drive
/// [`run_ltbo`](crate::run_ltbo) directly rather than through
/// [`BuildOptions`].
pub fn fingerprint_ltbo_config(config: &LtboConfig, h: &mut StableHasher) {
    let LtboConfig { mode, min_len, hot_methods } = config;
    h.write_tag(0x4C); // 'L'
    fingerprint_ltbo_mode(mode, h);
    h.write_usize(*min_len);
    match hot_methods {
        None => h.write_tag(0),
        Some(set) => {
            h.write_tag(1);
            let mut sorted: Vec<u32> = set.iter().copied().collect();
            sorted.sort_unstable();
            h.write_usize(sorted.len());
            for id in sorted {
                h.write_u32(id);
            }
        }
    }
}

/// Feeds a [`MergeConfig`] into `h` — the merge pass's contribution to
/// [`fingerprint_options`] and the prefix of every merge-plan key.
pub fn fingerprint_merge_config(config: &MergeConfig, h: &mut StableHasher) {
    let MergeConfig { min_body_words, max_params, arbitrate } = config;
    h.write_tag(0x4D); // 'M'
    h.write_usize(*min_body_words);
    h.write_usize(*max_params);
    h.write_bool(*arbitrate);
}

/// The configuration fingerprint shared by every method key of a build:
/// schema salt plus the full [`BuildOptions`].
#[must_use]
pub fn options_fingerprint(options: &BuildOptions) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str(SCHEMA_VERSION);
    fingerprint_options(options, &mut h);
    h.finish()
}

/// The canonical content key of one method's symbolized sequence — the
/// per-member leaf of a [`group_plan_key_from`] composition.
///
/// Re-exported from [`calibro_cache::sequence_content_key`], the single
/// authoritative implementation: the same function computes the hashes
/// a [`SymbolTemplate`](calibro_cache::SymbolTemplate) caches at build
/// time, so a template's cached leaf can never diverge from a key
/// computed here over its replay output.
pub use calibro_cache::sequence_content_key;

/// The content address of one detection group's cached
/// [`GroupPlanEntry`](calibro_cache::GroupPlanEntry), composed
/// Merkle-style from its members' [`sequence_content_key`]s: schema
/// salt, the full [`LtboConfig`], the member count, then each member
/// key in group order.
///
/// The composition makes the warm probe O(members) instead of
/// O(total symbol text): per-sequence keys are computed once per method
/// — concurrently with codegen for cache hits — and a group's key is
/// then a handful of mixes. Distinct splits of the same flattened text
/// get distinct keys because every member key frames its own length.
#[must_use]
pub fn group_plan_key_from(config: &LtboConfig, members: &[CacheKey]) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str(SCHEMA_VERSION);
    h.write_tag(0x47); // 'G'
    fingerprint_ltbo_config(config, &mut h);
    h.write_usize(members.len());
    for k in members {
        h.write_u64(k.hi);
        h.write_u64(k.lo);
    }
    h.finish()
}

/// The content address of one shape bucket's cached
/// [`MergePlanEntry`](calibro_cache::MergePlanEntry), composed exactly
/// like [`group_plan_key_from`]: schema salt, the full [`MergeConfig`],
/// the member count, then each member's
/// [`merge_content_key`](crate::merge_content_key) in bucket order.
///
/// Any change to a member body, the bucket's membership or order, or a
/// merge knob moves the key — so a replayed plan can only ever be
/// probed against the bucket it was computed from.
#[must_use]
pub fn merge_plan_key_from(config: &MergeConfig, members: &[CacheKey]) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_str(SCHEMA_VERSION);
    h.write_tag(0x58); // 'X'
    fingerprint_merge_config(config, &mut h);
    h.write_usize(members.len());
    for k in members {
        h.write_u64(k.hi);
        h.write_u64(k.lo);
    }
    h.finish()
}

/// [`group_plan_key_from`] over freshly computed member keys — for
/// callers holding raw sequences rather than precomputed leaf keys.
#[must_use]
pub fn group_plan_key(config: &LtboConfig, group: &[TaggedSequence]) -> CacheKey {
    let members: Vec<CacheKey> =
        group.iter().map(|seq| sequence_content_key(&seq.symbols)).collect();
    group_plan_key_from(config, &members)
}

/// Fingerprint of the *reference environment*: exactly the
/// program-level facts [`calibro_dex::verify_references`] reads —
/// method count, per-callee nativeness, class count, the field bound,
/// and the static-slot bound. Everything else that check consumes is
/// the method body itself, which the per-method cache key already
/// covers, so `hit && entry.ref_env == reference_env(dex)` proves both
/// inputs of that deterministic check are unchanged and the warm path
/// may skip re-running it.
///
/// One pass over per-method flags and class headers — never over
/// bytecode — so it costs microseconds where the skipped re-verify
/// walks every instruction of every method.
#[must_use]
pub fn reference_env(dex: &DexFile) -> u64 {
    let mut h = StableHasher::new();
    h.write_tag(0x52); // 'R'
    let methods = dex.methods();
    h.write_usize(methods.len());
    // Per-callee nativeness, packed 64 methods to a word (the length
    // above makes the packing self-describing).
    let mut word = 0u64;
    for (i, m) in methods.iter().enumerate() {
        if m.is_native {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            h.write_word(word);
            word = 0;
        }
    }
    if !methods.len().is_multiple_of(64) {
        h.write_word(word);
    }
    h.write_usize(dex.classes().len());
    h.write_u32(dex.classes().iter().map(|c| c.num_fields).max().unwrap_or(0));
    h.write_u32(dex.num_statics());
    let k = h.finish();
    k.hi ^ k.lo
}

/// The whole-program salt, folded into every key when whole-program
/// inlining is enabled (a method's code can then depend on any callee's
/// body, so per-method hashing alone would under-invalidate).
#[must_use]
pub fn program_salt(dex: &DexFile) -> CacheKey {
    let mut h = StableHasher::new();
    hash_program(dex, &mut h);
    h.finish()
}

/// The content address of one method's compilation artifact.
///
/// Serializes the method into the calling worker's thread-local scratch
/// buffer and mixes it in one word-at-a-time pass — the per-method hot
/// path of every warm rebuild, so it never allocates after a worker's
/// first method.
#[must_use]
pub fn method_cache_key(
    method: &Method,
    options_fp: CacheKey,
    program_salt: Option<CacheKey>,
) -> CacheKey {
    SCRATCH.with(|cell| {
        let mut h = cell.borrow_mut();
        h.write_u64(options_fp.hi);
        h.write_u64(options_fp.lo);
        match program_salt {
            None => h.write_tag(0),
            Some(salt) => {
                h.write_tag(1);
                h.write_u64(salt.hi);
                h.write_u64(salt.lo);
            }
        }
        hash_method(method, &mut h);
        h.finish_reset()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_fingerprint_is_stable_within_a_process() {
        assert_eq!(
            options_fingerprint(&BuildOptions::default()),
            options_fingerprint(&BuildOptions::default())
        );
    }

    #[test]
    fn hot_set_order_does_not_matter() {
        let a = BuildOptions::default().with_hot_filter([3, 1, 2].into_iter().collect());
        let b = BuildOptions::default().with_hot_filter([2, 3, 1].into_iter().collect());
        assert_eq!(options_fingerprint(&a), options_fingerprint(&b));
        let c = BuildOptions::default().with_hot_filter([2, 3].into_iter().collect());
        assert_ne!(options_fingerprint(&a), options_fingerprint(&c));
    }

    #[test]
    fn ltbo_modes_are_distinguished() {
        let mut keys = Vec::new();
        for mode in [
            None,
            Some(LtboMode::Global),
            Some(LtboMode::Parallel { groups: 4, threads: 2 }),
            Some(LtboMode::Parallel { groups: 2, threads: 4 }),
        ] {
            let options = BuildOptions { ltbo: mode, ..BuildOptions::default() };
            keys.push(options_fingerprint(&options));
        }
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
