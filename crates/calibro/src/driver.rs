//! The `dex2oat`-style build driver: Figure 5 of the paper end to end —
//! per-method HGraph construction, optimization passes, code generation
//! (with optional CTO and metadata collection), optional link-time
//! outlining (LTBO, with PlOpti / HfOpti), and final linking.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use calibro_codegen::{compile_method, compile_native_stub, CodegenOptions, CompiledMethod};
use calibro_dex::DexFile;
use calibro_hgraph::{build_hgraph, run_inlining, run_pipeline, InlineConfig};
use calibro_oat::{link, LinkError, LinkInput, OatFile, DEFAULT_BASE_ADDRESS};

use crate::ltbo::{run_ltbo, LtboConfig, LtboMode, LtboStats};

/// Full build configuration — one row of the paper's Table 4 matrix.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Compilation-time outlining of the three ART patterns (§3.1).
    pub cto: bool,
    /// Link-time binary outlining (§3.2-§3.3); `None` disables LTBO.
    pub ltbo: Option<LtboMode>,
    /// Minimum outlined sequence length (instructions).
    pub min_seq_len: usize,
    /// Hot methods to filter (§3.4.2), usually from
    /// [`calibro_profile`](https://docs.rs) profiling.
    pub hot_methods: Option<HashSet<u32>>,
    /// Load address for the text segment.
    pub base_address: u64,
    /// Collect LTBO metadata even when LTBO is off (used by the
    /// redundancy-analysis tooling behind the paper's Table 1).
    pub force_metadata: bool,
    /// Run whole-program inlining of small leaf methods before the
    /// per-method passes (dex2oat inlines; off by default here so the
    /// headline numbers isolate the outlining contribution).
    pub inlining: bool,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            cto: false,
            ltbo: None,
            min_seq_len: 2,
            hot_methods: None,
            base_address: DEFAULT_BASE_ADDRESS,
            force_metadata: false,
            inlining: false,
        }
    }
}

impl BuildOptions {
    /// The paper's Baseline: all dex2oat optimizations, no outlining.
    #[must_use]
    pub fn baseline() -> BuildOptions {
        BuildOptions::default()
    }

    /// The paper's `CTO` configuration.
    #[must_use]
    pub fn cto() -> BuildOptions {
        BuildOptions { cto: true, ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO` configuration (single global suffix tree).
    #[must_use]
    pub fn cto_ltbo() -> BuildOptions {
        BuildOptions { cto: true, ltbo: Some(LtboMode::Global), ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO+PlOpti` configuration.
    #[must_use]
    pub fn cto_ltbo_parallel(groups: usize, threads: usize) -> BuildOptions {
        BuildOptions {
            cto: true,
            ltbo: Some(LtboMode::Parallel { groups, threads }),
            ..BuildOptions::default()
        }
    }

    /// Adds hot-function filtering (`HfOpti`, §3.4.2).
    #[must_use]
    pub fn with_hot_filter(mut self, hot: HashSet<u32>) -> BuildOptions {
        self.hot_methods = Some(hot);
        self
    }
}

/// Phase timings and statistics for one build (Table 6's raw data).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Time compiling methods (HGraph + passes + codegen).
    pub compile_time: Duration,
    /// Time in LTBO (suffix trees + outlining + patching).
    pub ltbo_time: Duration,
    /// Time linking and encoding.
    pub link_time: Duration,
    /// LTBO statistics (zeroed when LTBO is off).
    pub ltbo: LtboStats,
    /// Methods compiled.
    pub methods: usize,
    /// Total instruction words before LTBO.
    pub words_before_ltbo: usize,
}

impl BuildStats {
    /// Total wall-clock build time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.ltbo_time + self.link_time
    }
}

/// The output of a build.
#[derive(Debug)]
pub struct BuildOutput {
    /// The linked OAT file.
    pub oat: OatFile,
    /// Build statistics.
    pub stats: BuildStats,
}

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// The input dex file failed verification.
    Verify(calibro_dex::VerifyError),
    /// Linking failed.
    Link(LinkError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Verify(e) => write!(f, "dex verification failed: {e}"),
            BuildError::Link(e) => write!(f, "linking failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Compiles a dex file into an OAT file under the given options — the
/// reproduction's `dex2oat` entry point.
///
/// # Errors
///
/// Returns [`BuildError`] if the input fails bytecode verification or
/// the final link fails.
pub fn build(dex: &DexFile, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
    calibro_dex::verify(dex).map_err(BuildError::Verify)?;
    let mut stats = BuildStats::default();

    // --- Compile every method (Figure 5 left half). ---------------------
    let collect_metadata = options.ltbo.is_some() || options.force_metadata;
    let codegen_opts = CodegenOptions { cto: options.cto, collect_metadata };
    let start = Instant::now();
    // Build all graphs first so whole-program inlining can see callees.
    let mut graphs: Vec<Option<calibro_hgraph::HGraph>> = dex
        .methods()
        .iter()
        .map(|m| if m.is_native { None } else { Some(build_hgraph(m)) })
        .collect();
    if options.inlining {
        run_inlining(&mut graphs, &InlineConfig::default());
    }
    let mut methods: Vec<CompiledMethod> = Vec::with_capacity(dex.methods().len());
    for (method, graph) in dex.methods().iter().zip(&mut graphs) {
        match graph {
            None => methods.push(compile_native_stub(method.id, &codegen_opts)),
            Some(graph) => {
                run_pipeline(graph);
                methods.push(compile_method(graph, &codegen_opts));
            }
        }
    }
    stats.methods = methods.len();
    stats.words_before_ltbo = methods.iter().map(CompiledMethod::size_words).sum();
    stats.compile_time = start.elapsed();

    // --- LTBO (Figure 5: "LTBO.2" before final linking). -----------------
    let mut outlined = Vec::new();
    if let Some(mode) = options.ltbo {
        let start = Instant::now();
        let config = LtboConfig {
            mode,
            min_len: options.min_seq_len,
            hot_methods: options.hot_methods.clone(),
        };
        let result = run_ltbo(&mut methods, &config);
        outlined = result.outlined;
        stats.ltbo = result.stats;
        stats.ltbo_time = start.elapsed();
    }

    // --- Link. -----------------------------------------------------------
    let start = Instant::now();
    let oat = link(&LinkInput { methods, outlined }, options.base_address)
        .map_err(BuildError::Link)?;
    stats.link_time = start.elapsed();

    Ok(BuildOutput { oat, stats })
}
