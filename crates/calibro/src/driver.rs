//! Build configuration, statistics and errors for the `dex2oat`-style
//! driver, plus the one-shot [`build`] entry point. The staged pipeline
//! itself — frontend, codegen, outline, link, with the content-addressed
//! artifact cache between builds — lives in
//! [`pipeline`](crate::pipeline).

use std::collections::HashSet;
use std::time::Duration;

use calibro_cache::{CacheError, CacheStats};
use calibro_dex::DexFile;
use calibro_dict::DictStats;
use calibro_hgraph::{PassStats, PipelineConfig};
use calibro_oat::{LinkError, OatFile, DEFAULT_BASE_ADDRESS};

use crate::ltbo::{LtboMode, LtboStats};
use crate::merge::{MergeConfig, MergeStats};
use crate::pipeline::BuildSession;

/// Full build configuration — one row of the paper's Table 4 matrix.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Compilation-time outlining of the three ART patterns (§3.1).
    pub cto: bool,
    /// Link-time binary outlining (§3.2-§3.3); `None` disables LTBO.
    pub ltbo: Option<LtboMode>,
    /// Function merging between codegen and LTBO; `None` disables the
    /// merge pass. Together with [`ltbo`](Self::ltbo) this field
    /// composes the size-pass pipeline
    /// ([`size_passes`](crate::size_passes)): `none` / `merge` /
    /// `outline` / `both`.
    pub merge: Option<MergeConfig>,
    /// Route LTBO candidates through the session's shared outline
    /// dictionary (the cross-tenant `.text` island). Only effective when
    /// [`ltbo`](Self::ltbo) is on and the session carries a
    /// [`DictRegistry`](calibro_dict::DictRegistry); a one-shot
    /// [`build`] has no registry, so the flag is inert there.
    pub dict: bool,
    /// Minimum outlined sequence length (instructions).
    pub min_seq_len: usize,
    /// Hot methods to filter (§3.4.2), usually from
    /// [`calibro_profile`](https://docs.rs) profiling.
    pub hot_methods: Option<HashSet<u32>>,
    /// Load address for the text segment.
    pub base_address: u64,
    /// Collect LTBO metadata even when LTBO is off (used by the
    /// redundancy-analysis tooling behind the paper's Table 1).
    pub force_metadata: bool,
    /// Run whole-program inlining of small leaf methods before the
    /// per-method passes (dex2oat inlines; off by default here so the
    /// headline numbers isolate the outlining contribution).
    pub inlining: bool,
    /// Worker threads for the per-method compile phase (HGraph build,
    /// pass pipeline, codegen). `1` (the default) compiles sequentially
    /// on the calling thread. Per-method compilation is independent, so
    /// the linked output is bit-identical for every thread count:
    /// results land in index-order slots regardless of completion order
    /// (whole-program inlining stays a sequential pre-phase).
    pub compile_threads: usize,
    /// Per-pass switches for the optimization pipeline. Defaults to every
    /// pass enabled; the conformance harness compiles under pass subsets
    /// to prove outlining is sound on unoptimized and partially optimized
    /// code alike.
    pub passes: PipelineConfig,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            cto: false,
            ltbo: None,
            merge: None,
            dict: false,
            min_seq_len: 2,
            hot_methods: None,
            base_address: DEFAULT_BASE_ADDRESS,
            force_metadata: false,
            inlining: false,
            compile_threads: 1,
            passes: PipelineConfig::all(),
        }
    }
}

impl BuildOptions {
    /// The paper's Baseline: all dex2oat optimizations, no outlining.
    #[must_use]
    pub fn baseline() -> BuildOptions {
        BuildOptions::default()
    }

    /// The paper's `CTO` configuration.
    #[must_use]
    pub fn cto() -> BuildOptions {
        BuildOptions { cto: true, ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO` configuration (single global suffix tree).
    #[must_use]
    pub fn cto_ltbo() -> BuildOptions {
        BuildOptions { cto: true, ltbo: Some(LtboMode::Global), ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO+PlOpti` configuration.
    #[must_use]
    pub fn cto_ltbo_parallel(groups: usize, threads: usize) -> BuildOptions {
        BuildOptions {
            cto: true,
            ltbo: Some(LtboMode::Parallel { groups, threads }),
            ..BuildOptions::default()
        }
    }

    /// The `CTO+Merge` configuration: function merging as the only size
    /// backend. Arbitration is off — with no LTBO pass downstream,
    /// a group the benefit model handed to outlining would simply be
    /// dropped.
    #[must_use]
    pub fn cto_merge() -> BuildOptions {
        BuildOptions {
            cto: true,
            merge: Some(MergeConfig { arbitrate: false, ..MergeConfig::default() }),
            ..BuildOptions::default()
        }
    }

    /// The `CTO+Merge+LTBO` configuration: both size backends, with the
    /// benefit model arbitrating merge-vs-outline per group.
    #[must_use]
    pub fn cto_merge_ltbo() -> BuildOptions {
        BuildOptions {
            cto: true,
            merge: Some(MergeConfig::default()),
            ltbo: Some(LtboMode::Global),
            ..BuildOptions::default()
        }
    }

    /// Adds hot-function filtering (`HfOpti`, §3.4.2).
    #[must_use]
    pub fn with_hot_filter(mut self, hot: HashSet<u32>) -> BuildOptions {
        self.hot_methods = Some(hot);
        self
    }

    /// Sets the worker-thread count for the per-method compile phase.
    #[must_use]
    pub fn with_compile_threads(mut self, threads: usize) -> BuildOptions {
        self.compile_threads = threads;
        self
    }

    /// Sets the per-pass pipeline switches (conformance harnesses compile
    /// under pass subsets; the defaults enable every pass).
    #[must_use]
    pub fn with_passes(mut self, passes: PipelineConfig) -> BuildOptions {
        self.passes = passes;
        self
    }

    /// Enables function merging under `config`.
    #[must_use]
    pub fn with_merge(mut self, config: MergeConfig) -> BuildOptions {
        self.merge = Some(config);
        self
    }

    /// Routes outline candidates through the session's shared
    /// dictionary (see [`dict`](Self::dict)).
    #[must_use]
    pub fn with_dict(mut self) -> BuildOptions {
        self.dict = true;
        self
    }
}

/// Load record for one compile worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Methods this worker processed.
    pub items: usize,
    /// Wall time the worker spent between first and last item.
    pub busy: Duration,
}

/// Phase timings and statistics for one build (Table 6's raw data, plus
/// the observability layer behind `BENCH_*.json`).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Time compiling methods (keys + HGraph + passes + codegen).
    pub compile_time: Duration,
    /// Time verifying the input dex.
    pub verify_time: Duration,
    /// Time computing cache keys and probing the artifact store (part
    /// of `compile_time`).
    pub key_time: Duration,
    /// Time building HGraphs (part of `compile_time`).
    pub graph_time: Duration,
    /// Time in whole-program inlining (part of `compile_time`; zero
    /// unless [`BuildOptions::inlining`] is set).
    pub inline_time: Duration,
    /// Time in the pass pipeline + codegen (part of `compile_time`).
    pub codegen_time: Duration,
    /// CPU time summed across compile workers (≈ `compile_time` at one
    /// thread; up to `compile_threads ×` beyond it when parallel).
    pub compile_cpu_time: Duration,
    /// Worker threads used for the compile phase.
    pub compile_threads: usize,
    /// Per-worker load for the pipeline + codegen phase, in worker
    /// order.
    pub per_worker: Vec<WorkerLoad>,
    /// Optimization-pass counters aggregated over all methods (merged in
    /// method-index order, so identical for every thread count).
    pub passes: PassStats,
    /// Time in the function-merge pass (bucketing + grouping +
    /// thunk/island materialization, or plan replay when warm).
    pub merge_time: Duration,
    /// Time in LTBO (suffix trees + outlining + patching).
    pub ltbo_time: Duration,
    /// Time in LTBO's detection core alone: group-plan cache probes
    /// plus suffix-tree detection / plan replay. A subset of
    /// [`ltbo_time`](Self::ltbo_time); on a warm build this is the
    /// plan-replay cost the cache is supposed to make negligible.
    pub detect_time: Duration,
    /// Time linking and encoding.
    pub link_time: Duration,
    /// LTBO statistics (zeroed when LTBO is off).
    pub ltbo: LtboStats,
    /// Function-merge statistics (zeroed when the merge pass is off).
    pub merge: MergeStats,
    /// Shared-dictionary arbitration outcomes (zeroed when the
    /// dictionary is off or the session has no registry).
    pub dict: DictStats,
    /// Dictionary epoch this build linked against (0 = the empty
    /// island, also the value when the dictionary is off).
    pub dict_epoch: u64,
    /// Words in the dictionary island the build linked against.
    pub dict_island_words: usize,
    /// Methods compiled.
    pub methods: usize,
    /// Methods replayed from the artifact cache instead of compiled
    /// (part of `methods`).
    pub methods_from_cache: usize,
    /// Artifact-store activity attributable to this build (hits,
    /// misses, stores, evictions and the disk-layer counters).
    pub cache: CacheStats,
    /// Total instruction words before LTBO.
    pub words_before_ltbo: usize,
    /// Profile-feedback generation this build belongs to: 0 for a
    /// plain one-shot build, `>= 1` when calibrod built it for a
    /// tenant's generation table (each drift-triggered refresh bumps
    /// it). Byte determinism is promised *within* a generation — same
    /// generation, same bytes.
    pub generation: u64,
}

impl BuildStats {
    /// Total wall-clock build time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.merge_time + self.ltbo_time + self.link_time
    }

    /// Serializes the stats as a self-contained JSON object (hand
    /// rolled — every field is numeric, so no escaping is needed).
    #[must_use]
    pub fn to_json(&self) -> String {
        let us = |d: Duration| d.as_micros();
        let per_worker: Vec<String> = self
            .per_worker
            .iter()
            .map(|w| format!(r#"{{"items":{},"busy_us":{}}}"#, w.items, us(w.busy)))
            .collect();
        let p = &self.passes;
        let l = &self.ltbo;
        let m = &self.merge;
        let c = &self.cache;
        format!(
            concat!(
                "{{",
                r#""methods":{},"methods_from_cache":{},"words_before_ltbo":{},"#,
                r#""compile_threads":{},"generation":{},"#,
                r#""times_us":{{"verify":{},"keys":{},"graphs":{},"inline":{},"codegen":{},"#,
                r#""compile":{},"merge":{},"ltbo":{},"detect":{},"link":{},"total":{}}},"#,
                r#""compile_cpu_us":{},"per_worker":[{}],"#,
                r#""cache":{{"hits":{},"misses":{},"stores":{},"evictions":{},"#,
                r#""disk_hits":{},"disk_stores":{},"promotions":{},"#,
                r#""peer_hits":{},"peer_misses":{},"peer_errors":{},"evict_cost_us":{},"#,
                r#""group_hits":{},"group_misses":{},"group_stores":{},"#,
                r#""group_evictions":{},"group_disk_hits":{},"group_disk_stores":{},"#,
                r#""group_promotions":{},"#,
                r#""group_peer_hits":{},"group_peer_misses":{},"group_peer_errors":{},"#,
                r#""group_evict_cost_us":{},"#,
                r#""merge_hits":{},"merge_misses":{},"merge_stores":{},"#,
                r#""merge_evictions":{},"merge_disk_hits":{},"merge_disk_stores":{},"#,
                r#""merge_promotions":{},"merge_evict_cost_us":{},"#,
                r#""dict_hits":{},"dict_misses":{},"dict_stores":{},"#,
                r#""dict_evictions":{},"dict_disk_hits":{},"dict_disk_stores":{},"#,
                r#""dict_promotions":{},"#,
                r#""dict_peer_hits":{},"dict_peer_misses":{},"dict_peer_errors":{},"#,
                r#""dict_evict_cost_us":{},"#,
                r#""lock_contention":{},"group_lock_contention":{},"#,
                r#""merge_lock_contention":{},"dict_lock_contention":{}}},"#,
                r#""passes":{{"folded":{},"copies_propagated":{},"cse_hits":{},"#,
                r#""dead_removed":{},"simplified":{},"returns_merged":{},"#,
                r#""blocks_removed":{},"iterations":{},"insns_in":{},"insns_out":{}}},"#,
                r#""ltbo":{{"candidate_methods":{},"excluded_methods":{},"#,
                r#""hot_restricted_methods":{},"outlined_functions":{},"#,
                r#""occurrences_replaced":{},"words_saved":{},"pc_rel_patched":{},"#,
                r#""stack_maps_updated":{},"detection_groups":{}}},"#,
                r#""merge":{{"candidate_methods":{},"excluded_methods":{},"#,
                r#""merge_groups":{},"merged_methods":{},"words_saved":{},"#,
                r#""outline_preferred":{}}},"#,
                r#""dict":{{"epoch":{},"island_words":{},"hits":{},"#,
                r#""publishes":{},"private_preferred":{}}}"#,
                "}}",
            ),
            self.methods,
            self.methods_from_cache,
            self.words_before_ltbo,
            self.compile_threads,
            self.generation,
            us(self.verify_time),
            us(self.key_time),
            us(self.graph_time),
            us(self.inline_time),
            us(self.codegen_time),
            us(self.compile_time),
            us(self.merge_time),
            us(self.ltbo_time),
            us(self.detect_time),
            us(self.link_time),
            us(self.total_time()),
            us(self.compile_cpu_time),
            per_worker.join(","),
            c.hits,
            c.misses,
            c.stores,
            c.evictions,
            c.disk_hits,
            c.disk_stores,
            c.promotions,
            c.peer_hits,
            c.peer_misses,
            c.peer_errors,
            c.evict_cost_us,
            c.group_hits,
            c.group_misses,
            c.group_stores,
            c.group_evictions,
            c.group_disk_hits,
            c.group_disk_stores,
            c.group_promotions,
            c.group_peer_hits,
            c.group_peer_misses,
            c.group_peer_errors,
            c.group_evict_cost_us,
            c.merge_hits,
            c.merge_misses,
            c.merge_stores,
            c.merge_evictions,
            c.merge_disk_hits,
            c.merge_disk_stores,
            c.merge_promotions,
            c.merge_evict_cost_us,
            c.dict_hits,
            c.dict_misses,
            c.dict_stores,
            c.dict_evictions,
            c.dict_disk_hits,
            c.dict_disk_stores,
            c.dict_promotions,
            c.dict_peer_hits,
            c.dict_peer_misses,
            c.dict_peer_errors,
            c.dict_evict_cost_us,
            c.lock_contention,
            c.group_lock_contention,
            c.merge_lock_contention,
            c.dict_lock_contention,
            p.folded,
            p.copies_propagated,
            p.cse_hits,
            p.dead_removed,
            p.simplified,
            p.returns_merged,
            p.blocks_removed,
            p.iterations,
            p.insns_in,
            p.insns_out,
            l.candidate_methods,
            l.excluded_methods,
            l.hot_restricted_methods,
            l.outlined_functions,
            l.occurrences_replaced,
            l.words_saved,
            l.pc_rel_patched,
            l.stack_maps_updated,
            l.detection_groups,
            m.candidate_methods,
            m.excluded_methods,
            m.merge_groups,
            m.merged_methods,
            m.words_saved,
            m.outline_preferred,
            self.dict_epoch,
            self.dict_island_words,
            self.dict.hits,
            self.dict.publishes,
            self.dict.private_preferred,
        )
    }
}

/// The output of a build.
#[derive(Debug)]
pub struct BuildOutput {
    /// The linked OAT file.
    pub oat: OatFile,
    /// Build statistics.
    pub stats: BuildStats,
}

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// The input dex file failed verification.
    Verify(calibro_dex::VerifyError),
    /// The persistent artifact cache holds a corrupt or unreadable
    /// entry for one of this build's keys. Surfaced as an error (never
    /// silently recompiled around) so poisoned caches get diagnosed.
    Cache(CacheError),
    /// Linking failed.
    Link(LinkError),
    /// A compile worker panicked while processing one method. The panic
    /// is caught at the pool boundary and surfaced with the method index
    /// and payload message instead of aborting the whole process.
    CompileWorker {
        /// Index of the method whose compilation panicked (lowest index
        /// when several workers fault in one phase).
        method: usize,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// An outline worker panicked while detecting or materializing one
    /// detection group's plan.
    OutlineWorker {
        /// Index of the detection group whose worker panicked.
        group: usize,
        /// The panic payload, rendered as text.
        message: String,
    },
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Verify(e) => write!(f, "dex verification failed: {e}"),
            BuildError::Cache(e) => write!(f, "artifact cache failed: {e}"),
            BuildError::Link(e) => write!(f, "linking failed: {e}"),
            BuildError::CompileWorker { method, message } => {
                write!(f, "compile worker for method {method} panicked: {message}")
            }
            BuildError::OutlineWorker { group, message } => {
                write!(f, "outline worker for group {group} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Verify(e) => Some(e),
            BuildError::Cache(e) => Some(e),
            BuildError::Link(e) => Some(e),
            BuildError::CompileWorker { .. } | BuildError::OutlineWorker { .. } => None,
        }
    }
}

/// Compiles a dex file into an OAT file under the given options — the
/// reproduction's `dex2oat` entry point. Runs the staged pipeline
/// through a one-shot [`BuildSession`]; callers that rebuild related
/// inputs should keep a session alive instead, so unchanged methods
/// replay from its artifact cache.
///
/// # Errors
///
/// Returns [`BuildError`] if the input fails bytecode verification or
/// the final link fails.
pub fn build(dex: &DexFile, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
    BuildSession::new().build(dex, options)
}

/// Compiles a dex file against an *externally owned* artifact store —
/// the entry point multi-tenant services use so many requests share one
/// warm cache. Equivalent to `BuildSession::with_store(store).build(..)`;
/// the store outlives the call and keeps every artifact this build
/// created, so a later identical request (from any thread or client)
/// replays instead of recompiling.
///
/// # Errors
///
/// Returns [`BuildError`] under the same conditions as [`build`].
pub fn build_with_store(
    dex: &DexFile,
    options: &BuildOptions,
    store: &std::sync::Arc<calibro_cache::ArtifactStore>,
) -> Result<BuildOutput, BuildError> {
    BuildSession::with_store(std::sync::Arc::clone(store)).build(dex, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_is_well_formed() {
        let stats = BuildStats {
            methods: 12,
            compile_threads: 4,
            generation: 3,
            per_worker: vec![
                WorkerLoad { items: 7, busy: Duration::from_micros(250) },
                WorkerLoad { items: 5, busy: Duration::from_micros(310) },
            ],
            ..BuildStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains(r#""methods":12"#));
        assert!(json.contains(r#""compile_threads":4"#));
        assert!(json.contains(r#""generation":3"#));
        assert!(
            json.contains(r#""per_worker":[{"items":7,"busy_us":250},{"items":5,"busy_us":310}]"#)
        );
        assert!(json.contains(r#""passes":{"folded":0"#));
        assert!(json.contains(r#""ltbo":{"candidate_methods":0"#));
        assert!(json.contains(r#""merge":{"candidate_methods":0"#));
        assert!(json.contains(r#""merge_hits":0"#));
        assert!(json.contains(r#""merge_lock_contention":0"#));
        assert!(json.contains(r#""dict_hits":0"#));
        assert!(json.contains(r#""dict_lock_contention":0"#));
        assert!(json.contains(r#""dict":{"epoch":0"#));
        assert!(json.contains(r#""compile":0,"merge":0,"ltbo":0"#));
    }
}
