//! The `dex2oat`-style build driver: Figure 5 of the paper end to end —
//! per-method HGraph construction, optimization passes, code generation
//! (with optional CTO and metadata collection), optional link-time
//! outlining (LTBO, with PlOpti / HfOpti), and final linking.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use calibro_codegen::{compile_method, compile_native_stub, CodegenOptions, CompiledMethod};
use calibro_dex::DexFile;
use calibro_hgraph::{
    build_hgraph, run_inlining, run_pipeline_with, HGraph, InlineConfig, PassStats, PipelineConfig,
};
use calibro_oat::{link, LinkError, LinkInput, OatFile, DEFAULT_BASE_ADDRESS};

use crate::ltbo::{run_ltbo, LtboConfig, LtboMode, LtboStats};

/// Full build configuration — one row of the paper's Table 4 matrix.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Compilation-time outlining of the three ART patterns (§3.1).
    pub cto: bool,
    /// Link-time binary outlining (§3.2-§3.3); `None` disables LTBO.
    pub ltbo: Option<LtboMode>,
    /// Minimum outlined sequence length (instructions).
    pub min_seq_len: usize,
    /// Hot methods to filter (§3.4.2), usually from
    /// [`calibro_profile`](https://docs.rs) profiling.
    pub hot_methods: Option<HashSet<u32>>,
    /// Load address for the text segment.
    pub base_address: u64,
    /// Collect LTBO metadata even when LTBO is off (used by the
    /// redundancy-analysis tooling behind the paper's Table 1).
    pub force_metadata: bool,
    /// Run whole-program inlining of small leaf methods before the
    /// per-method passes (dex2oat inlines; off by default here so the
    /// headline numbers isolate the outlining contribution).
    pub inlining: bool,
    /// Worker threads for the per-method compile phase (HGraph build,
    /// pass pipeline, codegen). `1` (the default) compiles sequentially
    /// on the calling thread. Per-method compilation is independent, so
    /// the linked output is bit-identical for every thread count:
    /// results land in index-order slots regardless of completion order
    /// (whole-program inlining stays a sequential pre-phase).
    pub compile_threads: usize,
    /// Per-pass switches for the optimization pipeline. Defaults to every
    /// pass enabled; the conformance harness compiles under pass subsets
    /// to prove outlining is sound on unoptimized and partially optimized
    /// code alike.
    pub passes: PipelineConfig,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        BuildOptions {
            cto: false,
            ltbo: None,
            min_seq_len: 2,
            hot_methods: None,
            base_address: DEFAULT_BASE_ADDRESS,
            force_metadata: false,
            inlining: false,
            compile_threads: 1,
            passes: PipelineConfig::all(),
        }
    }
}

impl BuildOptions {
    /// The paper's Baseline: all dex2oat optimizations, no outlining.
    #[must_use]
    pub fn baseline() -> BuildOptions {
        BuildOptions::default()
    }

    /// The paper's `CTO` configuration.
    #[must_use]
    pub fn cto() -> BuildOptions {
        BuildOptions { cto: true, ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO` configuration (single global suffix tree).
    #[must_use]
    pub fn cto_ltbo() -> BuildOptions {
        BuildOptions { cto: true, ltbo: Some(LtboMode::Global), ..BuildOptions::default() }
    }

    /// The paper's `CTO+LTBO+PlOpti` configuration.
    #[must_use]
    pub fn cto_ltbo_parallel(groups: usize, threads: usize) -> BuildOptions {
        BuildOptions {
            cto: true,
            ltbo: Some(LtboMode::Parallel { groups, threads }),
            ..BuildOptions::default()
        }
    }

    /// Adds hot-function filtering (`HfOpti`, §3.4.2).
    #[must_use]
    pub fn with_hot_filter(mut self, hot: HashSet<u32>) -> BuildOptions {
        self.hot_methods = Some(hot);
        self
    }

    /// Sets the worker-thread count for the per-method compile phase.
    #[must_use]
    pub fn with_compile_threads(mut self, threads: usize) -> BuildOptions {
        self.compile_threads = threads;
        self
    }

    /// Sets the per-pass pipeline switches (conformance harnesses compile
    /// under pass subsets; the defaults enable every pass).
    #[must_use]
    pub fn with_passes(mut self, passes: PipelineConfig) -> BuildOptions {
        self.passes = passes;
        self
    }
}

/// Load record for one compile worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Methods this worker processed.
    pub items: usize,
    /// Wall time the worker spent between first and last item.
    pub busy: Duration,
}

/// Phase timings and statistics for one build (Table 6's raw data, plus
/// the observability layer behind `BENCH_*.json`).
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Time compiling methods (HGraph + passes + codegen).
    pub compile_time: Duration,
    /// Time verifying the input dex.
    pub verify_time: Duration,
    /// Time building HGraphs (part of `compile_time`).
    pub graph_time: Duration,
    /// Time in whole-program inlining (part of `compile_time`; zero
    /// unless [`BuildOptions::inlining`] is set).
    pub inline_time: Duration,
    /// Time in the pass pipeline + codegen (part of `compile_time`).
    pub codegen_time: Duration,
    /// CPU time summed across compile workers (≈ `compile_time` at one
    /// thread; up to `compile_threads ×` beyond it when parallel).
    pub compile_cpu_time: Duration,
    /// Worker threads used for the compile phase.
    pub compile_threads: usize,
    /// Per-worker load for the pipeline + codegen phase, in worker
    /// order.
    pub per_worker: Vec<WorkerLoad>,
    /// Optimization-pass counters aggregated over all methods (merged in
    /// method-index order, so identical for every thread count).
    pub passes: PassStats,
    /// Time in LTBO (suffix trees + outlining + patching).
    pub ltbo_time: Duration,
    /// Time linking and encoding.
    pub link_time: Duration,
    /// LTBO statistics (zeroed when LTBO is off).
    pub ltbo: LtboStats,
    /// Methods compiled.
    pub methods: usize,
    /// Total instruction words before LTBO.
    pub words_before_ltbo: usize,
}

impl BuildStats {
    /// Total wall-clock build time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.compile_time + self.ltbo_time + self.link_time
    }

    /// Serializes the stats as a self-contained JSON object (hand
    /// rolled — every field is numeric, so no escaping is needed).
    #[must_use]
    pub fn to_json(&self) -> String {
        let us = |d: Duration| d.as_micros();
        let per_worker: Vec<String> = self
            .per_worker
            .iter()
            .map(|w| format!(r#"{{"items":{},"busy_us":{}}}"#, w.items, us(w.busy)))
            .collect();
        let p = &self.passes;
        let l = &self.ltbo;
        format!(
            concat!(
                "{{",
                r#""methods":{},"words_before_ltbo":{},"compile_threads":{},"#,
                r#""times_us":{{"verify":{},"graphs":{},"inline":{},"codegen":{},"#,
                r#""compile":{},"ltbo":{},"link":{},"total":{}}},"#,
                r#""compile_cpu_us":{},"per_worker":[{}],"#,
                r#""passes":{{"folded":{},"copies_propagated":{},"cse_hits":{},"#,
                r#""dead_removed":{},"simplified":{},"returns_merged":{},"#,
                r#""blocks_removed":{},"iterations":{},"insns_in":{},"insns_out":{}}},"#,
                r#""ltbo":{{"candidate_methods":{},"excluded_methods":{},"#,
                r#""hot_restricted_methods":{},"outlined_functions":{},"#,
                r#""occurrences_replaced":{},"words_saved":{},"pc_rel_patched":{},"#,
                r#""stack_maps_updated":{}}}"#,
                "}}",
            ),
            self.methods,
            self.words_before_ltbo,
            self.compile_threads,
            us(self.verify_time),
            us(self.graph_time),
            us(self.inline_time),
            us(self.codegen_time),
            us(self.compile_time),
            us(self.ltbo_time),
            us(self.link_time),
            us(self.total_time()),
            us(self.compile_cpu_time),
            per_worker.join(","),
            p.folded,
            p.copies_propagated,
            p.cse_hits,
            p.dead_removed,
            p.simplified,
            p.returns_merged,
            p.blocks_removed,
            p.iterations,
            p.insns_in,
            p.insns_out,
            l.candidate_methods,
            l.excluded_methods,
            l.hot_restricted_methods,
            l.outlined_functions,
            l.occurrences_replaced,
            l.words_saved,
            l.pc_rel_patched,
            l.stack_maps_updated,
        )
    }
}

/// The output of a build.
#[derive(Debug)]
pub struct BuildOutput {
    /// The linked OAT file.
    pub oat: OatFile,
    /// Build statistics.
    pub stats: BuildStats,
}

/// A build failure.
#[derive(Debug)]
pub enum BuildError {
    /// The input dex file failed verification.
    Verify(calibro_dex::VerifyError),
    /// Linking failed.
    Link(LinkError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Verify(e) => write!(f, "dex verification failed: {e}"),
            BuildError::Link(e) => write!(f, "linking failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Compiles a dex file into an OAT file under the given options — the
/// reproduction's `dex2oat` entry point.
///
/// # Errors
///
/// Returns [`BuildError`] if the input fails bytecode verification or
/// the final link fails.
pub fn build(dex: &DexFile, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
    let verify_start = Instant::now();
    calibro_dex::verify(dex).map_err(BuildError::Verify)?;
    let threads = options.compile_threads.max(1);
    let mut stats = BuildStats {
        verify_time: verify_start.elapsed(),
        compile_threads: threads,
        ..BuildStats::default()
    };

    // --- Compile every method (Figure 5 left half). ---------------------
    let collect_metadata = options.ltbo.is_some() || options.force_metadata;
    let codegen_opts = CodegenOptions { cto: options.cto, collect_metadata };
    let start = Instant::now();
    let inputs = dex.methods();

    // Build all graphs first so whole-program inlining can see callees.
    // Graph construction is per-method, so it fans out across workers.
    let (graphs, graph_loads) = run_indexed(inputs.len(), threads, |i| {
        let m = &inputs[i];
        if m.is_native {
            None
        } else {
            Some(build_hgraph(m))
        }
    });
    stats.graph_time = start.elapsed();

    // Whole-program inlining reads callee graphs while rewriting callers,
    // so it stays a sequential pre-phase between the two parallel fans.
    let inline_start = Instant::now();
    let mut graphs = graphs;
    if options.inlining {
        run_inlining(&mut graphs, &InlineConfig::default());
    }
    stats.inline_time = inline_start.elapsed();

    // Pass pipeline + codegen: each method is independent, and results
    // land in index-order slots, so the linked bytes are identical for
    // every thread count. Workers take ownership of their graph through
    // a per-slot mutex (locked exactly once, by the worker that drew the
    // index from the cursor).
    let codegen_start = Instant::now();
    let cells: Vec<parking_lot::Mutex<Option<HGraph>>> =
        graphs.into_iter().map(parking_lot::Mutex::new).collect();
    let (compiled, codegen_loads) =
        run_indexed(inputs.len(), threads, |i| match cells[i].lock().take() {
            None => (compile_native_stub(inputs[i].id, &codegen_opts), PassStats::default()),
            Some(mut graph) => {
                let pass_stats = run_pipeline_with(&mut graph, &options.passes);
                (compile_method(&graph, &codegen_opts), pass_stats)
            }
        });
    stats.codegen_time = codegen_start.elapsed();

    let mut methods: Vec<CompiledMethod> = Vec::with_capacity(compiled.len());
    for (method, pass_stats) in compiled {
        // Merged in method-index order — deterministic across schedules.
        stats.passes += pass_stats;
        methods.push(method);
    }
    stats.per_worker = codegen_loads;
    stats.compile_cpu_time = graph_loads.iter().chain(&stats.per_worker).map(|w| w.busy).sum();
    stats.methods = methods.len();
    stats.words_before_ltbo = methods.iter().map(CompiledMethod::size_words).sum();
    stats.compile_time = start.elapsed();

    // --- LTBO (Figure 5: "LTBO.2" before final linking). -----------------
    let mut outlined = Vec::new();
    if let Some(mode) = options.ltbo {
        let start = Instant::now();
        let config = LtboConfig {
            mode,
            min_len: options.min_seq_len,
            hot_methods: options.hot_methods.clone(),
        };
        let result = run_ltbo(&mut methods, &config);
        outlined = result.outlined;
        stats.ltbo = result.stats;
        stats.ltbo_time = start.elapsed();
    }

    // --- Link. -----------------------------------------------------------
    let start = Instant::now();
    let oat =
        link(&LinkInput { methods, outlined }, options.base_address).map_err(BuildError::Link)?;
    stats.link_time = start.elapsed();

    Ok(BuildOutput { oat, stats })
}

/// Runs `f(0..count)` across up to `threads` workers, returning results
/// in index order plus one [`WorkerLoad`] per worker.
///
/// Workers draw indices from a shared atomic cursor (the same
/// work-stealing shape as `calibro_suffix::detect_parallel`) and write
/// each result into its index's dedicated slot, so the output order —
/// and therefore everything derived from it — is independent of the
/// schedule. With `threads <= 1` (or nothing to do) the closure runs on
/// the calling thread with no synchronization at all.
fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> (Vec<T>, Vec<WorkerLoad>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        let start = Instant::now();
        let out: Vec<T> = (0..count).map(f).collect();
        return (out, vec![WorkerLoad { items: count, busy: start.elapsed() }]);
    }
    let workers = threads.min(count);
    let slots: Vec<parking_lot::Mutex<Option<T>>> =
        (0..count).map(|_| parking_lot::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let loads = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let start = Instant::now();
                    let mut items = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        *slots[i].lock() = Some(f(i));
                        items += 1;
                    }
                    WorkerLoad { items, busy: start.elapsed() }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("compile worker panicked"))
            .collect::<Vec<WorkerLoad>>()
    })
    .expect("compile worker pool panicked");
    let out = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index slot is filled"))
        .collect();
    (out, loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_index_order() {
        for threads in [1, 2, 8, 64] {
            let (out, loads) = run_indexed(100, threads, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(loads.iter().map(|w| w.items).sum::<usize>(), 100);
            assert!(loads.len() <= threads.max(1));
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_oversubscribed() {
        let (out, loads) = run_indexed(0, 8, |i| i);
        assert!(out.is_empty());
        assert_eq!(loads.iter().map(|w| w.items).sum::<usize>(), 0);
        // More threads than items: never spawns more workers than items.
        let (out, loads) = run_indexed(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(loads.len() <= 3);
    }

    #[test]
    fn stats_json_is_well_formed() {
        let stats = BuildStats {
            methods: 12,
            compile_threads: 4,
            per_worker: vec![
                WorkerLoad { items: 7, busy: Duration::from_micros(250) },
                WorkerLoad { items: 5, busy: Duration::from_micros(310) },
            ],
            ..BuildStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains(r#""methods":12"#));
        assert!(json.contains(r#""compile_threads":4"#));
        assert!(
            json.contains(r#""per_worker":[{"items":7,"busy_us":250},{"items":5,"busy_us":310}]"#)
        );
        assert!(json.contains(r#""passes":{"folded":0"#));
        assert!(json.contains(r#""ltbo":{"candidate_methods":0"#));
    }
}
