//! # calibro
//!
//! The reproduction of **Calibro: Compilation-Assisted Linking-Time
//! Binary Code Outlining for Code Size Reduction in Android
//! Applications** (CGO '25): a `dex2oat`-style build driver that
//! composes
//!
//! * **CTO** (§3.1) — compilation-time outlining of the three
//!   ART-specific repetitive patterns (implemented in
//!   [`calibro_codegen`]),
//! * **LTBO** (§3.2-§3.3) — compilation-assisted link-time binary code
//!   outlining with suffix-tree repeat detection, the Figure 2 benefit
//!   model, outlined-function creation and PC-relative patching,
//! * **PlOpti** (§3.4.1) — paralleled suffix trees, and
//! * **HfOpti** (§3.4.2) — profile-guided hot-function filtering,
//!
//! over the substrate crates (`calibro-dex`, `calibro-hgraph`,
//! `calibro-codegen`, `calibro-oat`).
//!
//! # Examples
//!
//! ```
//! use calibro::{build, BuildOptions};
//! use calibro_dex::{BinOp, ClassId, DexFile, DexInsn, MethodBuilder, VReg};
//!
//! let mut dex = DexFile::new();
//! let class = dex.add_class("Main", 0);
//! // Two methods with identical bodies: LTBO finds the repeats.
//! for name in ["a", "b"] {
//!     let mut b = MethodBuilder::new(name, 4, 1);
//!     for _ in 0..3 {
//!         b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(3), b: VReg(3) });
//!         b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(1), a: VReg(0), b: VReg(3) });
//!         b.push(DexInsn::Bin { op: BinOp::Sub, dst: VReg(2), a: VReg(1), b: VReg(0) });
//!         b.push(DexInsn::Bin { op: BinOp::Or, dst: VReg(0), a: VReg(2), b: VReg(1) });
//!     }
//!     b.push(DexInsn::Return { src: VReg(0) });
//!     dex.add_method(b.build(class));
//! }
//! let baseline = build(&dex, &BuildOptions::baseline())?;
//! let outlined = build(&dex, &BuildOptions::cto_ltbo())?;
//! assert!(outlined.oat.text_size_bytes() < baseline.oat.text_size_bytes());
//! # Ok::<(), calibro::BuildError>(())
//! ```

#![warn(missing_docs)]

mod driver;
mod fingerprint;
mod ltbo;
mod merge;
mod pipeline;
mod report;
mod sizepass;

pub use calibro_cache::{
    ArtifactStore, CacheConfig, CacheEntry, CacheError, CacheKey, CacheStats, StableHasher,
    SymbolTemplate,
};
pub use calibro_dict::{DictConfig, DictRegistry, DictSession, DictStats};
pub use calibro_hgraph::{PassStats, PipelineConfig};
pub use driver::{
    build, build_with_store, BuildError, BuildOptions, BuildOutput, BuildStats, WorkerLoad,
};
pub use fingerprint::{
    fingerprint_ltbo_config, fingerprint_ltbo_mode, fingerprint_merge_config, fingerprint_options,
    fingerprint_pipeline, group_plan_key, merge_plan_key_from, method_cache_key,
    options_fingerprint, program_salt, reference_env,
};
pub use ltbo::detect_fault;
pub use ltbo::{
    run_ltbo, run_ltbo_cached, run_ltbo_with_templates, LtboConfig, LtboMode, LtboResult,
    LtboStats, OutlineError,
};
pub use merge::{merge_content_key, MergeConfig, MergeStats};
pub use pipeline::{BuildSession, CodegenArtifact, FrontendArtifact, MethodOutcome};
pub use report::{size_report, SizeReport};
pub use sizepass::{
    size_passes, LtboArtifact, MergePass, OutlinePass, PassContext, SizeArtifact, SizePass,
};
