//! The staged build pipeline: Figure 5 of the paper as four explicit
//! stages with typed artifacts flowing between them —
//!
//! ```text
//! Frontend  --FrontendArtifact-->  Codegen  --CodegenArtifact-->
//!     Size passes  --SizeArtifact-->  Link  -->  OatFile
//! ```
//!
//! * **Frontend** verifies the dex, computes per-method cache keys,
//!   probes the [`ArtifactStore`], and builds HGraphs for the methods
//!   that missed (plus whole-program inlining when enabled);
//! * **Codegen** runs the pass pipeline and code generation for every
//!   miss — populating the store — and replays every hit;
//! * **Size passes** run the composable
//!   [`SizePass`](crate::sizepass::SizePass) pipeline (the function
//!   merger, then LTBO — see [`sizepass`](crate::sizepass)) over the
//!   compiled methods, replaying cached symbolization templates and
//!   per-pass plan lanes;
//! * **Link** binds labels and encodes the final text segment.
//!
//! A [`BuildSession`] owns the store and threads it through the stages,
//! so consecutive builds of related inputs recompile only the changed
//! methods. Each artifact exposes a [`digest`](FrontendArtifact::digest)
//! over its content, letting harnesses assert warm/cold equivalence at
//! stage granularity rather than only on the final bytes.
//!
//! # Determinism
//!
//! Warm and cold builds produce bit-identical OAT files, for any thread
//! count:
//!
//! * a cache key covers everything per-method compilation reads — the
//!   schema salt, the full [`BuildOptions`] fingerprint, the method's
//!   canonical bytecode, and (when whole-program inlining is on) the
//!   whole-program hash — so equal keys imply equal compile inputs, and
//!   compilation is a pure function of those inputs;
//! * results land in method-index-order slots regardless of which
//!   worker produced them (see [`run_indexed`]);
//! * LTBO consumes cached symbolization *templates*
//!   ([`SymbolTemplate`]) rather than symbol sequences: fresh separator
//!   numbers are assigned at replay in candidate order, exactly as
//!   direct extraction would assign them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calibro_cache::{ArtifactStore, CacheConfig, CacheEntry, CacheKey, StableHasher};
use calibro_codegen::{compile_method, compile_native_stub, CodegenOptions, CompiledMethod};
use calibro_dex::DexFile;
use calibro_dict::DictRegistry;
use calibro_hgraph::{
    build_hgraph, run_inlining, run_pipeline_with, HGraph, InlineConfig, PassStats,
};
use calibro_oat::{DictImage, LinkInput, OatFile, DICT_BASE_ADDRESS};

use crate::driver::{BuildError, BuildOptions, BuildOutput, BuildStats, WorkerLoad};
use crate::fingerprint::{method_cache_key, options_fingerprint, program_salt, reference_env};
use crate::ltbo::{build_template, prepare_hit_symbols, LtboConfig, MethodSymbols};
use crate::sizepass::{hash_compiled, size_passes, PassContext, SizeArtifact};

/// A build context holding the content-addressed artifact store across
/// builds. One-shot callers use [`build`](crate::build); incremental
/// callers keep a session alive and rebuild through it:
///
/// ```
/// use calibro::{BuildOptions, BuildSession};
/// use calibro_dex::{DexFile, DexInsn, MethodBuilder, VReg};
///
/// let mut dex = DexFile::new();
/// let class = dex.add_class("Main", 0);
/// let mut b = MethodBuilder::new("f", 2, 1);
/// b.push(DexInsn::Return { src: VReg(1) });
/// dex.add_method(b.build(class));
///
/// let session = BuildSession::new();
/// let cold = session.build(&dex, &BuildOptions::default())?;
/// let warm = session.build(&dex, &BuildOptions::default())?;
/// assert_eq!(cold.oat.words, warm.oat.words);
/// assert_eq!(warm.stats.methods_from_cache, 1);
/// # Ok::<(), calibro::BuildError>(())
/// ```
pub struct BuildSession {
    store: Arc<ArtifactStore>,
    /// The shared outline dictionary, when this session belongs to a
    /// daemon hosting one. [`BuildOptions::dict`] routes outline
    /// candidates through it; without a registry the flag is inert.
    dict: Option<Arc<DictRegistry>>,
}

impl Default for BuildSession {
    fn default() -> BuildSession {
        BuildSession::new()
    }
}

impl core::fmt::Debug for BuildSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BuildSession").field("store", &self.store).finish()
    }
}

impl BuildSession {
    /// A session with a fresh in-memory store under the default
    /// configuration.
    #[must_use]
    pub fn new() -> BuildSession {
        BuildSession::with_config(CacheConfig::default())
    }

    /// A session with a fresh store under `config` (set
    /// [`CacheConfig::disk_dir`] for a persistent cache).
    #[must_use]
    pub fn with_config(config: CacheConfig) -> BuildSession {
        BuildSession { store: Arc::new(ArtifactStore::new(config)), dict: None }
    }

    /// A session over an existing (possibly shared) store.
    #[must_use]
    pub fn with_store(store: Arc<ArtifactStore>) -> BuildSession {
        BuildSession { store, dict: None }
    }

    /// Attaches a shared outline dictionary. Builds with
    /// [`BuildOptions::dict`] set then arbitrate every outline candidate
    /// against the registry's current epoch island.
    #[must_use]
    pub fn with_dict_registry(mut self, registry: Arc<DictRegistry>) -> BuildSession {
        self.dict = Some(registry);
        self
    }

    /// The session's artifact store (for counters or sharing).
    #[must_use]
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The attached dictionary registry, if any.
    #[must_use]
    pub fn dict_registry(&self) -> Option<&Arc<DictRegistry>> {
        self.dict.as_ref()
    }

    /// Runs the full pipeline: frontend → codegen → outline → link.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the input fails bytecode verification,
    /// a persistent cache entry is corrupt, or the final link fails.
    pub fn build(&self, dex: &DexFile, options: &BuildOptions) -> Result<BuildOutput, BuildError> {
        let base = self.store.stats();
        let frontend = self.frontend(dex, options)?;
        let mut stats = BuildStats {
            verify_time: frontend.verify_time,
            key_time: frontend.key_time,
            graph_time: frontend.graph_time,
            inline_time: frontend.inline_time,
            compile_threads: options.compile_threads.max(1),
            ..BuildStats::default()
        };
        let graph_busy: Duration = frontend.graph_loads.iter().map(|w| w.busy).sum();

        // Overlap (warm path): while codegen replays hits and compiles
        // the dirty methods, symbolize the hit methods' LTBO sequences
        // on this thread from their store entries. Each method's
        // separators come from its own index-derived band, so the
        // result is identical to what the outline stage would compute
        // after codegen — just earlier. Dirty methods stay `None` and
        // are symbolized post-codegen as usual.
        let ltbo_config = options.ltbo.map(|mode| LtboConfig {
            mode,
            min_len: options.min_seq_len,
            hot_methods: options.hot_methods.clone(),
        });
        let (codegen, prepared) = match &ltbo_config {
            Some(config) if frontend.cache_hits() > 0 => {
                let snapshot = frontend.cached.clone();
                if available_threads() > 1 {
                    std::thread::scope(|s| {
                        let handle = s.spawn(|| self.codegen(dex, options, frontend));
                        let prepared = prepare_hit_symbols(&snapshot, config);
                        let codegen =
                            handle.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                        (codegen, prepared)
                    })
                } else {
                    // One core: the overlap cannot shorten the wall and the
                    // extra thread only adds context switches. Same result,
                    // computed back to back.
                    let prepared = prepare_hit_symbols(&snapshot, config);
                    let codegen = self.codegen(dex, options, frontend);
                    (codegen, prepared)
                }
            }
            _ => (self.codegen(dex, options, frontend), Vec::new()),
        };
        let codegen = codegen?;
        stats.codegen_time = codegen.codegen_time;
        stats.compile_time =
            stats.key_time + stats.graph_time + stats.inline_time + stats.codegen_time;
        stats.passes = codegen.passes;
        stats.per_worker = codegen.per_worker.clone();
        stats.compile_cpu_time =
            graph_busy + stats.per_worker.iter().map(|w| w.busy).sum::<Duration>();
        stats.methods = codegen.outcomes.len();
        stats.methods_from_cache = codegen.outcomes.iter().filter(|o| o.cache_hit).count();

        let size = self.size_stage(options, codegen, prepared)?;
        stats.words_before_ltbo = size.words_before;
        stats.merge = size.merge;
        stats.merge_time = size.merge_time;
        stats.ltbo = size.ltbo;
        stats.ltbo_time = size.ltbo_time;
        stats.detect_time = size.detect_time;
        stats.dict = size.dict;
        stats.dict_epoch = size.dict_epoch;
        stats.dict_island_words = size.dict_island.as_ref().map_or(0, |d| d.words.len());

        let link_start = Instant::now();
        let oat = self.link(options, size)?;
        stats.link_time = link_start.elapsed();
        stats.cache = self.store.stats().since(&base);
        Ok(BuildOutput { oat, stats })
    }

    /// Stage 1 — **Frontend**: computes every method's cache key,
    /// probes the store, verifies the dex (hits skip the intrinsic
    /// per-method checks their key already covers), and builds HGraphs
    /// for the misses. With whole-program inlining enabled, a single
    /// miss forces graphs for *all* methods (any callee body may be
    /// inlined) and the sequential inlining pre-phase runs as in a cold
    /// build.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Verify`] on invalid bytecode and
    /// [`BuildError::Cache`] when the persistent layer holds a corrupt
    /// entry for one of the probed keys.
    pub fn frontend(
        &self,
        dex: &DexFile,
        options: &BuildOptions,
    ) -> Result<FrontendArtifact, BuildError> {
        let key_start = Instant::now();
        let inputs = dex.methods();
        let threads = options.compile_threads.max(1);
        let fp = options_fingerprint(options);
        let salt = options.inlining.then(|| program_salt(dex));
        // Key hashing fans out like codegen: each worker serializes
        // methods into its own reused thread-local buffer and mixes
        // word-at-a-time (see calibro_cache::hash). Probing stays
        // sequential — it is one lock acquisition per method.
        let (keys, _key_loads) =
            run_indexed(inputs.len(), threads, |i| method_cache_key(&inputs[i], fp, salt))
                .map_err(|p| BuildError::CompileWorker { method: p.index, message: p.message })?;
        // One batched probe: local tiers per key, then every local miss
        // resolved through the peer tier in a single pipelined exchange
        // (a fleet sibling's warm lane) instead of a round trip per key.
        let cached = self.store.get_many(&keys).map_err(BuildError::Cache)?;
        let key_time = key_start.elapsed();

        // A cache hit proves the method's intrinsic checks (register
        // bounds, branch targets, definite assignment) passed when the
        // entry was created — the key covers every byte they read. The
        // contextual reference checks additionally read the program
        // environment, so a hit skips them only when the entry's
        // recorded environment fingerprint matches this build's: then
        // both inputs of the (deterministic) check are unchanged and so
        // is its verdict.
        let ref_env = reference_env(dex);
        let verify_start = Instant::now();
        for (m, hit) in inputs.iter().zip(&cached) {
            match hit {
                Some(entry) if entry.ref_env == ref_env => {}
                Some(_) => calibro_dex::verify_references(dex, m).map_err(BuildError::Verify)?,
                None => {
                    calibro_dex::verify_intrinsic(m).map_err(BuildError::Verify)?;
                    calibro_dex::verify_references(dex, m).map_err(BuildError::Verify)?;
                }
            }
        }
        let verify_time = verify_start.elapsed();

        let misses = cached.iter().filter(|c| c.is_none()).count();
        let inlining = options.inlining && misses > 0;
        let need_graph: Vec<bool> = inputs
            .iter()
            .zip(&cached)
            .map(|(m, hit)| !m.is_native && (inlining || hit.is_none()))
            .collect();
        let start = Instant::now();
        let (mut graphs, graph_loads) =
            run_indexed(inputs.len(), threads, |i| need_graph[i].then(|| build_hgraph(&inputs[i])))
                .map_err(|p| BuildError::CompileWorker { method: p.index, message: p.message })?;
        let graph_time = start.elapsed();

        // Whole-program inlining reads callee graphs while rewriting
        // callers, so it stays a sequential phase between the fans.
        let inline_start = Instant::now();
        if inlining {
            run_inlining(&mut graphs, &InlineConfig::default());
        }
        let inline_time = inline_start.elapsed();

        Ok(FrontendArtifact {
            keys,
            cached,
            graphs,
            ref_env,
            verify_time,
            key_time,
            graph_time,
            inline_time,
            graph_loads,
        })
    }

    /// Stage 2 — **Codegen**: for every cache miss, runs the pass
    /// pipeline and code generation, builds the LTBO symbolization
    /// template (when LTBO is on), and populates the store; every hit is
    /// replayed from its entry. Results land in method-index order.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CompileWorker`] when a compile worker
    /// panics (the panic is contained to its method, not the process).
    pub fn codegen(
        &self,
        dex: &DexFile,
        options: &BuildOptions,
        frontend: FrontendArtifact,
    ) -> Result<CodegenArtifact, BuildError> {
        let threads = options.compile_threads.max(1);
        // Both size passes consume method metadata: LTBO for separator
        // placement, merge for eligibility (indirect jumps, embedded
        // data, terminators). A merge-only build without metadata would
        // admit bodies whose hazards were simply never recorded.
        let collect_metadata =
            options.ltbo.is_some() || options.merge.is_some() || options.force_metadata;
        let codegen_opts = CodegenOptions { cto: options.cto, collect_metadata };
        let want_template = options.ltbo.is_some();
        let inputs = dex.methods();
        let FrontendArtifact { keys, cached, graphs, ref_env, .. } = frontend;
        let start = Instant::now();
        // Workers take ownership of their graph through a per-slot mutex
        // (locked exactly once, by the worker that drew the index).
        let cells: Vec<parking_lot::Mutex<Option<HGraph>>> =
            graphs.into_iter().map(parking_lot::Mutex::new).collect();
        let (outcomes, per_worker) = run_indexed(inputs.len(), threads, |i| {
            if let Some(entry) = &cached[i] {
                return MethodOutcome {
                    compiled: entry.compiled.clone(),
                    pass_stats: entry.pass_stats,
                    entry: Arc::clone(entry),
                    cache_hit: true,
                };
            }
            let compile_start = Instant::now();
            let (compiled, pass_stats) = match cells[i].lock().take() {
                None => (compile_native_stub(inputs[i].id, &codegen_opts), PassStats::default()),
                Some(mut graph) => {
                    let pass_stats = run_pipeline_with(&mut graph, &options.passes);
                    (compile_method(&graph, &codegen_opts), pass_stats)
                }
            };
            let template = want_template.then(|| build_template(&compiled, false));
            // The measured compile CPU rides into the store as the
            // entry's recompute cost: under memory pressure the
            // cost-aware eviction policy keeps the methods that were
            // expensive to produce.
            let cost_us = u64::try_from(compile_start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let entry = self.store.insert_with_cost(
                keys[i],
                CacheEntry { compiled: compiled.clone(), pass_stats, template, ref_env },
                cost_us,
            );
            MethodOutcome { compiled, pass_stats, entry, cache_hit: false }
        })
        .map_err(|p| BuildError::CompileWorker { method: p.index, message: p.message })?;
        let codegen_time = start.elapsed();

        // Merged in method-index order — deterministic across schedules.
        let mut passes = PassStats::default();
        for o in &outcomes {
            passes += o.pass_stats;
        }
        Ok(CodegenArtifact { outcomes, passes, codegen_time, per_worker })
    }

    /// Stage 3 — **Size passes**: runs the composable
    /// [`SizePass`](crate::sizepass::SizePass) pipeline the options ask
    /// for (merge, then LTBO) over the compiled methods, mutating them
    /// in place. Each pass replays its cache lane through the session's
    /// store — symbolization templates and group plans for outlining,
    /// bucket plans for merging — so only content that changed is
    /// re-analyzed. A no-op pass-through when both
    /// [`BuildOptions::merge`] and [`BuildOptions::ltbo`] are `None`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::OutlineWorker`] when one group's detection
    /// or materialization panics, and [`BuildError::Cache`] when a
    /// persisted plan is corrupt.
    pub fn outline(
        &self,
        options: &BuildOptions,
        codegen: CodegenArtifact,
    ) -> Result<SizeArtifact, BuildError> {
        self.size_stage(options, codegen, Vec::new())
    }

    /// [`outline`](Self::outline) taking pre-symbolized hit methods
    /// (from the warm-path overlap in [`build`](Self::build)).
    /// `prepared` slots that are `None` — and everything past a short
    /// vector's end — are symbolized inside the outline pass as on a
    /// cold build.
    fn size_stage(
        &self,
        options: &BuildOptions,
        codegen: CodegenArtifact,
        prepared: Vec<Option<MethodSymbols>>,
    ) -> Result<SizeArtifact, BuildError> {
        let CodegenArtifact { outcomes, .. } = codegen;
        let mut methods = Vec::with_capacity(outcomes.len());
        let mut entries = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            methods.push(o.compiled);
            entries.push(o.entry);
        }
        let mut artifact = SizeArtifact::new(methods);
        // The dictionary session pins one epoch's island for the whole
        // stage; the session is opened lazily so dict-off builds (and
        // sessions without a registry) pay nothing.
        let mut dict_session = match &self.dict {
            Some(registry) if options.dict && options.ltbo.is_some() => Some(registry.session()),
            _ => None,
        };
        let mut ctx = PassContext {
            store: Some(&self.store),
            entries,
            prepared,
            hot_methods: options.hot_methods.as_ref(),
            dict: dict_session.as_mut(),
        };
        for pass in size_passes(options) {
            pass.run(&mut artifact, &mut ctx)?;
        }
        drop(ctx);
        if let Some(session) = dict_session {
            artifact.dict = session.stats();
            artifact.dict_epoch = session.epoch();
            artifact.dict_island = Some(DictImage {
                base_address: DICT_BASE_ADDRESS,
                epoch: session.epoch(),
                words: session.layout().words().to_vec(),
            });
        }
        Ok(artifact)
    }

    /// Stage 4 — **Link**: binds call labels to addresses and encodes
    /// the final text segment.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Link`] when the linker rejects the input
    /// (e.g. an unencodable branch or a dangling call target).
    pub fn link(
        &self,
        options: &BuildOptions,
        artifact: SizeArtifact,
    ) -> Result<OatFile, BuildError> {
        let SizeArtifact { methods, outlined, merged, dict_island, .. } = artifact;
        calibro_oat::link_with_dict(
            LinkInput { methods, outlined, merged },
            options.base_address,
            dict_island.as_ref(),
        )
        .map_err(BuildError::Link)
    }
}

/// The frontend stage's output: per-method cache keys, probe results,
/// and the HGraphs of every method that must be (re)compiled.
pub struct FrontendArtifact {
    /// Content address of each method, in method-index order.
    pub keys: Vec<CacheKey>,
    /// Store probe result per method (`Some` = warm hit).
    pub cached: Vec<Option<Arc<CacheEntry>>>,
    /// HGraph per method; `None` for native methods and warm hits.
    pub graphs: Vec<Option<HGraph>>,
    /// This build's [`reference_env`] fingerprint — recorded in every
    /// entry codegen stores, compared against entries on probe.
    pub ref_env: u64,
    /// Time verifying the input dex.
    pub verify_time: Duration,
    /// Time fingerprinting, hashing methods, and probing the store.
    pub key_time: Duration,
    /// Time building HGraphs.
    pub graph_time: Duration,
    /// Time in whole-program inlining.
    pub inline_time: Duration,
    /// Per-worker load of the graph-building fan.
    pub graph_loads: Vec<WorkerLoad>,
}

impl FrontendArtifact {
    /// Number of methods satisfied from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cached.iter().filter(|c| c.is_some()).count()
    }

    /// A digest of the artifact: the ordered method keys. Two frontends
    /// with equal digests will drive identical codegen stages.
    #[must_use]
    pub fn digest(&self) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_usize(self.keys.len());
        for k in &self.keys {
            h.write_u64(k.hi);
            h.write_u64(k.lo);
        }
        h.finish()
    }
}

/// One method's compilation outcome within a [`CodegenArtifact`].
pub struct MethodOutcome {
    /// The compiled method (owned; LTBO mutates it downstream).
    pub compiled: CompiledMethod,
    /// Pass-pipeline counters (replayed from the entry on a hit, so
    /// warm observability matches cold).
    pub pass_stats: PassStats,
    /// The store entry backing this method — source of the cached LTBO
    /// symbolization template.
    pub entry: Arc<CacheEntry>,
    /// Whether the method was replayed from the cache.
    pub cache_hit: bool,
}

/// The codegen stage's output: every compiled method plus aggregate
/// pass counters and worker loads.
pub struct CodegenArtifact {
    /// Per-method outcomes, in method-index order.
    pub outcomes: Vec<MethodOutcome>,
    /// Pass counters summed in method-index order.
    pub passes: PassStats,
    /// Wall time of the stage.
    pub codegen_time: Duration,
    /// Per-worker load, in worker order.
    pub per_worker: Vec<WorkerLoad>,
}

impl CodegenArtifact {
    /// A digest of every compiled method's content (code, pool,
    /// relocations are implied by code + key determinism; the code words
    /// alone pin the observable output).
    #[must_use]
    pub fn digest(&self) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_usize(self.outcomes.len());
        for o in &self.outcomes {
            hash_compiled(&o.compiled, &mut h);
        }
        h.finish()
    }
}

/// A contained worker panic from [`run_indexed`]: the lowest panicking
/// index and its stringified payload. Callers wrap it in the
/// appropriate typed [`BuildError`] variant.
#[derive(Debug)]
pub(crate) struct WorkerPanic {
    pub(crate) index: usize,
    pub(crate) message: String,
}

/// Stringifies a panic payload (`&str` and `String` payloads verbatim,
/// anything else a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f(0..count)` across up to `threads` workers, returning results
/// in index order plus one [`WorkerLoad`] per worker.
///
/// Workers draw indices from a shared atomic cursor (the same
/// work-stealing shape as `calibro_suffix::detect_parallel`) and write
/// each result into its index's dedicated slot, so the output order —
/// and therefore everything derived from it — is independent of the
/// schedule. With `threads <= 1` (or nothing to do) the closure runs on
/// the calling thread with no synchronization at all. The requested
/// fan-out is clamped to [`available_threads`] — the slot-per-index
/// output makes results identical at any worker count, so spawning more
/// CPU-bound workers than cores buys nothing but scheduler churn.
///
/// # Errors
///
/// A panic in `f` is caught per item and returned as [`WorkerPanic`]
/// instead of unwinding (single-threaded) or aborting the process when
/// it crosses a pool-thread boundary (parallel). Remaining work stops
/// at the next index draw; when several items panic before the pool
/// drains, the lowest index is reported.
/// Number of hardware threads the host actually exposes, cached after
/// the first query (the syscall behind `available_parallelism` is not
/// free on the warm path). Falls back to 1 when the OS cannot say.
pub(crate) fn available_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

pub(crate) fn run_indexed<T, F>(
    count: usize,
    threads: usize,
    f: F,
) -> Result<(Vec<T>, Vec<WorkerLoad>), WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let threads = threads.min(available_threads());
    if threads <= 1 || count <= 1 {
        let start = Instant::now();
        let mut out: Vec<T> = Vec::with_capacity(count);
        for i in 0..count {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(WorkerPanic { index: i, message: panic_message(payload) })
                }
            }
        }
        return Ok((out, vec![WorkerLoad { items: count, busy: start.elapsed() }]));
    }
    let workers = threads.min(count);
    let slots: Vec<parking_lot::Mutex<Option<T>>> =
        (0..count).map(|_| parking_lot::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = std::sync::atomic::AtomicBool::new(false);
    let panics: parking_lot::Mutex<Vec<WorkerPanic>> = parking_lot::Mutex::new(Vec::new());
    let loads = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let start = Instant::now();
                    let mut items = 0;
                    loop {
                        if poisoned.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(v) => {
                                *slots[i].lock() = Some(v);
                                items += 1;
                            }
                            Err(payload) => {
                                panics.lock().push(WorkerPanic {
                                    index: i,
                                    message: panic_message(payload),
                                });
                                poisoned.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    WorkerLoad { items, busy: start.elapsed() }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker closures catch their own panics"))
            .collect::<Vec<WorkerLoad>>()
    })
    .expect("worker pool itself does not panic");
    let mut panics = panics.into_inner();
    if !panics.is_empty() {
        panics.sort_by_key(|p| p.index);
        return Err(panics.swap_remove(0));
    }
    let out = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index slot is filled"))
        .collect();
    Ok((out, loads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_index_order() {
        for threads in [1, 2, 8, 64] {
            let (out, loads) = run_indexed(100, threads, |i| i * 3).unwrap();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(loads.iter().map(|w| w.items).sum::<usize>(), 100);
            assert!(loads.len() <= threads.max(1));
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_oversubscribed() {
        let (out, loads) = run_indexed(0, 8, |i| i).unwrap();
        assert!(out.is_empty());
        assert_eq!(loads.iter().map(|w| w.items).sum::<usize>(), 0);
        // More threads than items: never spawns more workers than items.
        let (out, loads) = run_indexed(3, 16, |i| i + 1).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert!(loads.len() <= 3);
    }

    #[test]
    fn run_indexed_contains_worker_panics() {
        // The panic must not cross the pool boundary (which would abort
        // the process) — it comes back as a typed WorkerPanic, for both
        // the sequential and the parallel path.
        for threads in [1, 4] {
            let err = run_indexed(8, threads, |i| {
                assert!(i != 5, "worker fault at {i}");
                i
            })
            .expect_err("armed fault must surface");
            assert_eq!(err.index, 5);
            assert!(err.message.contains("worker fault at 5"), "message: {}", err.message);
        }
    }
}
