//! The DEX-like bytecode instruction set.
//!
//! A register machine modeled on the Dalvik executable format: virtual
//! registers, instance/static field accesses, invoke instructions that
//! leave their result in an optional destination register, and structured
//! branch targets given as instruction indices.
//!
//! The set is chosen so that compilation exercises everything Calibro
//! needs: `Invoke*` lowers to the ART Java-call pattern (Figure 4a),
//! `NewInstance`/`Div`/`Throw` lower to runtime entrypoint calls and slow
//! paths (Figure 4b), non-leaf methods get the stack-overflow check
//! (Figure 4c), and `Switch` lowers to an indirect jump that flags the
//! method as unoutlinable (§3.2).

use crate::ids::{ClassId, FieldId, MethodId, StaticId, VReg};

/// Comparison kind for two-register and register-vs-zero branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Signed greater than.
    Gt,
    /// Signed less or equal.
    Le,
}

/// Binary arithmetic/logical operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (throws on division by zero — has a slow path).
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount masked to 5 bits).
    Shl,
    /// Logical shift right (amount masked to 5 bits).
    Shr,
}

/// The kind of an invoke instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvokeKind {
    /// Virtual dispatch through the receiver's `ArtMethod`.
    Virtual,
    /// Static dispatch (no receiver).
    Static,
}

/// One DEX-like bytecode instruction.
///
/// Branch targets are indices into the owning method's instruction list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant fields are self-describing operands
pub enum DexInsn {
    /// No operation.
    Nop,
    /// Load a constant: `dst = value`.
    Const { dst: VReg, value: i32 },
    /// Register copy: `dst = src`.
    Move { dst: VReg, src: VReg },
    /// Binary operation on registers: `dst = a <op> b`.
    Bin { op: BinOp, dst: VReg, a: VReg, b: VReg },
    /// Binary operation with a literal: `dst = a <op> lit`.
    BinLit { op: BinOp, dst: VReg, a: VReg, lit: i16 },
    /// Instance field load: `dst = obj.field` (null check has a slow path).
    IGet { dst: VReg, obj: VReg, field: FieldId },
    /// Instance field store: `obj.field = src`.
    IPut { src: VReg, obj: VReg, field: FieldId },
    /// Static field load: `dst = statics[slot]`.
    SGet { dst: VReg, slot: StaticId },
    /// Static field store: `statics[slot] = src`.
    SPut { src: VReg, slot: StaticId },
    /// Allocate an instance: `dst = new class` (runtime entrypoint call).
    NewInstance { dst: VReg, class: ClassId },
    /// Call a method; `args[0]` is the receiver for virtual calls.
    Invoke { kind: InvokeKind, method: MethodId, args: Vec<VReg>, dst: Option<VReg> },
    /// Call a Java native (JNI) method — the callee is outside the OAT.
    InvokeNative { method: MethodId, args: Vec<VReg>, dst: Option<VReg> },
    /// Conditional branch comparing two registers.
    If { cmp: Cmp, a: VReg, b: VReg, target: usize },
    /// Conditional branch comparing a register with zero.
    IfZ { cmp: Cmp, a: VReg, target: usize },
    /// Unconditional branch.
    Goto { target: usize },
    /// Packed switch on `src`: `targets[src - first_key]`, falling through
    /// when out of range. Lowers to an indirect jump table.
    Switch { src: VReg, first_key: i32, targets: Vec<usize> },
    /// Return a value.
    Return { src: VReg },
    /// Return without a value.
    ReturnVoid,
    /// Throw an exception carried in a register (runtime call, no return).
    Throw { src: VReg },
}

impl DexInsn {
    /// Returns `true` if the instruction ends a basic block.
    #[must_use]
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            DexInsn::If { .. }
                | DexInsn::IfZ { .. }
                | DexInsn::Goto { .. }
                | DexInsn::Switch { .. }
                | DexInsn::Return { .. }
                | DexInsn::ReturnVoid
                | DexInsn::Throw { .. }
        )
    }

    /// Returns `true` if the instruction never falls through.
    #[must_use]
    pub fn is_unconditional_exit(&self) -> bool {
        matches!(
            self,
            DexInsn::Goto { .. }
                | DexInsn::Return { .. }
                | DexInsn::ReturnVoid
                | DexInsn::Throw { .. }
        )
    }

    /// Explicit branch targets of this instruction (fall-through excluded).
    #[must_use]
    pub fn branch_targets(&self) -> Vec<usize> {
        match self {
            DexInsn::If { target, .. } | DexInsn::IfZ { target, .. } | DexInsn::Goto { target } => {
                vec![*target]
            }
            DexInsn::Switch { targets, .. } => targets.clone(),
            _ => Vec::new(),
        }
    }

    /// All registers read by this instruction.
    #[must_use]
    pub fn reads(&self) -> Vec<VReg> {
        match self {
            DexInsn::Move { src, .. } => vec![*src],
            DexInsn::Bin { a, b, .. } => vec![*a, *b],
            DexInsn::BinLit { a, .. } => vec![*a],
            DexInsn::IGet { obj, .. } => vec![*obj],
            DexInsn::IPut { src, obj, .. } => vec![*src, *obj],
            DexInsn::SPut { src, .. } => vec![*src],
            DexInsn::Invoke { args, .. } | DexInsn::InvokeNative { args, .. } => args.clone(),
            DexInsn::If { a, b, .. } => vec![*a, *b],
            DexInsn::IfZ { a, .. } => vec![*a],
            DexInsn::Switch { src, .. } => vec![*src],
            DexInsn::Return { src } | DexInsn::Throw { src } => vec![*src],
            _ => Vec::new(),
        }
    }

    /// The register written by this instruction, if any.
    #[must_use]
    pub fn writes(&self) -> Option<VReg> {
        match self {
            DexInsn::Const { dst, .. }
            | DexInsn::Move { dst, .. }
            | DexInsn::Bin { dst, .. }
            | DexInsn::BinLit { dst, .. }
            | DexInsn::IGet { dst, .. }
            | DexInsn::SGet { dst, .. }
            | DexInsn::NewInstance { dst, .. } => Some(*dst),
            DexInsn::Invoke { dst, .. } | DexInsn::InvokeNative { dst, .. } => *dst,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_end_classification() {
        assert!(DexInsn::Goto { target: 0 }.is_block_end());
        assert!(DexInsn::ReturnVoid.is_block_end());
        assert!(DexInsn::Switch { src: VReg(0), first_key: 0, targets: vec![1] }.is_block_end());
        assert!(!DexInsn::Nop.is_block_end());
        assert!(!DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: MethodId(0),
            args: vec![],
            dst: None
        }
        .is_block_end());
    }

    #[test]
    fn fallthrough_classification() {
        assert!(DexInsn::Goto { target: 3 }.is_unconditional_exit());
        assert!(!DexInsn::If { cmp: Cmp::Eq, a: VReg(0), b: VReg(1), target: 3 }
            .is_unconditional_exit());
    }

    #[test]
    fn dataflow_queries() {
        let insn = DexInsn::Bin { op: BinOp::Add, dst: VReg(2), a: VReg(0), b: VReg(1) };
        assert_eq!(insn.reads(), vec![VReg(0), VReg(1)]);
        assert_eq!(insn.writes(), Some(VReg(2)));
        let call = DexInsn::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodId(4),
            args: vec![VReg(3), VReg(5)],
            dst: Some(VReg(0)),
        };
        assert_eq!(call.reads(), vec![VReg(3), VReg(5)]);
        assert_eq!(call.writes(), Some(VReg(0)));
    }

    #[test]
    fn branch_targets() {
        let sw = DexInsn::Switch { src: VReg(1), first_key: 10, targets: vec![4, 9, 2] };
        assert_eq!(sw.branch_targets(), vec![4, 9, 2]);
        assert!(DexInsn::ReturnVoid.branch_targets().is_empty());
    }
}
