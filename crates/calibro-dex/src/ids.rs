//! Typed identifiers for the DEX-like container.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Index of a method in the [`DexFile`](crate::DexFile) method table.
    MethodId,
    "m"
);
id_type!(
    /// Index of a class in the [`DexFile`](crate::DexFile) class table.
    ClassId,
    "c"
);
id_type!(
    /// Index of an instance field; the runtime lays fields out at
    /// `8 * index` bytes past the object header.
    FieldId,
    "f"
);
id_type!(
    /// Index of a static field slot in the global statics area.
    StaticId,
    "s"
);

/// A virtual register of the DEX register machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u16);

impl VReg {
    /// The raw register number.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(MethodId(3).to_string(), "m3");
        assert_eq!(ClassId(0).to_string(), "c0");
        assert_eq!(FieldId(7).to_string(), "f7");
        assert_eq!(VReg(12).to_string(), "v12");
    }

    #[test]
    fn id_roundtrip() {
        let id = MethodId::from(9);
        assert_eq!(id.index(), 9);
    }
}
