//! A bytecode verifier for the DEX-like container.
//!
//! Mirrors the subset of the Dalvik verifier the pipeline relies on:
//! register bounds, branch-target validity, method/class/field reference
//! validity, and termination (every path ends in a return or throw).

use core::fmt;

use crate::file::DexFile;
use crate::ids::MethodId;
use crate::insn::DexInsn;
use crate::method::Method;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields name the offending method/insn
pub enum VerifyError {
    /// A register operand is out of the method's register range.
    RegisterOutOfRange { method: MethodId, insn: usize, reg: u16, num_regs: u16 },
    /// A branch target is not a valid instruction index.
    BadBranchTarget { method: MethodId, insn: usize, target: usize },
    /// A referenced method does not exist.
    BadMethodRef { method: MethodId, insn: usize },
    /// A referenced class does not exist.
    BadClassRef { method: MethodId, insn: usize },
    /// A referenced instance field is outside its class's field count.
    BadFieldRef { method: MethodId, insn: usize },
    /// A referenced static slot is outside the reserved statics area.
    BadStaticRef { method: MethodId, insn: usize },
    /// Execution can fall off the end of the method.
    FallsOffEnd { method: MethodId },
    /// A non-native method has no instructions.
    EmptyBody { method: MethodId },
    /// A native method carries bytecode.
    NativeWithBody { method: MethodId },
    /// A switch with no targets.
    EmptySwitch { method: MethodId, insn: usize },
    /// An invoke whose argument count exceeds the ABI limit (8).
    TooManyArgs { method: MethodId, insn: usize, count: usize },
    /// A callee is marked native but was called with `Invoke`, or vice
    /// versa.
    WrongInvokeKind { method: MethodId, insn: usize },
    /// A register is read on some path before any assignment reaches it.
    /// Dalvik rejects these outright; allowing them would make observable
    /// behaviour depend on stale register/stack contents, which differ
    /// between build configurations.
    UninitializedRead { method: MethodId, insn: usize, reg: u16 },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::RegisterOutOfRange { method, insn, reg, num_regs } => {
                write!(f, "{method}@{insn}: register v{reg} out of range (method has {num_regs})")
            }
            VerifyError::BadBranchTarget { method, insn, target } => {
                write!(f, "{method}@{insn}: branch target {target} out of range")
            }
            VerifyError::BadMethodRef { method, insn } => {
                write!(f, "{method}@{insn}: reference to missing method")
            }
            VerifyError::BadClassRef { method, insn } => {
                write!(f, "{method}@{insn}: reference to missing class")
            }
            VerifyError::BadFieldRef { method, insn } => {
                write!(f, "{method}@{insn}: field index outside class layout")
            }
            VerifyError::BadStaticRef { method, insn } => {
                write!(f, "{method}@{insn}: static slot outside statics area")
            }
            VerifyError::FallsOffEnd { method } => {
                write!(f, "{method}: control flow can fall off the end")
            }
            VerifyError::EmptyBody { method } => write!(f, "{method}: non-native method is empty"),
            VerifyError::NativeWithBody { method } => {
                write!(f, "{method}: native method has bytecode")
            }
            VerifyError::EmptySwitch { method, insn } => {
                write!(f, "{method}@{insn}: switch with no targets")
            }
            VerifyError::TooManyArgs { method, insn, count } => {
                write!(f, "{method}@{insn}: {count} arguments exceed the ABI limit of 8")
            }
            VerifyError::WrongInvokeKind { method, insn } => {
                write!(f, "{method}@{insn}: invoke kind does not match callee nativeness")
            }
            VerifyError::UninitializedRead { method, insn, reg } => {
                write!(f, "{method}@{insn}: register v{reg} read before definite assignment")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every method of `dex`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered, in method order.
pub fn verify(dex: &DexFile) -> Result<(), VerifyError> {
    for method in dex.methods() {
        verify_intrinsic(method)?;
        verify_references(dex, method)?;
    }
    Ok(())
}

/// The checks that read only the method's own content: body shape,
/// register bounds, branch targets, argument counts, termination, and
/// the definite-assignment dataflow.
///
/// These are exactly the checks an incremental build may skip for a
/// method replayed from the artifact cache: the cache key covers every
/// byte they read, so a hit proves they passed when the entry was
/// created. The contextual [`verify_references`] checks must still run
/// on every build.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_intrinsic(method: &Method) -> Result<(), VerifyError> {
    let id = method.id;
    if method.is_native {
        if !method.insns.is_empty() {
            return Err(VerifyError::NativeWithBody { method: id });
        }
        return Ok(());
    }
    if method.insns.is_empty() {
        return Err(VerifyError::EmptyBody { method: id });
    }
    let n = method.insns.len();
    for (idx, insn) in method.insns.iter().enumerate() {
        // Register bounds.
        let mut regs = insn.reads();
        regs.extend(insn.writes());
        for reg in regs {
            if reg.0 >= method.num_regs {
                return Err(VerifyError::RegisterOutOfRange {
                    method: id,
                    insn: idx,
                    reg: reg.0,
                    num_regs: method.num_regs,
                });
            }
        }
        // Branch targets.
        for target in insn.branch_targets() {
            if target >= n {
                return Err(VerifyError::BadBranchTarget { method: id, insn: idx, target });
            }
        }
        match insn {
            DexInsn::Invoke { args, .. } | DexInsn::InvokeNative { args, .. } if args.len() > 8 => {
                return Err(VerifyError::TooManyArgs { method: id, insn: idx, count: args.len() });
            }
            DexInsn::Switch { targets, .. } if targets.is_empty() => {
                return Err(VerifyError::EmptySwitch { method: id, insn: idx });
            }
            _ => {}
        }
    }
    // The last instruction must not fall through.
    if !method.insns[n - 1].is_unconditional_exit() {
        return Err(VerifyError::FallsOffEnd { method: id });
    }
    check_definite_assignment(method)
}

/// The contextual checks: every method, class, field, and static slot a
/// method references must exist in `dex`, and invoke kinds must match
/// the callee's nativeness. These depend on the rest of the program, so
/// they run on every build — cached or not.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_references(dex: &DexFile, method: &Method) -> Result<(), VerifyError> {
    let id = method.id;
    // Fields are class-relative; without static type info we bound-check
    // against the largest class layout.
    let max_fields = dex.classes().iter().map(|c| c.num_fields).max().unwrap_or(0);
    for (idx, insn) in method.insns.iter().enumerate() {
        match insn {
            DexInsn::Invoke { method: callee, .. } => {
                if callee.index() >= dex.methods().len() {
                    return Err(VerifyError::BadMethodRef { method: id, insn: idx });
                }
                if dex.method(*callee).is_native {
                    return Err(VerifyError::WrongInvokeKind { method: id, insn: idx });
                }
            }
            DexInsn::InvokeNative { method: callee, .. } => {
                if callee.index() >= dex.methods().len() {
                    return Err(VerifyError::BadMethodRef { method: id, insn: idx });
                }
                if !dex.method(*callee).is_native {
                    return Err(VerifyError::WrongInvokeKind { method: id, insn: idx });
                }
            }
            DexInsn::NewInstance { class, .. } if class.index() >= dex.classes().len() => {
                return Err(VerifyError::BadClassRef { method: id, insn: idx });
            }
            DexInsn::IGet { field, .. } | DexInsn::IPut { field, .. } if field.0 >= max_fields => {
                return Err(VerifyError::BadFieldRef { method: id, insn: idx });
            }
            DexInsn::SGet { slot, .. } | DexInsn::SPut { slot, .. }
                if slot.0 >= dex.num_statics() =>
            {
                return Err(VerifyError::BadStaticRef { method: id, insn: idx });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Forward may-be-uninitialized dataflow over the instruction CFG, as the
/// Dalvik verifier performs: at entry only the argument registers (the
/// *last* `num_args` slots) are assigned; states meet by intersection, and
/// every read must see a definitely-assigned register. Runs after the
/// bounds checks, so register indices are known to be in range.
fn check_definite_assignment(method: &Method) -> Result<(), VerifyError> {
    let n = method.insns.len();
    let num_regs = method.num_regs as usize;
    let words = num_regs.div_ceil(64).max(1);
    let mut entry = vec![0u64; words];
    for r in num_regs.saturating_sub(method.num_args as usize)..num_regs {
        entry[r / 64] |= 1 << (r % 64);
    }
    let mut states: Vec<Option<Vec<u64>>> = vec![None; n];
    states[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(idx) = work.pop() {
        let state = states[idx].clone().expect("worklist entries are reached");
        let insn = &method.insns[idx];
        for reg in insn.reads() {
            let r = reg.0 as usize;
            if state[r / 64] & (1 << (r % 64)) == 0 {
                return Err(VerifyError::UninitializedRead {
                    method: method.id,
                    insn: idx,
                    reg: reg.0,
                });
            }
        }
        let mut out = state;
        if let Some(dst) = insn.writes() {
            let r = dst.0 as usize;
            out[r / 64] |= 1 << (r % 64);
        }
        let mut succs = insn.branch_targets();
        if !insn.is_unconditional_exit() && idx + 1 < n {
            succs.push(idx + 1);
        }
        for s in succs {
            let changed = match &mut states[s] {
                Some(existing) => {
                    let mut shrank = false;
                    for (e, o) in existing.iter_mut().zip(&out) {
                        let met = *e & *o;
                        if met != *e {
                            *e = met;
                            shrank = true;
                        }
                    }
                    shrank
                }
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, StaticId, VReg};
    use crate::insn::{BinOp, InvokeKind};

    fn dex_with(insns: Vec<DexInsn>) -> DexFile {
        let mut dex = DexFile::new();
        let c = dex.add_class("Main", 4);
        dex.reserve_statics(2);
        dex.add_method(Method {
            id: MethodId(0),
            class: c,
            name: "m".into(),
            num_regs: 4,
            num_args: 1,
            insns,
            is_native: false,
        });
        dex
    }

    #[test]
    fn accepts_well_formed() {
        let dex = dex_with(vec![
            DexInsn::Const { dst: VReg(0), value: 5 },
            DexInsn::Bin { op: BinOp::Add, dst: VReg(1), a: VReg(0), b: VReg(3) },
            DexInsn::Return { src: VReg(1) },
        ]);
        assert_eq!(verify(&dex), Ok(()));
    }

    #[test]
    fn rejects_register_overflow() {
        let dex = dex_with(vec![DexInsn::Const { dst: VReg(9), value: 5 }, DexInsn::ReturnVoid]);
        assert!(matches!(verify(&dex), Err(VerifyError::RegisterOutOfRange { reg: 9, .. })));
    }

    #[test]
    fn rejects_bad_branch() {
        let dex = dex_with(vec![DexInsn::Goto { target: 42 }]);
        assert!(matches!(verify(&dex), Err(VerifyError::BadBranchTarget { target: 42, .. })));
    }

    #[test]
    fn rejects_fallthrough_end() {
        let dex = dex_with(vec![DexInsn::Const { dst: VReg(0), value: 1 }]);
        assert!(matches!(verify(&dex), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn rejects_missing_method_ref() {
        let dex = dex_with(vec![
            DexInsn::Invoke {
                kind: InvokeKind::Static,
                method: MethodId(77),
                args: vec![],
                dst: None,
            },
            DexInsn::ReturnVoid,
        ]);
        assert!(matches!(verify(&dex), Err(VerifyError::BadMethodRef { .. })));
    }

    #[test]
    fn rejects_bad_static_slot() {
        let dex =
            dex_with(vec![DexInsn::SGet { dst: VReg(0), slot: StaticId(5) }, DexInsn::ReturnVoid]);
        assert!(matches!(verify(&dex), Err(VerifyError::BadStaticRef { .. })));
    }

    #[test]
    fn rejects_invoke_kind_mismatch() {
        let mut dex = DexFile::new();
        let c = dex.add_class("Main", 0);
        let native = dex.add_method(Method {
            id: MethodId(0),
            class: c,
            name: "nat".into(),
            num_regs: 0,
            num_args: 0,
            insns: vec![],
            is_native: true,
        });
        dex.add_method(Method {
            id: MethodId(0),
            class: c,
            name: "caller".into(),
            num_regs: 1,
            num_args: 0,
            insns: vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                    dst: None,
                },
                DexInsn::ReturnVoid,
            ],
            is_native: false,
        });
        assert!(matches!(verify(&dex), Err(VerifyError::WrongInvokeKind { .. })));
    }

    #[test]
    fn rejects_bad_class_ref() {
        let dex = dex_with(vec![
            DexInsn::NewInstance { dst: VReg(0), class: ClassId(9) },
            DexInsn::ReturnVoid,
        ]);
        assert!(matches!(verify(&dex), Err(VerifyError::BadClassRef { .. })));
    }

    #[test]
    fn rejects_read_before_assignment() {
        // v1 is never written before the read (only v3 is an argument).
        let dex = dex_with(vec![
            DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(3) },
            DexInsn::Return { src: VReg(0) },
        ]);
        assert!(matches!(
            verify(&dex),
            Err(VerifyError::UninitializedRead { insn: 0, reg: 1, .. })
        ));
    }

    #[test]
    fn rejects_read_assigned_on_only_one_path() {
        // v0 is assigned only when the branch is taken; the meet at the
        // join point must drop it.
        let dex = dex_with(vec![
            DexInsn::IfZ { cmp: crate::insn::Cmp::Eq, a: VReg(3), target: 2 },
            DexInsn::Const { dst: VReg(0), value: 1 },
            DexInsn::Return { src: VReg(0) },
        ]);
        assert!(matches!(
            verify(&dex),
            Err(VerifyError::UninitializedRead { insn: 2, reg: 0, .. })
        ));
    }

    #[test]
    fn accepts_read_assigned_on_all_paths() {
        let dex = dex_with(vec![
            DexInsn::IfZ { cmp: crate::insn::Cmp::Eq, a: VReg(3), target: 3 },
            DexInsn::Const { dst: VReg(0), value: 1 },
            DexInsn::Goto { target: 4 },
            DexInsn::Const { dst: VReg(0), value: 2 },
            DexInsn::Return { src: VReg(0) },
        ]);
        assert_eq!(verify(&dex), Ok(()));
    }

    #[test]
    fn loop_carried_assignment_reaches_the_back_edge() {
        // v0 is assigned before the loop; the back edge must not lose it.
        let dex = dex_with(vec![
            DexInsn::Const { dst: VReg(0), value: 10 },
            DexInsn::BinLit { op: BinOp::Sub, dst: VReg(0), a: VReg(0), lit: 1 },
            DexInsn::IfZ { cmp: crate::insn::Cmp::Gt, a: VReg(0), target: 1 },
            DexInsn::Return { src: VReg(0) },
        ]);
        assert_eq!(verify(&dex), Ok(()));
    }

    #[test]
    fn native_methods_must_be_empty() {
        let mut dex = DexFile::new();
        let c = dex.add_class("Main", 0);
        dex.add_method(Method {
            id: MethodId(0),
            class: c,
            name: "nat".into(),
            num_regs: 1,
            num_args: 0,
            insns: vec![DexInsn::ReturnVoid],
            is_native: true,
        });
        assert!(matches!(verify(&dex), Err(VerifyError::NativeWithBody { .. })));
    }
}
