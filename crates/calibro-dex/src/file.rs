//! The DEX-like container: the compilation unit `dex2oat` consumes.

use crate::ids::{ClassId, MethodId};
use crate::method::{Class, Method};

/// A container of classes and methods — the analogue of one `.dex` file
/// inside an APK.
#[derive(Clone, Debug, Default)]
pub struct DexFile {
    classes: Vec<Class>,
    methods: Vec<Method>,
    /// Number of static field slots used by `SGet`/`SPut`.
    num_statics: u32,
}

impl DexFile {
    /// Creates an empty container.
    #[must_use]
    pub fn new() -> DexFile {
        DexFile::default()
    }

    /// Adds a class and returns its id.
    pub fn add_class(&mut self, name: impl Into<String>, num_fields: u32) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class { id, name: name.into(), num_fields, methods: Vec::new() });
        id
    }

    /// Adds a method and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `method.class` does not exist or if the embedded
    /// `method.id` does not match its table position.
    pub fn add_method(&mut self, mut method: Method) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        method.id = id;
        let class = method.class;
        self.classes
            .get_mut(class.index())
            .unwrap_or_else(|| panic!("method references missing class {class}"))
            .methods
            .push(id);
        self.methods.push(method);
        id
    }

    /// Reserves static field slots and returns the base slot index.
    pub fn reserve_statics(&mut self, count: u32) -> u32 {
        let base = self.num_statics;
        self.num_statics += count;
        base
    }

    /// Number of static slots in use.
    #[must_use]
    pub fn num_statics(&self) -> u32 {
        self.num_statics
    }

    /// Looks up a method.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Looks up a class.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a method mutably (incremental-build harnesses edit
    /// method bodies in place to model an app update).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// All methods in id order.
    #[must_use]
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// All classes in id order.
    #[must_use]
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// Total bytecode instruction count across all methods.
    #[must_use]
    pub fn total_insns(&self) -> usize {
        self.methods.iter().map(|m| m.insns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::DexInsn;

    #[test]
    fn ids_are_stable_table_positions() {
        let mut dex = DexFile::new();
        let c = dex.add_class("Main", 2);
        let m = dex.add_method(Method {
            id: MethodId(999), // overwritten on insert
            class: c,
            name: "run".into(),
            num_regs: 1,
            num_args: 0,
            insns: vec![DexInsn::ReturnVoid],
            is_native: false,
        });
        assert_eq!(m, MethodId(0));
        assert_eq!(dex.method(m).id, m);
        assert_eq!(dex.class(c).methods, vec![m]);
        assert_eq!(dex.total_insns(), 1);
    }

    #[test]
    fn statics_are_reserved_contiguously() {
        let mut dex = DexFile::new();
        assert_eq!(dex.reserve_statics(4), 0);
        assert_eq!(dex.reserve_statics(2), 4);
        assert_eq!(dex.num_statics(), 6);
    }

    #[test]
    #[should_panic(expected = "missing class")]
    fn method_requires_class() {
        let mut dex = DexFile::new();
        dex.add_method(Method {
            id: MethodId(0),
            class: ClassId(3),
            name: "x".into(),
            num_regs: 0,
            num_args: 0,
            insns: vec![],
            is_native: true,
        });
    }
}
