//! A fluent builder for method bodies with symbolic branch labels.

use crate::ids::{ClassId, MethodId, VReg};
use crate::insn::DexInsn;
use crate::method::Method;

/// A forward-referencing label used while building a method body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DexLabel(usize);

/// Builds a [`Method`] incrementally, resolving labels on `build`.
///
/// # Examples
///
/// ```
/// use calibro_dex::{BinOp, Cmp, DexInsn, MethodBuilder, VReg};
///
/// // fn abs(v1) { if v1 >= 0 return v1; return 0 - v1 }
/// let mut b = MethodBuilder::new("abs", 2, 1);
/// let non_negative = b.label();
/// b.push(DexInsn::Const { dst: VReg(0), value: 0 });
/// b.if_z(Cmp::Ge, VReg(1), non_negative);
/// b.push(DexInsn::Bin { op: BinOp::Sub, dst: VReg(0), a: VReg(0), b: VReg(1) });
/// b.push(DexInsn::Return { src: VReg(0) });
/// b.bind(non_negative);
/// b.push(DexInsn::Return { src: VReg(1) });
/// let method = b.build(calibro_dex::ClassId(0));
/// assert_eq!(method.insns.len(), 5);
/// ```
#[derive(Debug)]
pub struct MethodBuilder {
    name: String,
    num_regs: u16,
    num_args: u16,
    insns: Vec<DexInsn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, DexLabel)>,
}

impl MethodBuilder {
    /// Starts a method with `num_regs` registers, the last `num_args` of
    /// which receive the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `num_args > num_regs`.
    #[must_use]
    pub fn new(name: impl Into<String>, num_regs: u16, num_args: u16) -> MethodBuilder {
        assert!(num_args <= num_regs, "more arguments than registers");
        MethodBuilder {
            name: name.into(),
            num_regs,
            num_args,
            insns: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Creates a fresh label.
    pub fn label(&mut self) -> DexLabel {
        self.labels.push(None);
        DexLabel(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: DexLabel) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insns.len());
    }

    /// Appends an instruction. Branch instructions appended this way must
    /// carry resolved numeric targets; prefer the labeled helpers.
    pub fn push(&mut self, insn: DexInsn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Appends a two-register conditional branch to `label`.
    pub fn if_cmp(
        &mut self,
        cmp: crate::insn::Cmp,
        a: VReg,
        b: VReg,
        label: DexLabel,
    ) -> &mut Self {
        self.fixups.push((self.insns.len(), label));
        self.insns.push(DexInsn::If { cmp, a, b, target: usize::MAX });
        self
    }

    /// Appends a register-vs-zero conditional branch to `label`.
    pub fn if_z(&mut self, cmp: crate::insn::Cmp, a: VReg, label: DexLabel) -> &mut Self {
        self.fixups.push((self.insns.len(), label));
        self.insns.push(DexInsn::IfZ { cmp, a, target: usize::MAX });
        self
    }

    /// Appends an unconditional branch to `label`.
    pub fn goto(&mut self, label: DexLabel) -> &mut Self {
        self.fixups.push((self.insns.len(), label));
        self.insns.push(DexInsn::Goto { target: usize::MAX });
        self
    }

    /// Appends a switch whose arms branch to `labels`.
    pub fn switch(&mut self, src: VReg, first_key: i32, labels: &[DexLabel]) -> &mut Self {
        // Targets are patched individually; stash label ids in the target
        // vector and translate on build.
        let at = self.insns.len();
        for (i, l) in labels.iter().enumerate() {
            self.fixups.push((at | (i << 48) | (1 << 47), *l));
        }
        self.insns.push(DexInsn::Switch {
            src,
            first_key,
            targets: vec![usize::MAX; labels.len()],
        });
        self
    }

    /// Current instruction count (useful for assertions in tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if no instruction has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Resolves labels and produces the method. The method id is assigned
    /// by [`DexFile::add_method`](crate::DexFile::add_method).
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn build(mut self, class: ClassId) -> Method {
        for &(key, label) in &self.fixups {
            let target = self.labels[label.0].expect("unbound label in method body");
            if key & (1 << 47) != 0 {
                let at = key & ((1 << 47) - 1);
                let arm = key >> 48;
                match &mut self.insns[at] {
                    DexInsn::Switch { targets, .. } => targets[arm] = target,
                    other => panic!("switch fixup hit {other:?}"),
                }
            } else {
                match &mut self.insns[key] {
                    DexInsn::If { target: t, .. }
                    | DexInsn::IfZ { target: t, .. }
                    | DexInsn::Goto { target: t } => *t = target,
                    other => panic!("branch fixup hit {other:?}"),
                }
            }
        }
        Method {
            id: MethodId(u32::MAX),
            class,
            name: self.name,
            num_regs: self.num_regs,
            num_args: self.num_args,
            insns: self.insns,
            is_native: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Cmp;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = MethodBuilder::new("loop", 3, 1);
        let top = b.label();
        let out = b.label();
        b.push(DexInsn::Const { dst: VReg(0), value: 0 });
        b.bind(top);
        b.if_z(Cmp::Le, VReg(2), out);
        b.push(DexInsn::BinLit { op: crate::insn::BinOp::Add, dst: VReg(0), a: VReg(0), lit: 1 });
        b.push(DexInsn::BinLit { op: crate::insn::BinOp::Add, dst: VReg(2), a: VReg(2), lit: -1 });
        b.goto(top);
        b.bind(out);
        b.push(DexInsn::Return { src: VReg(0) });
        let m = b.build(ClassId(0));
        assert_eq!(m.insns[1], DexInsn::IfZ { cmp: Cmp::Le, a: VReg(2), target: 5 });
        assert_eq!(m.insns[4], DexInsn::Goto { target: 1 });
    }

    #[test]
    fn switch_arms_resolve() {
        let mut b = MethodBuilder::new("sw", 2, 1);
        let a0 = b.label();
        let a1 = b.label();
        let end = b.label();
        b.switch(VReg(1), 0, &[a0, a1]);
        b.bind(a0);
        b.push(DexInsn::Const { dst: VReg(0), value: 10 });
        b.goto(end);
        b.bind(a1);
        b.push(DexInsn::Const { dst: VReg(0), value: 20 });
        b.bind(end);
        b.push(DexInsn::Return { src: VReg(0) });
        let m = b.build(ClassId(0));
        assert_eq!(m.insns[0], DexInsn::Switch { src: VReg(1), first_key: 0, targets: vec![1, 3] });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = MethodBuilder::new("bad", 1, 0);
        let l = b.label();
        b.goto(l);
        let _ = b.build(ClassId(0));
    }

    #[test]
    #[should_panic(expected = "more arguments than registers")]
    fn arg_overflow_panics() {
        let _ = MethodBuilder::new("bad", 1, 2);
    }
}
