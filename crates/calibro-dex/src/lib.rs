//! # calibro-dex
//!
//! A compact DEX-like bytecode container: the input format of the
//! reproduction's `dex2oat` pipeline. Provides typed ids, a register-
//! machine instruction set, methods/classes/files, a verifier, and a
//! label-resolving method builder.
//!
//! The instruction set deliberately covers the features Calibro's
//! compilation hooks care about: virtual/static invokes (ART Java-call
//! pattern), allocation and division (runtime entrypoints + slow paths),
//! switches (indirect jump tables), and native methods (JNI flag).
//!
//! # Examples
//!
//! ```
//! use calibro_dex::{verify, DexFile, DexInsn, Method, MethodBuilder, MethodId, VReg};
//!
//! let mut dex = DexFile::new();
//! let class = dex.add_class("Main", 2);
//! let mut b = MethodBuilder::new("answer", 1, 0);
//! b.push(DexInsn::Const { dst: VReg(0), value: 42 });
//! b.push(DexInsn::Return { src: VReg(0) });
//! let id = dex.add_method(b.build(class));
//! assert_eq!(id, MethodId(0));
//! verify(&dex)?;
//! # Ok::<(), calibro_dex::VerifyError>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod file;
mod ids;
mod insn;
mod method;
mod verify;

pub use builder::{DexLabel, MethodBuilder};
pub use file::DexFile;
pub use ids::{ClassId, FieldId, MethodId, StaticId, VReg};
pub use insn::{BinOp, Cmp, DexInsn, InvokeKind};
pub use method::{Class, Method};
pub use verify::{verify, verify_intrinsic, verify_references, VerifyError};
