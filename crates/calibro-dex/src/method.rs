//! Methods and classes of the DEX-like container.

use crate::ids::{ClassId, MethodId, VReg};
use crate::insn::DexInsn;

/// A method body in the DEX-like bytecode.
#[derive(Clone, Debug)]
pub struct Method {
    /// The method's index in its [`DexFile`](crate::DexFile).
    pub id: MethodId,
    /// Owning class.
    pub class: ClassId,
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of virtual registers, arguments included.
    pub num_regs: u16,
    /// Number of arguments; they arrive in the *last* `num_args`
    /// registers, Dalvik-style.
    pub num_args: u16,
    /// Bytecode; empty for native methods.
    pub insns: Vec<DexInsn>,
    /// Java native (JNI) method: no bytecode, executed by the runtime's
    /// native bridge, and flagged unoutlinable by LTBO (§3.2).
    pub is_native: bool,
}

impl Method {
    /// Registers holding the arguments, in order.
    #[must_use]
    pub fn arg_regs(&self) -> Vec<VReg> {
        let first = self.num_regs - self.num_args;
        (first..self.num_regs).map(VReg).collect()
    }

    /// Returns `true` if the method calls anything (a *non-leaf* method in
    /// ART terms — these get the stack-overflow check of Figure 4c).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        !self.insns.iter().any(|i| {
            matches!(
                i,
                DexInsn::Invoke { .. } | DexInsn::InvokeNative { .. } | DexInsn::NewInstance { .. }
            )
        })
    }

    /// Returns `true` if the method contains a `switch` (which lowers to
    /// an indirect jump).
    #[must_use]
    pub fn has_switch(&self) -> bool {
        self.insns.iter().any(|i| matches!(i, DexInsn::Switch { .. }))
    }
}

/// A class: a named field count plus its method members.
#[derive(Clone, Debug)]
pub struct Class {
    /// The class's index in its [`DexFile`](crate::DexFile).
    pub id: ClassId,
    /// Human-readable name.
    pub name: String,
    /// Number of 8-byte instance field slots.
    pub num_fields: u32,
    /// Methods belonging to this class.
    pub methods: Vec<MethodId>,
}

impl Class {
    /// Object size in bytes: an 8-byte header plus the field slots.
    #[must_use]
    pub fn instance_size(&self) -> u64 {
        8 + u64::from(self.num_fields) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FieldId;
    use crate::insn::{BinOp, InvokeKind};

    fn method(insns: Vec<DexInsn>) -> Method {
        Method {
            id: MethodId(0),
            class: ClassId(0),
            name: "test".to_owned(),
            num_regs: 6,
            num_args: 2,
            insns,
            is_native: false,
        }
    }

    #[test]
    fn args_arrive_in_trailing_registers() {
        let m = method(vec![DexInsn::ReturnVoid]);
        assert_eq!(m.arg_regs(), vec![VReg(4), VReg(5)]);
    }

    #[test]
    fn leaf_detection() {
        let leaf = method(vec![
            DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(4), b: VReg(5) },
            DexInsn::Return { src: VReg(0) },
        ]);
        assert!(leaf.is_leaf());
        let caller = method(vec![
            DexInsn::Invoke {
                kind: InvokeKind::Static,
                method: MethodId(1),
                args: vec![],
                dst: None,
            },
            DexInsn::ReturnVoid,
        ]);
        assert!(!caller.is_leaf());
        let allocator = method(vec![
            DexInsn::NewInstance { dst: VReg(0), class: ClassId(0) },
            DexInsn::ReturnVoid,
        ]);
        assert!(!allocator.is_leaf(), "allocation calls the runtime");
    }

    #[test]
    fn switch_detection() {
        let m = method(vec![
            DexInsn::Switch { src: VReg(4), first_key: 0, targets: vec![1, 1] },
            DexInsn::ReturnVoid,
        ]);
        assert!(m.has_switch());
        let m = method(vec![DexInsn::IGet { dst: VReg(0), obj: VReg(4), field: FieldId(0) }]);
        assert!(!m.has_switch());
    }

    #[test]
    fn instance_size() {
        let class = Class { id: ClassId(0), name: "C".into(), num_fields: 3, methods: vec![] };
        assert_eq!(class.instance_size(), 32);
    }
}
