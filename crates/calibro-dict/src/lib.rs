//! # calibro-dict
//!
//! The cross-tenant shared-outline dictionary: a content-addressed
//! registry of outlined-function bodies that every tenant served by one
//! `calibrod` daemon can link against, so an app-independent pattern
//! (the paper's §3.1 observation, pushed through LTBO) is carried
//! *once per daemon* instead of once per app. This is ShareJIT's
//! cross-process code-cache sharing applied to outlined functions, with
//! the optimistic-commit/fall-back-private arbitration of the global
//! function merger (both PAPERS.md).
//!
//! Three pieces:
//!
//! - [`canonical_key`]/[`canonicalize`]: register-normalized 128-bit
//!   content addressing of bodies (module [`canon`]).
//! - [`DictRegistry`]/[`DictSession`]: the daemon-wide registry of
//!   published bodies, sealed into immutable epoch islands, with
//!   per-candidate routing and [`DictStats`] (module [`registry`]).
//! - Persistence and the fleet tier live in `calibro-cache`'s
//!   dictionary lane ([`DictEntry`](calibro_cache::DictEntry), `.cald`
//!   frames, `PeerSource::fetch_dict`); this crate consumes them
//!   through [`ArtifactStore`](calibro_cache::ArtifactStore).

#![warn(missing_docs)]

mod canon;
mod registry;

pub use canon::{canonical_key, canonicalize};
pub use registry::{DictConfig, DictRegistry, DictSession, DictStats, EpochLayout};
