//! Canonicalization of outlined-function bodies.
//!
//! Two tenants rarely hand the dictionary byte-identical bodies: the
//! register allocator numbers temporaries in whatever order the
//! method's dataflow dictated, so the "same" outlined computation
//! arrives as `add x2, x2, x5` from one app and `add x1, x1, x3` from
//! another. The dictionary key must identify these — that is the whole
//! cross-tenant bet — without ever identifying two bodies that compute
//! different things.
//!
//! The canonical form renames every *renameable* register to the order
//! of its first appearance in the operand stream. Registers with a
//! pinned architectural or runtime meaning are never renamed — `x16`/
//! `x17` (IPC scratch), `x19` (the ART thread register), `x29` (frame
//! pointer), `x30` (link register) and encoding 31 (`zr`/`sp`) — so a
//! body reading the thread register can only match another body reading
//! the thread register. Everything else about the instruction (opcode,
//! width, immediates, shift amounts, branch shape, pair mode) passes
//! through untouched: any semantic difference survives into the
//! canonical encoding and therefore into the key.
//!
//! Separator normalization happens one layer up: dictionary bodies are
//! *decoded instruction sequences*, so the synthetic separator symbols
//! of the suffix-tree stream (normalized by
//! [`sequence_content_key`](calibro_cache::sequence_content_key)) never
//! reach this module.
//!
//! The key is the 128-bit [`StableHasher`] digest of the canonical
//! sequence's machine encoding, salted with the cache
//! [`SCHEMA_VERSION`](calibro_cache::SCHEMA_VERSION) so dictionary
//! artifacts never cross a schema change. A pure function of the body's
//! content, it is trivially invariant under build-thread count and
//! candidate discovery order.

use calibro_cache::{CacheKey, StableHasher};
use calibro_isa::{Insn, Reg};

/// Hash-domain tag for dictionary keys, distinct from every other
/// key-construction tag in the pipeline.
const DICT_KEY_TAG: u8 = 0x45;

/// Registers that are never renamed: `x16`/`x17` (intra-procedure-call
/// scratch), `x19` (ART thread register), `x29` (frame pointer), `x30`
/// (link register) and encoding 31 (`zr`/`sp`).
const FIXED: [bool; 32] = {
    let mut fixed = [false; 32];
    fixed[16] = true;
    fixed[17] = true;
    fixed[19] = true;
    fixed[29] = true;
    fixed[30] = true;
    fixed[31] = true;
    fixed
};

/// The renameable encodings in canonical assignment order: the n-th
/// distinct renameable register a body mentions becomes `POOL[n]`.
const POOL: [u8; 26] =
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 18, 20, 21, 22, 23, 24, 25, 26, 27, 28];

/// First-appearance register renamer for one body.
struct Mapper {
    /// concrete encoding -> canonical encoding, once assigned.
    map: [Option<u8>; 32],
    /// Concrete renameable registers in first-use order (the calling
    /// convention the published body records).
    order: Vec<u8>,
}

impl Mapper {
    fn new() -> Mapper {
        Mapper { map: [None; 32], order: Vec::new() }
    }

    fn map(&mut self, r: Reg) -> Reg {
        let idx = r.index() as usize;
        if FIXED[idx] {
            return r;
        }
        if let Some(canonical) = self.map[idx] {
            return Reg::new(canonical);
        }
        let canonical = POOL[self.order.len()];
        self.map[idx] = Some(canonical);
        self.order.push(r.index());
        Reg::new(canonical)
    }
}

/// Rewrites one instruction into canonical register space. The match is
/// exhaustive on purpose: a new [`Insn`] variant must decide its
/// renaming here before it can flow into the dictionary.
fn remap(insn: Insn, m: &mut Mapper) -> Insn {
    match insn {
        Insn::B { offset } => Insn::B { offset },
        Insn::Bl { offset } => Insn::Bl { offset },
        Insn::BCond { cond, offset } => Insn::BCond { cond, offset },
        Insn::Cbz { wide, rt, offset } => Insn::Cbz { wide, rt: m.map(rt), offset },
        Insn::Cbnz { wide, rt, offset } => Insn::Cbnz { wide, rt: m.map(rt), offset },
        Insn::Tbz { rt, bit, offset } => Insn::Tbz { rt: m.map(rt), bit, offset },
        Insn::Tbnz { rt, bit, offset } => Insn::Tbnz { rt: m.map(rt), bit, offset },
        Insn::Adr { rd, offset } => Insn::Adr { rd: m.map(rd), offset },
        Insn::Adrp { rd, offset } => Insn::Adrp { rd: m.map(rd), offset },
        Insn::LdrLit { wide, rt, offset } => Insn::LdrLit { wide, rt: m.map(rt), offset },
        Insn::Br { rn } => Insn::Br { rn: m.map(rn) },
        Insn::Blr { rn } => Insn::Blr { rn: m.map(rn) },
        Insn::Ret { rn } => Insn::Ret { rn: m.map(rn) },
        Insn::Movz { wide, rd, imm16, hw } => Insn::Movz { wide, rd: m.map(rd), imm16, hw },
        Insn::Movn { wide, rd, imm16, hw } => Insn::Movn { wide, rd: m.map(rd), imm16, hw },
        Insn::Movk { wide, rd, imm16, hw } => Insn::Movk { wide, rd: m.map(rd), imm16, hw },
        Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 } => {
            Insn::AddImm { wide, set_flags, rd: m.map(rd), rn: m.map(rn), imm12, shift12 }
        }
        Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 } => {
            Insn::SubImm { wide, set_flags, rd: m.map(rd), rn: m.map(rn), imm12, shift12 }
        }
        Insn::AddReg { wide, set_flags, rd, rn, rm, shift } => {
            Insn::AddReg { wide, set_flags, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), shift }
        }
        Insn::SubReg { wide, set_flags, rd, rn, rm, shift } => {
            Insn::SubReg { wide, set_flags, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), shift }
        }
        Insn::AndReg { wide, set_flags, rd, rn, rm, shift } => {
            Insn::AndReg { wide, set_flags, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), shift }
        }
        Insn::OrrReg { wide, rd, rn, rm, shift } => {
            Insn::OrrReg { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), shift }
        }
        Insn::EorReg { wide, rd, rn, rm, shift } => {
            Insn::EorReg { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), shift }
        }
        Insn::Sdiv { wide, rd, rn, rm } => {
            Insn::Sdiv { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm) }
        }
        Insn::Lslv { wide, rd, rn, rm } => {
            Insn::Lslv { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm) }
        }
        Insn::Asrv { wide, rd, rn, rm } => {
            Insn::Asrv { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm) }
        }
        Insn::Madd { wide, rd, rn, rm, ra } => {
            Insn::Madd { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), ra: m.map(ra) }
        }
        Insn::Msub { wide, rd, rn, rm, ra } => {
            Insn::Msub { wide, rd: m.map(rd), rn: m.map(rn), rm: m.map(rm), ra: m.map(ra) }
        }
        Insn::Ubfm { wide, rd, rn, immr, imms } => {
            Insn::Ubfm { wide, rd: m.map(rd), rn: m.map(rn), immr, imms }
        }
        Insn::Sbfm { wide, rd, rn, immr, imms } => {
            Insn::Sbfm { wide, rd: m.map(rd), rn: m.map(rn), immr, imms }
        }
        Insn::LdrImm { wide, rt, rn, offset } => {
            Insn::LdrImm { wide, rt: m.map(rt), rn: m.map(rn), offset }
        }
        Insn::StrImm { wide, rt, rn, offset } => {
            Insn::StrImm { wide, rt: m.map(rt), rn: m.map(rn), offset }
        }
        Insn::Stp { rt, rt2, rn, offset, mode } => {
            Insn::Stp { rt: m.map(rt), rt2: m.map(rt2), rn: m.map(rn), offset, mode }
        }
        Insn::Ldp { rt, rt2, rn, offset, mode } => {
            Insn::Ldp { rt: m.map(rt), rt2: m.map(rt2), rn: m.map(rn), offset, mode }
        }
        Insn::Nop => Insn::Nop,
        Insn::Brk { imm } => Insn::Brk { imm },
        Insn::Svc { imm } => Insn::Svc { imm },
    }
}

/// Rewrites `insns` into canonical register space, returning the
/// canonical sequence and the concrete renameable registers in
/// first-use order (the body's calling-convention record: canonical
/// register `POOL[i]` stands for concrete register `regs[i]`).
#[must_use]
pub fn canonicalize(insns: &[Insn]) -> (Vec<Insn>, Vec<u8>) {
    let mut mapper = Mapper::new();
    let canonical = insns.iter().map(|&i| remap(i, &mut mapper)).collect();
    (canonical, mapper.order)
}

/// The 128-bit dictionary key of `insns`: the [`StableHasher`] digest
/// of the canonical sequence's machine encoding, salted with the cache
/// schema version. Register-renamed but structurally identical bodies
/// share a key; any semantic difference changes the encoding and so the
/// key. Also returns the concrete-register record of
/// [`canonicalize`].
#[must_use]
pub fn canonical_key(insns: &[Insn]) -> (CacheKey, Vec<u8>) {
    let (canonical, regs) = canonicalize(insns);
    let mut h = StableHasher::with_capacity(canonical.len() * 8 + 64);
    h.write_tag(DICT_KEY_TAG);
    h.write_str(calibro_cache::SCHEMA_VERSION);
    h.write_usize(canonical.len());
    for insn in &canonical {
        // The machine encoding is an isomorphic image of the subset the
        // pipeline emits: distinct instructions have distinct words, so
        // hashing words cannot merge semantic differences. The debug
        // fallback covers values outside encodable range (offsets wider
        // than the form's field), which real bodies never contain.
        match insn.encode() {
            Ok(word) => h.write_u32(word),
            Err(_) => h.write_str(&format!("{insn:?}")),
        }
    }
    (h.finish(), regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibro_isa::Cond;

    fn add(rd: u8, rn: u8, rm: u8) -> Insn {
        Insn::AddReg {
            wide: true,
            set_flags: false,
            rd: Reg::new(rd),
            rn: Reg::new(rn),
            rm: Reg::new(rm),
            shift: 0,
        }
    }

    #[test]
    fn renamed_bodies_share_a_key_and_record_their_registers() {
        let a = [add(2, 2, 5), Insn::Movz { wide: false, rd: Reg::new(5), imm16: 7, hw: 0 }];
        let b = [add(1, 1, 3), Insn::Movz { wide: false, rd: Reg::new(3), imm16: 7, hw: 0 }];
        let (ka, regs_a) = canonical_key(&a);
        let (kb, regs_b) = canonical_key(&b);
        assert_eq!(ka, kb);
        assert_eq!(regs_a, vec![2, 5]);
        assert_eq!(regs_b, vec![1, 3]);
    }

    #[test]
    fn fixed_registers_never_rename() {
        // x19 (thread) load vs x0 load: structurally identical shapes,
        // but the pinned register is semantic — keys must differ.
        let thread = [Insn::LdrImm { wide: true, rt: Reg::X0, rn: Reg::X19, offset: 8 }];
        let plain = [Insn::LdrImm { wide: true, rt: Reg::X1, rn: Reg::X0, offset: 8 }];
        assert_ne!(canonical_key(&thread).0, canonical_key(&plain).0);
        // And a fixed register leaves no calling-convention record.
        let (canonical, regs) = canonicalize(&thread);
        assert_eq!(regs, vec![0]);
        assert_eq!(
            canonical[0],
            Insn::LdrImm { wide: true, rt: Reg::new(0), rn: Reg::X19, offset: 8 }
        );
    }

    #[test]
    fn semantic_differences_change_the_key() {
        let base = [add(2, 2, 5)];
        let diff_op = [Insn::SubReg {
            wide: true,
            set_flags: false,
            rd: Reg::new(2),
            rn: Reg::new(2),
            rm: Reg::new(5),
            shift: 0,
        }];
        let diff_width = [Insn::AddReg {
            wide: false,
            set_flags: false,
            rd: Reg::new(2),
            rn: Reg::new(2),
            rm: Reg::new(5),
            shift: 0,
        }];
        let diff_shift = [Insn::AddReg {
            wide: true,
            set_flags: false,
            rd: Reg::new(2),
            rn: Reg::new(2),
            rm: Reg::new(5),
            shift: 1,
        }];
        let diff_flags = [Insn::AddReg {
            wide: true,
            set_flags: true,
            rd: Reg::new(2),
            rn: Reg::new(2),
            rm: Reg::new(5),
            shift: 0,
        }];
        let key = canonical_key(&base).0;
        for other in [&diff_op[..], &diff_width, &diff_shift, &diff_flags] {
            assert_ne!(key, canonical_key(other).0);
        }
        // Branch shape: cond and offset are both semantic.
        let beq = [Insn::BCond { cond: Cond::Eq, offset: 8 }];
        let bne = [Insn::BCond { cond: Cond::Ne, offset: 8 }];
        let beq_far = [Insn::BCond { cond: Cond::Eq, offset: 16 }];
        assert_ne!(canonical_key(&beq).0, canonical_key(&bne).0);
        assert_ne!(canonical_key(&beq).0, canonical_key(&beq_far).0);
    }

    #[test]
    fn dataflow_shape_survives_renaming() {
        // `add x2, x2, x5` (accumulate) vs `add x2, x5, x5` (double):
        // both touch two registers, but the first-use pattern differs,
        // so renaming cannot merge them.
        assert_ne!(canonical_key(&[add(2, 2, 5)]).0, canonical_key(&[add(2, 5, 5)]).0);
    }
}
