//! The daemon-wide dictionary: published bodies, sealed epochs, and the
//! per-build routing session.
//!
//! ## Epoch model
//!
//! The shared `.text` island must be immutable from a tenant's point of
//! view: a sealed generation that links `bl` relocations into the
//! island at byte offsets must find those bytes forever. So the
//! dictionary never mutates an island; it *seals epochs*. Publishes
//! accumulate in a staging set; [`DictRegistry::seal_epoch`] folds the
//! staged bodies into a new, larger island layout (key-sorted, so the
//! layout is a pure function of the published set — independent of
//! publish order and thread count) and bumps the epoch number. Builds
//! snapshot exactly one epoch's layout for their whole duration, and
//! sealed generations pin the epoch they linked against
//! ([`DictRegistry::pin_epoch`]); an epoch's island can only be retired
//! ([`DictRegistry::retire_unpinned`]) once no generation pins it, so
//! no sealed generation ever dangles — that is the epoch fence. The
//! registry holds its own references to every body in a live layout,
//! so cache-lane eviction (a memory-budget concern) can never tear a
//! word out of an island.
//!
//! ## Arbitration
//!
//! [`DictSession::route`] decides, per outlined candidate, between the
//! shared island and a private outline. A candidate routes to the
//! island only when the pinned layout holds a body *byte-identical* to
//! the candidate's: canonical-key equality alone is not enough, because
//! the island stores one concrete register assignment and a tenant
//! whose registers differ cannot branch into it. The three outcomes
//! feed [`DictStats`]: `hits` (island used, body cost zero), `publishes`
//! (body staged for future epochs, private outline this build),
//! `private_preferred` (canonical twin exists but concrete registers
//! differ — private outlining wins the arbitration). Inlining is
//! arbitrated upstream: a candidate only reaches `route` after LTBO's
//! benefit model decided outlining beats keeping the copies inline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use calibro_cache::{ArtifactStore, CacheKey, DictEntry};
use calibro_isa::{Insn, Reg};
use parking_lot::Mutex;

use crate::canon::canonical_key;

/// Dictionary behaviour knobs, fingerprinted into build keys.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DictConfig {
    /// Minimum body length (words) eligible for the shared island;
    /// shorter bodies stay private — the cross-tenant call overhead
    /// cannot pay for itself.
    pub min_words: usize,
}

impl Default for DictConfig {
    fn default() -> DictConfig {
        DictConfig { min_words: 2 }
    }
}

/// Per-build dictionary arbitration outcomes (see the module docs).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DictStats {
    /// Candidates routed to the shared island (body cost zero).
    pub hits: u64,
    /// Bodies newly staged into the dictionary for future epochs.
    pub publishes: u64,
    /// Candidates whose canonical twin exists but whose concrete
    /// registers differ — private outlining preferred.
    pub private_preferred: u64,
}

impl DictStats {
    /// The activity between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &DictStats) -> DictStats {
        DictStats {
            hits: self.hits - earlier.hits,
            publishes: self.publishes - earlier.publishes,
            private_preferred: self.private_preferred - earlier.private_preferred,
        }
    }
}

/// One sealed epoch's immutable island layout: every published body at
/// seal time, in canonical-key order, with the `br x30` return
/// appended to each body at emission.
#[derive(Debug)]
pub struct EpochLayout {
    epoch: u64,
    /// Key-sorted bodies with their island word offsets.
    entries: Vec<(CacheKey, u32, Arc<DictEntry>)>,
    offsets: HashMap<CacheKey, usize>,
    /// The encoded island image.
    words: Vec<u32>,
}

impl EpochLayout {
    fn empty() -> EpochLayout {
        EpochLayout { epoch: 0, entries: Vec::new(), offsets: HashMap::new(), words: Vec::new() }
    }

    fn build(epoch: u64, mut bodies: Vec<(CacheKey, Arc<DictEntry>)>) -> EpochLayout {
        bodies.sort_by_key(|&(key, _)| key);
        let mut entries = Vec::with_capacity(bodies.len());
        let mut offsets = HashMap::with_capacity(bodies.len());
        let mut words = Vec::new();
        for (key, body) in bodies {
            let at = u32::try_from(words.len()).expect("island exceeds u32 words");
            for insn in &body.insns {
                words.push(insn.encode().expect("published body must encode"));
            }
            words.push(Insn::Ret { rn: Reg::LR }.encode().expect("ret encodes"));
            offsets.insert(key, entries.len());
            entries.push((key, at, body));
        }
        EpochLayout { epoch, entries, offsets, words }
    }

    /// The epoch this layout belongs to.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of bodies in the island.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the island holds no bodies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The island word offset and body published under `key`, if any.
    #[must_use]
    pub fn lookup(&self, key: CacheKey) -> Option<(u32, &Arc<DictEntry>)> {
        let &slot = self.offsets.get(&key)?;
        let (_, at, ref body) = self.entries[slot];
        Some((at, body))
    }

    /// The encoded island image (each body followed by `ret`).
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Island size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }
}

/// One epoch's lifecycle state inside the registry.
struct EpochState {
    /// `None` once retired.
    layout: Option<Arc<EpochLayout>>,
    /// Sealed generations currently linking against this epoch.
    pins: u64,
}

struct RegistryInner {
    /// Every published body, keyed canonically. Keep-first: a canonical
    /// key is bound to its first published concrete body forever.
    published: HashMap<CacheKey, Arc<DictEntry>>,
    /// Keys published since the last seal.
    staged: Vec<CacheKey>,
    /// One state per sealed epoch; index == epoch number. Epoch 0 is
    /// the empty island.
    epochs: Vec<EpochState>,
}

/// The daemon-wide shared-outline dictionary (see the module docs).
/// Cheap to share: wrap in `Arc`; all methods take `&self`.
pub struct DictRegistry {
    config: DictConfig,
    inner: Mutex<RegistryInner>,
    hits: AtomicU64,
    publishes: AtomicU64,
    private_preferred: AtomicU64,
}

impl Default for DictRegistry {
    fn default() -> DictRegistry {
        DictRegistry::new(DictConfig::default())
    }
}

impl core::fmt::Debug for DictRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DictRegistry")
            .field("config", &self.config)
            .field("epoch", &self.current_epoch())
            .field("stats", &self.cumulative_stats())
            .finish()
    }
}

impl DictRegistry {
    /// An empty dictionary at epoch 0 (an empty island).
    #[must_use]
    pub fn new(config: DictConfig) -> DictRegistry {
        DictRegistry {
            config,
            inner: Mutex::new(RegistryInner {
                published: HashMap::new(),
                staged: Vec::new(),
                epochs: vec![EpochState { layout: Some(Arc::new(EpochLayout::empty())), pins: 0 }],
            }),
            hits: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            private_preferred: AtomicU64::new(0),
        }
    }

    /// The dictionary's configuration.
    #[must_use]
    pub fn config(&self) -> DictConfig {
        self.config
    }

    /// The latest sealed epoch — what a new build session snapshots.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.inner.lock().epochs.len() as u64 - 1
    }

    /// Total bodies ever published.
    #[must_use]
    pub fn published_count(&self) -> usize {
        self.inner.lock().published.len()
    }

    /// Bodies staged since the last seal.
    #[must_use]
    pub fn staged_count(&self) -> usize {
        self.inner.lock().staged.len()
    }

    /// Cumulative arbitration outcomes across every session.
    #[must_use]
    pub fn cumulative_stats(&self) -> DictStats {
        DictStats {
            hits: self.hits.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            private_preferred: self.private_preferred.load(Ordering::Relaxed),
        }
    }

    /// Opens a routing session pinned to the current epoch's layout for
    /// its whole lifetime — every `route` call in one build sees one
    /// island, so a build is internally consistent even while other
    /// tenants publish.
    #[must_use]
    pub fn session(self: &Arc<Self>) -> DictSession {
        DictSession {
            registry: Arc::clone(self),
            layout: self.layout(self.current_epoch()).expect("current epoch always has a layout"),
            stats: DictStats::default(),
        }
    }

    /// Publishes `body` under `key`, staging it for the next seal.
    /// Keep-first: returns `false` (and changes nothing) when the key
    /// is already published — the dictionary binds a canonical key to
    /// its first concrete body forever, which is what keeps island
    /// content stable across epochs.
    pub fn publish(&self, key: CacheKey, body: Arc<DictEntry>) -> bool {
        let mut inner = self.inner.lock();
        if inner.published.contains_key(&key) {
            return false;
        }
        inner.published.insert(key, body);
        inner.staged.push(key);
        true
    }

    /// Seals the staged publishes into a new epoch and returns its
    /// number. A no-op returning the current epoch when nothing is
    /// staged — sealing is idempotent between publishes, so callers can
    /// seal at every generation boundary without churning epochs.
    pub fn seal_epoch(&self) -> u64 {
        let mut inner = self.inner.lock();
        if inner.staged.is_empty() {
            return inner.epochs.len() as u64 - 1;
        }
        inner.staged.clear();
        let epoch = inner.epochs.len() as u64;
        let bodies: Vec<(CacheKey, Arc<DictEntry>)> =
            inner.published.iter().map(|(k, v)| (*k, Arc::clone(v))).collect();
        let layout = Arc::new(EpochLayout::build(epoch, bodies));
        inner.epochs.push(EpochState { layout: Some(layout), pins: 0 });
        epoch
    }

    /// The layout of `epoch`, unless unknown or retired.
    #[must_use]
    pub fn layout(&self, epoch: u64) -> Option<Arc<EpochLayout>> {
        let inner = self.inner.lock();
        inner.epochs.get(usize::try_from(epoch).ok()?)?.layout.as_ref().map(Arc::clone)
    }

    /// Records that a sealed generation links against `epoch`,
    /// fencing it from retirement. Returns `false` when the epoch is
    /// unknown or already retired (the caller must rebuild against the
    /// current epoch instead of serving a dangling island).
    pub fn pin_epoch(&self, epoch: u64) -> bool {
        let mut inner = self.inner.lock();
        let Some(state) = usize::try_from(epoch).ok().and_then(|e| inner.epochs.get_mut(e)) else {
            return false;
        };
        if state.layout.is_none() {
            return false;
        }
        state.pins += 1;
        true
    }

    /// Releases one [`pin_epoch`](Self::pin_epoch) — called when a
    /// sealed generation is dropped.
    pub fn unpin_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        if let Some(state) = usize::try_from(epoch).ok().and_then(|e| inner.epochs.get_mut(e)) {
            state.pins = state.pins.saturating_sub(1);
        }
    }

    /// Epochs currently fenced by at least one sealed generation.
    #[must_use]
    pub fn pinned_epochs(&self) -> usize {
        self.inner.lock().epochs.iter().filter(|state| state.pins > 0).count()
    }

    /// Retires every non-current epoch with no pins, dropping its
    /// island image, and returns how many were retired. This is the
    /// only way dictionary memory is ever reclaimed: eviction is
    /// epoch-fenced, never per-entry, so a pinned generation's island
    /// stays whole.
    pub fn retire_unpinned(&self) -> usize {
        let mut inner = self.inner.lock();
        let current = inner.epochs.len() - 1;
        let mut retired = 0;
        for state in &mut inner.epochs[..current] {
            if state.pins == 0 && state.layout.take().is_some() {
                retired += 1;
            }
        }
        retired
    }
}

/// One build's dictionary view: a pinned epoch layout plus per-build
/// [`DictStats`]. Created via [`DictRegistry::session`].
pub struct DictSession {
    registry: Arc<DictRegistry>,
    layout: Arc<EpochLayout>,
    stats: DictStats,
}

impl DictSession {
    /// The epoch this session routes against — what the resulting
    /// build's generation records and pins.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.layout.epoch()
    }

    /// The pinned island layout.
    #[must_use]
    pub fn layout(&self) -> &Arc<EpochLayout> {
        &self.layout
    }

    /// This session's arbitration outcomes so far.
    #[must_use]
    pub fn stats(&self) -> DictStats {
        self.stats
    }

    /// Arbitrates one outlined candidate body (without its trailing
    /// return). Returns the island word offset to `bl` to when the
    /// pinned island holds a byte-identical body; `None` routes the
    /// candidate to a private outline. Misses publish through `store`'s
    /// dictionary lane (consulting disk and the fleet first, so a body
    /// a sibling shard published is adopted instead of re-published) —
    /// the publish lands in future epochs, never this build's island.
    pub fn route(&mut self, body: &[Insn], store: &ArtifactStore) -> Option<u32> {
        if body.len() < self.registry.config.min_words {
            return None;
        }
        let (key, regs) = canonical_key(body);
        if let Some((at, entry)) = self.layout.lookup(key) {
            if entry.insns == body {
                self.stats.hits += 1;
                self.registry.hits.fetch_add(1, Ordering::Relaxed);
                return Some(at);
            }
            self.stats.private_preferred += 1;
            self.registry.private_preferred.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Not in our island: adopt the fleet's body for this key when
        // one exists (disk or peer), otherwise publish ours. Either
        // way the key is only *staged* — this build outlines privately
        // and byte-identical reruns stay byte-identical until a seal.
        let adopted = match store.get_dict(key) {
            Ok(Some(existing)) => existing,
            Ok(None) | Err(_) => store.insert_dict(key, DictEntry { insns: body.to_vec(), regs }),
        };
        if self.registry.publish(key, adopted) {
            self.stats.publishes += 1;
            self.registry.publishes.fetch_add(1, Ordering::Relaxed);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(imm: u16, rd: u8) -> Vec<Insn> {
        vec![
            Insn::Movz { wide: false, rd: Reg::new(rd), imm16: imm, hw: 0 },
            Insn::AddReg {
                wide: true,
                set_flags: false,
                rd: Reg::new(rd),
                rn: Reg::new(rd),
                rm: Reg::new(rd),
                shift: 0,
            },
        ]
    }

    fn registry() -> Arc<DictRegistry> {
        Arc::new(DictRegistry::default())
    }

    #[test]
    fn publish_seal_then_hit() {
        let reg = registry();
        let store = ArtifactStore::default();
        let mut first = reg.session();
        assert_eq!(first.epoch(), 0);
        assert_eq!(first.route(&body(7, 2), &store), None, "cold route publishes, goes private");
        assert_eq!(first.stats(), DictStats { hits: 0, publishes: 1, private_preferred: 0 });
        // Same build, same body again: already staged, still private,
        // not a second publish.
        assert_eq!(first.route(&body(7, 2), &store), None);
        assert_eq!(first.stats().publishes, 1);

        assert_eq!(reg.seal_epoch(), 1);
        assert_eq!(reg.seal_epoch(), 1, "seal with nothing staged is a no-op");

        let mut second = reg.session();
        assert_eq!(second.epoch(), 1);
        let at = second.route(&body(7, 2), &store).expect("sealed body must hit");
        assert_eq!(second.stats(), DictStats { hits: 1, publishes: 0, private_preferred: 0 });
        // The island serves the body at that offset, ret-terminated.
        let layout = second.layout();
        let words = layout.words();
        assert_eq!(words.len(), 3);
        assert_eq!(words[at as usize], body(7, 2)[0].encode().unwrap());
        assert_eq!(words[2], Insn::Ret { rn: Reg::LR }.encode().unwrap());
        // The dictionary lane saw the publish.
        assert_eq!(store.stats().dict_stores, 1);
    }

    #[test]
    fn register_twin_prefers_private() {
        let reg = registry();
        let store = ArtifactStore::default();
        let mut s = reg.session();
        s.route(&body(7, 2), &store);
        reg.seal_epoch();
        let mut t = reg.session();
        // Same canonical shape, different concrete register: the
        // island body cannot serve it.
        assert_eq!(t.route(&body(7, 4), &store), None);
        assert_eq!(t.stats(), DictStats { hits: 0, publishes: 0, private_preferred: 1 });
    }

    #[test]
    fn island_layout_is_publish_order_invariant() {
        let store = ArtifactStore::default();
        let bodies: Vec<Vec<Insn>> = (0..6).map(|i| body(100 + i, 3)).collect();
        let forward = registry();
        let mut s = forward.session();
        for b in &bodies {
            s.route(b, &store);
        }
        forward.seal_epoch();
        let backward = registry();
        let mut t = backward.session();
        for b in bodies.iter().rev() {
            t.route(b, &store);
        }
        backward.seal_epoch();
        assert_eq!(
            forward.layout(1).unwrap().words(),
            backward.layout(1).unwrap().words(),
            "island image must be a pure function of the published set"
        );
    }

    #[test]
    fn short_bodies_are_ineligible() {
        let reg = Arc::new(DictRegistry::new(DictConfig { min_words: 3 }));
        let store = ArtifactStore::default();
        let mut s = reg.session();
        assert_eq!(s.route(&body(7, 2), &store), None);
        assert_eq!(s.stats(), DictStats::default(), "ineligible body must not publish");
        assert_eq!(reg.published_count(), 0);
    }

    #[test]
    fn epoch_fence_blocks_retirement_while_pinned() {
        let reg = registry();
        let store = ArtifactStore::default();
        let mut s = reg.session();
        s.route(&body(1, 2), &store);
        reg.seal_epoch();
        let mut t = reg.session();
        t.route(&body(2, 2), &store);
        reg.seal_epoch();
        assert_eq!(reg.current_epoch(), 2);

        // A sealed generation pins epoch 1; retirement must skip it
        // (epoch 0, unpinned, goes).
        assert!(reg.pin_epoch(1));
        assert_eq!(reg.retire_unpinned(), 1);
        assert!(reg.layout(0).is_none(), "unpinned epoch 0 retired");
        assert!(reg.layout(1).is_some(), "pinned epoch survives retirement");
        assert!(reg.layout(2).is_some(), "current epoch never retires");

        // Once the generation drops its pin the fence opens.
        reg.unpin_epoch(1);
        assert_eq!(reg.retire_unpinned(), 1);
        assert!(reg.layout(1).is_none());
        assert!(!reg.pin_epoch(1), "pinning a retired epoch must fail");
        assert!(!reg.pin_epoch(99), "pinning an unknown epoch must fail");
    }

    #[test]
    fn adopted_fleet_body_is_staged_not_republished() {
        // A sibling shard already published this canonical key with
        // registers we do not use: the session must adopt that body
        // (so the fleet-wide island stays consistent), stage it, and
        // still outline privately.
        let reg = registry();
        let store = ArtifactStore::default();
        let fleet_body = body(7, 2);
        let (key, regs) = canonical_key(&fleet_body);
        store.insert_dict(key, DictEntry { insns: fleet_body.clone(), regs });
        let mut s = reg.session();
        assert_eq!(s.route(&body(7, 4), &store), None);
        assert_eq!(s.stats().publishes, 1, "adoption counts as this build's publish");
        reg.seal_epoch();
        // The island carries the fleet's body, not ours.
        let layout = reg.layout(1).unwrap();
        let (_, entry) = layout.lookup(key).unwrap();
        assert_eq!(entry.insns, fleet_body);
        assert_eq!(store.stats().dict_stores, 1, "no second store for an adopted body");
    }
}
