//! Property tests for dictionary-key canonicalization, over a
//! generated corpus of random bodies:
//!
//! 1. register-renamed but structurally identical sequences map to the
//!    same key;
//! 2. sequences differing in any semantic field (opcode, immediate,
//!    branch shape, width, flags) never collide within the corpus;
//! 3. the key is a pure function of the body — invariant under corpus
//!    permutation and under hashing from many threads at once.
//!
//! The generator is a deterministic SplitMix64 stream, so a failure
//! reproduces from its seed.

use calibro_dict::{canonical_key, canonicalize};
use calibro_isa::{Cond, Insn, Reg};
use std::collections::HashMap;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The renameable encodings (everything but x16/x17/x19/x29/x30/r31).
const RENAMEABLE: [u8; 26] =
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 18, 20, 21, 22, 23, 24, 25, 26, 27, 28];

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(RENAMEABLE[rng.below(RENAMEABLE.len() as u64) as usize])
}

/// One random instruction from the register-operating subset outlined
/// bodies are built from (no pc-relative forms, no sp/lr traffic —
/// LTBO's template exclusions keep those out of bodies).
fn insn(rng: &mut SplitMix64) -> Insn {
    let wide = rng.below(2) == 0;
    match rng.below(10) {
        0 => Insn::Movz { wide, rd: reg(rng), imm16: rng.next() as u16, hw: 0 },
        1 => Insn::Movn { wide, rd: reg(rng), imm16: rng.next() as u16, hw: 0 },
        2 => Insn::AddImm {
            wide,
            set_flags: rng.below(2) == 0,
            rd: reg(rng),
            rn: reg(rng),
            imm12: (rng.next() % 0x1000) as u16,
            shift12: false,
        },
        3 => Insn::SubImm {
            wide,
            set_flags: rng.below(2) == 0,
            rd: reg(rng),
            rn: reg(rng),
            imm12: (rng.next() % 0x1000) as u16,
            shift12: false,
        },
        4 => Insn::AddReg {
            wide,
            set_flags: false,
            rd: reg(rng),
            rn: reg(rng),
            rm: reg(rng),
            shift: (rng.next() % 4) as u8,
        },
        5 => Insn::OrrReg { wide, rd: reg(rng), rn: reg(rng), rm: reg(rng), shift: 0 },
        6 => Insn::EorReg { wide, rd: reg(rng), rn: reg(rng), rm: reg(rng), shift: 0 },
        7 => Insn::Madd { wide, rd: reg(rng), rn: reg(rng), rm: reg(rng), ra: reg(rng) },
        8 => Insn::LdrImm {
            wide,
            rt: reg(rng),
            rn: reg(rng),
            offset: (rng.next() % 0x100) as u16 * 8,
        },
        _ => Insn::StrImm {
            wide,
            rt: reg(rng),
            rn: reg(rng),
            offset: (rng.next() % 0x100) as u16 * 8,
        },
    }
}

fn random_body(rng: &mut SplitMix64) -> Vec<Insn> {
    let len = 2 + rng.below(6) as usize;
    (0..len).map(|_| insn(rng)).collect()
}

/// Applies a register permutation (a bijection over the renameable
/// encodings) to every operand of `body`, leaving fixed registers
/// untouched — a structurally identical rename.
fn rename(body: &[Insn], perm: &[u8; 32]) -> Vec<Insn> {
    let map = |r: Reg| {
        let i = r.index() as usize;
        if matches!(i, 16 | 17 | 19 | 29 | 30 | 31) {
            r
        } else {
            Reg::new(perm[i])
        }
    };
    body.iter()
        .map(|&insn| match insn {
            Insn::Movz { wide, rd, imm16, hw } => Insn::Movz { wide, rd: map(rd), imm16, hw },
            Insn::Movn { wide, rd, imm16, hw } => Insn::Movn { wide, rd: map(rd), imm16, hw },
            Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                Insn::AddImm { wide, set_flags, rd: map(rd), rn: map(rn), imm12, shift12 }
            }
            Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                Insn::SubImm { wide, set_flags, rd: map(rd), rn: map(rn), imm12, shift12 }
            }
            Insn::AddReg { wide, set_flags, rd, rn, rm, shift } => {
                Insn::AddReg { wide, set_flags, rd: map(rd), rn: map(rn), rm: map(rm), shift }
            }
            Insn::OrrReg { wide, rd, rn, rm, shift } => {
                Insn::OrrReg { wide, rd: map(rd), rn: map(rn), rm: map(rm), shift }
            }
            Insn::EorReg { wide, rd, rn, rm, shift } => {
                Insn::EorReg { wide, rd: map(rd), rn: map(rn), rm: map(rm), shift }
            }
            Insn::Madd { wide, rd, rn, rm, ra } => {
                Insn::Madd { wide, rd: map(rd), rn: map(rn), rm: map(rm), ra: map(ra) }
            }
            Insn::LdrImm { wide, rt, rn, offset } => {
                Insn::LdrImm { wide, rt: map(rt), rn: map(rn), offset }
            }
            Insn::StrImm { wide, rt, rn, offset } => {
                Insn::StrImm { wide, rt: map(rt), rn: map(rn), offset }
            }
            other => other,
        })
        .collect()
}

/// A random bijection over the renameable encodings (Fisher-Yates).
fn random_perm(rng: &mut SplitMix64) -> [u8; 32] {
    let mut shuffled = RENAMEABLE;
    for i in (1..shuffled.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        shuffled.swap(i, j);
    }
    let mut perm = [0u8; 32];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i as u8;
    }
    for (from, to) in RENAMEABLE.iter().zip(shuffled) {
        perm[*from as usize] = to;
    }
    perm
}

#[test]
fn register_renames_preserve_the_key() {
    let mut rng = SplitMix64(0xd1c7);
    for round in 0..300 {
        let body = random_body(&mut rng);
        let renamed = rename(&body, &random_perm(&mut rng));
        let (k_orig, _) = canonical_key(&body);
        let (k_renamed, _) = canonical_key(&renamed);
        assert_eq!(
            k_orig, k_renamed,
            "round {round}: rename changed the key\n  body: {body:?}\n  renamed: {renamed:?}"
        );
        // And the canonical forms are literally identical sequences.
        assert_eq!(canonicalize(&body).0, canonicalize(&renamed).0);
    }
}

#[test]
fn semantic_mutations_never_collide_in_the_corpus() {
    let mut rng = SplitMix64(0x5e11);
    let mut seen: HashMap<_, Vec<Insn>> = HashMap::new();
    for round in 0..400 {
        let body = random_body(&mut rng);
        let (key, _) = canonical_key(&body);
        let canonical = canonicalize(&body).0;
        if let Some(prior) = seen.get(&key) {
            assert_eq!(
                *prior, canonical,
                "round {round}: two canonically distinct bodies share a key"
            );
            continue;
        }
        seen.insert(key, canonical);

        // Mutate one semantic field; the mutant must miss every key in
        // the corpus (including its parent's).
        let mut mutant = body.clone();
        let at = rng.below(mutant.len() as u64) as usize;
        mutant[at] = match mutant[at] {
            Insn::Movz { wide, rd, imm16, hw } => {
                Insn::Movz { wide, rd, imm16: imm16.wrapping_add(1), hw }
            }
            Insn::Movn { wide, rd, imm16, hw } => Insn::Movz { wide, rd, imm16, hw },
            Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 }
            }
            Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 }
            }
            Insn::AddReg { set_flags, rd, rn, rm, shift, wide } => {
                Insn::AddReg { wide: !wide, set_flags, rd, rn, rm, shift }
            }
            Insn::OrrReg { wide, rd, rn, rm, shift } => Insn::EorReg { wide, rd, rn, rm, shift },
            Insn::EorReg { wide, rd, rn, rm, shift } => Insn::OrrReg { wide, rd, rn, rm, shift },
            Insn::Madd { wide, rd, rn, rm, ra } => Insn::Msub { wide, rd, rn, rm, ra },
            Insn::LdrImm { wide, rt, rn, offset } => {
                Insn::LdrImm { wide, rt, rn, offset: offset + 8 }
            }
            Insn::StrImm { wide, rt, rn, offset } => Insn::LdrImm { wide, rt, rn, offset },
            other => other,
        };
        let (mutant_key, _) = canonical_key(&mutant);
        assert_ne!(key, mutant_key, "round {round}: semantic mutation kept the key: {mutant:?}");
        if let Some(prior) = seen.get(&mutant_key) {
            assert_eq!(*prior, canonicalize(&mutant).0, "round {round}: mutant collided");
        }
    }
    // Branch-shape differences, explicitly: condition and offset.
    let b = |cond, offset| {
        vec![Insn::Movz { wide: true, rd: Reg::X0, imm16: 1, hw: 0 }, Insn::BCond { cond, offset }]
    };
    let eq8 = canonical_key(&b(Cond::Eq, 8)).0;
    assert_ne!(eq8, canonical_key(&b(Cond::Ne, 8)).0);
    assert_ne!(eq8, canonical_key(&b(Cond::Eq, 16)).0);
}

#[test]
fn keys_are_order_and_thread_invariant() {
    let mut rng = SplitMix64(0x7ead);
    let corpus: Vec<Vec<Insn>> = (0..64).map(|_| random_body(&mut rng)).collect();
    let forward: Vec<_> = corpus.iter().map(|b| canonical_key(b).0).collect();
    // Hashing the corpus in reverse order changes nothing per body.
    let backward: Vec<_> = corpus.iter().rev().map(|b| canonical_key(b).0).collect();
    for (i, key) in forward.iter().enumerate() {
        assert_eq!(*key, backward[corpus.len() - 1 - i]);
    }
    // Eight threads hashing disjoint and overlapping slices agree with
    // the single-threaded pass exactly.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let corpus = &corpus;
            let forward = &forward;
            scope.spawn(move || {
                for (i, body) in corpus.iter().enumerate().skip(t % 3) {
                    assert_eq!(canonical_key(body).0, forward[i], "thread {t} diverged at {i}");
                }
            });
        }
    });
}
