//! Property tests: every encodable instruction round-trips through
//! encode -> decode, and decoding is a partial inverse of encoding.

use calibro_isa::{decode, Cond, Insn, PairMode, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..=31).prop_map(Reg::new)
}

fn branch_offset(bits: u32) -> impl Strategy<Value = i64> {
    let limit = 1i64 << (bits - 1);
    (-limit..limit).prop_map(|w| w * 4)
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u32..16).prop_map(Cond::from_bits)
}

fn pair_mode() -> impl Strategy<Value = PairMode> {
    prop_oneof![Just(PairMode::SignedOffset), Just(PairMode::PreIndex), Just(PairMode::PostIndex),]
}

/// Generates only instructions whose operands fit their encodings, i.e.
/// the domain on which `encode` must succeed.
fn encodable_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        branch_offset(26).prop_map(|offset| Insn::B { offset }),
        branch_offset(26).prop_map(|offset| Insn::Bl { offset }),
        (any_cond(), branch_offset(19)).prop_map(|(cond, offset)| Insn::BCond { cond, offset }),
        (any::<bool>(), any_reg(), branch_offset(19)).prop_map(|(wide, rt, offset)| Insn::Cbz {
            wide,
            rt,
            offset
        }),
        (any::<bool>(), any_reg(), branch_offset(19)).prop_map(|(wide, rt, offset)| Insn::Cbnz {
            wide,
            rt,
            offset
        }),
        (any_reg(), 0u8..64, branch_offset(14)).prop_map(|(rt, bit, offset)| Insn::Tbz {
            rt,
            bit,
            offset
        }),
        (any_reg(), 0u8..64, branch_offset(14)).prop_map(|(rt, bit, offset)| Insn::Tbnz {
            rt,
            bit,
            offset
        }),
        (any_reg(), -(1i64 << 20)..(1i64 << 20)).prop_map(|(rd, offset)| Insn::Adr { rd, offset }),
        (any_reg(), -(1i64 << 20)..(1i64 << 20))
            .prop_map(|(rd, pages)| Insn::Adrp { rd, offset: pages << 12 }),
        (any::<bool>(), any_reg(), branch_offset(19)).prop_map(|(wide, rt, offset)| Insn::LdrLit {
            wide,
            rt,
            offset
        }),
        any_reg().prop_map(|rn| Insn::Br { rn }),
        any_reg().prop_map(|rn| Insn::Blr { rn }),
        any_reg().prop_map(|rn| Insn::Ret { rn }),
        (any::<bool>(), any_reg(), any::<u16>()).prop_flat_map(|(wide, rd, imm16)| {
            let max_hw = if wide { 4u8 } else { 2 };
            (0..max_hw).prop_map(move |hw| Insn::Movz { wide, rd, imm16, hw })
        }),
        (any::<bool>(), any_reg(), any::<u16>()).prop_flat_map(|(wide, rd, imm16)| {
            let max_hw = if wide { 4u8 } else { 2 };
            (0..max_hw).prop_map(move |hw| Insn::Movn { wide, rd, imm16, hw })
        }),
        (any::<bool>(), any_reg(), any::<u16>()).prop_flat_map(|(wide, rd, imm16)| {
            let max_hw = if wide { 4u8 } else { 2 };
            (0..max_hw).prop_map(move |hw| Insn::Movk { wide, rd, imm16, hw })
        }),
        (any::<bool>(), any::<bool>(), any_reg(), any_reg(), 0u16..4096, any::<bool>()).prop_map(
            |(wide, set_flags, rd, rn, imm12, shift12)| Insn::AddImm {
                wide,
                set_flags,
                rd,
                rn,
                imm12,
                shift12
            }
        ),
        (any::<bool>(), any::<bool>(), any_reg(), any_reg(), 0u16..4096, any::<bool>()).prop_map(
            |(wide, set_flags, rd, rn, imm12, shift12)| Insn::SubImm {
                wide,
                set_flags,
                rd,
                rn,
                imm12,
                shift12
            }
        ),
        (any::<bool>(), any::<bool>(), any_reg(), any_reg(), any_reg()).prop_flat_map(
            |(wide, set_flags, rd, rn, rm)| {
                let width = if wide { 64u8 } else { 32 };
                (0..width).prop_map(move |shift| Insn::AddReg {
                    wide,
                    set_flags,
                    rd,
                    rn,
                    rm,
                    shift,
                })
            }
        ),
        (any::<bool>(), any::<bool>(), any_reg(), any_reg(), any_reg()).prop_flat_map(
            |(wide, set_flags, rd, rn, rm)| {
                let width = if wide { 64u8 } else { 32 };
                (0..width).prop_map(move |shift| Insn::SubReg {
                    wide,
                    set_flags,
                    rd,
                    rn,
                    rm,
                    shift,
                })
            }
        ),
        (any::<bool>(), any::<bool>(), any_reg(), any_reg(), any_reg()).prop_flat_map(
            |(wide, set_flags, rd, rn, rm)| {
                let width = if wide { 64u8 } else { 32 };
                (0..width).prop_map(move |shift| Insn::AndReg {
                    wide,
                    set_flags,
                    rd,
                    rn,
                    rm,
                    shift,
                })
            }
        ),
        (any::<bool>(), any_reg(), any_reg(), any_reg()).prop_flat_map(|(wide, rd, rn, rm)| {
            let width = if wide { 64u8 } else { 32 };
            (0..width).prop_map(move |shift| Insn::OrrReg { wide, rd, rn, rm, shift })
        }),
        (any::<bool>(), any_reg(), any_reg(), any_reg()).prop_flat_map(|(wide, rd, rn, rm)| {
            let width = if wide { 64u8 } else { 32 };
            (0..width).prop_map(move |shift| Insn::EorReg { wide, rd, rn, rm, shift })
        }),
        (any::<bool>(), any_reg(), any_reg(), any_reg())
            .prop_map(|(wide, rd, rn, rm)| Insn::Sdiv { wide, rd, rn, rm }),
        (any::<bool>(), any_reg(), any_reg(), any_reg())
            .prop_map(|(wide, rd, rn, rm)| Insn::Lslv { wide, rd, rn, rm }),
        (any::<bool>(), any_reg(), any_reg(), any_reg())
            .prop_map(|(wide, rd, rn, rm)| Insn::Asrv { wide, rd, rn, rm }),
        (any::<bool>(), any_reg(), any_reg()).prop_flat_map(|(wide, rd, rn)| {
            let width = if wide { 64u8 } else { 32 };
            (0..width, 0..width).prop_map(move |(immr, imms)| Insn::Sbfm {
                wide,
                rd,
                rn,
                immr,
                imms,
            })
        }),
        (any::<bool>(), any_reg(), any_reg(), any_reg(), any_reg())
            .prop_map(|(wide, rd, rn, rm, ra)| Insn::Madd { wide, rd, rn, rm, ra }),
        (any::<bool>(), any_reg(), any_reg(), any_reg(), any_reg())
            .prop_map(|(wide, rd, rn, rm, ra)| Insn::Msub { wide, rd, rn, rm, ra }),
        (any::<bool>(), any_reg(), any_reg()).prop_flat_map(|(wide, rd, rn)| {
            let width = if wide { 64u8 } else { 32 };
            (0..width, 0..width).prop_map(move |(immr, imms)| Insn::Ubfm {
                wide,
                rd,
                rn,
                immr,
                imms,
            })
        }),
        (any::<bool>(), any_reg(), any_reg(), 0u16..4096).prop_map(|(wide, rt, rn, slot)| {
            let scale = if wide { 8 } else { 4 };
            Insn::LdrImm { wide, rt, rn, offset: slot % (4096 / scale) * scale }
        }),
        (any::<bool>(), any_reg(), any_reg(), 0u16..4096).prop_map(|(wide, rt, rn, slot)| {
            let scale = if wide { 8 } else { 4 };
            Insn::StrImm { wide, rt, rn, offset: slot % (4096 / scale) * scale }
        }),
        (any_reg(), any_reg(), any_reg(), -64i16..64, pair_mode()).prop_map(
            |(rt, rt2, rn, words, mode)| Insn::Stp { rt, rt2, rn, offset: words * 8, mode }
        ),
        (any_reg(), any_reg(), any_reg(), -64i16..64, pair_mode()).prop_map(
            |(rt, rt2, rn, words, mode)| Insn::Ldp { rt, rt2, rn, offset: words * 8, mode }
        ),
        Just(Insn::Nop),
        any::<u16>().prop_map(|imm| Insn::Brk { imm }),
        any::<u16>().prop_map(|imm| Insn::Svc { imm }),
    ]
}

/// Promoted from `roundtrip.proptest-regressions`: words that once
/// decoded into instructions that re-encoded to a different word. Named
/// and always-run, so the cases survive even if the seed file is pruned
/// or proptest is skipped.
#[test]
fn regression_seed_words_decode_encode_roundtrip() {
    for word in [1_392_738_304u32, 1_259_700_224] {
        if let Ok(insn) = decode(word) {
            let re = insn.encode().expect("decoded instruction must re-encode");
            assert_eq!(re, word, "word {word:#010x} decoded to {insn:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// encode . decode == id on the encodable domain.
    #[test]
    fn encode_decode_roundtrip(insn in encodable_insn()) {
        let word = insn.encode().expect("generator produced unencodable instruction");
        let back = decode(word).expect("encoder produced undecodable word");
        prop_assert_eq!(back, insn);
    }

    /// decode . encode == id: whatever decodes must re-encode to the same
    /// word (decoding never loses information).
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            let re = insn.encode().expect("decoded instruction must re-encode");
            prop_assert_eq!(re, word);
        }
    }

    /// Patching a PC-relative instruction changes only its offset.
    #[test]
    fn patching_preserves_identity(insn in encodable_insn(), raw in -4096i64..4096) {
        if insn.pc_rel_offset().is_some() {
            let offset = match insn {
                Insn::Adrp { .. } => raw << 12,
                Insn::Adr { .. } => raw,
                _ => raw * 4,
            };
            let patched = insn.with_pc_rel_offset(offset);
            prop_assert_eq!(patched.pc_rel_offset(), Some(offset));
            prop_assert_eq!(patched.is_terminator(), insn.is_terminator());
            prop_assert_eq!(patched.is_call(), insn.is_call());
            prop_assert_eq!(
                std::mem::discriminant(&patched),
                std::mem::discriminant(&insn)
            );
        }
    }

    /// Disassembly is total and non-empty on the encodable domain.
    #[test]
    fn disassembly_is_total(insn in encodable_insn()) {
        let text = insn.to_string();
        prop_assert!(!text.is_empty());
    }
}
