//! Decoding AArch64 machine words back into [`Insn`] values.
//!
//! The decoder recognizes exactly the subset the encoder produces. Words
//! outside the subset — including data words embedded in the text segment,
//! the hazard the paper's LTBO metadata exists to avoid (§3.2) — decode to
//! [`DecodeError::Unallocated`].

use core::fmt;

use crate::cond::Cond;
use crate::insn::{Insn, PairMode};
use crate::reg::Reg;

/// An error produced when a machine word is not a recognized instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The word does not match any encoding in the supported subset.
    Unallocated(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Unallocated(w) => {
                write!(f, "word {w:#010x} is not an instruction in the supported subset")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn sign_extend(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((i64::from(value)) << shift) >> shift
}

fn rd(w: u32) -> Reg {
    Reg::from_bits(w)
}

fn rn(w: u32) -> Reg {
    Reg::from_bits(w >> 5)
}

fn rm(w: u32) -> Reg {
    Reg::from_bits(w >> 16)
}

fn ra(w: u32) -> Reg {
    Reg::from_bits(w >> 10)
}

fn imm19_offset(w: u32) -> i64 {
    sign_extend((w >> 5) & 0x7_ffff, 19) * 4
}

/// Decodes one machine word.
///
/// # Errors
///
/// Returns [`DecodeError::Unallocated`] for words outside the supported
/// subset (including embedded data that happens to sit in a text segment).
pub fn decode(w: u32) -> Result<Insn, DecodeError> {
    // Fixed-pattern system instructions first.
    if w == 0xd503_201f {
        return Ok(Insn::Nop);
    }
    if w & 0xffe0_001f == 0xd420_0000 {
        return Ok(Insn::Brk { imm: ((w >> 5) & 0xffff) as u16 });
    }
    if w & 0xffe0_001f == 0xd400_0001 {
        return Ok(Insn::Svc { imm: ((w >> 5) & 0xffff) as u16 });
    }
    if w & 0xffff_fc1f == 0xd61f_0000 {
        return Ok(Insn::Br { rn: rn(w) });
    }
    if w & 0xffff_fc1f == 0xd63f_0000 {
        return Ok(Insn::Blr { rn: rn(w) });
    }
    if w & 0xffff_fc1f == 0xd65f_0000 {
        return Ok(Insn::Ret { rn: rn(w) });
    }

    // Unconditional immediate branches.
    match w >> 26 {
        0b000101 => return Ok(Insn::B { offset: sign_extend(w & 0x3ff_ffff, 26) * 4 }),
        0b100101 => return Ok(Insn::Bl { offset: sign_extend(w & 0x3ff_ffff, 26) * 4 }),
        _ => {}
    }

    if w & 0xff00_0010 == 0x5400_0000 {
        return Ok(Insn::BCond { cond: Cond::from_bits(w), offset: imm19_offset(w) });
    }

    let wide = w >> 31 == 1;
    match (w >> 24) & 0x7f {
        0x34 => return Ok(Insn::Cbz { wide, rt: rd(w), offset: imm19_offset(w) }),
        0x35 => return Ok(Insn::Cbnz { wide, rt: rd(w), offset: imm19_offset(w) }),
        0x36 | 0x37 => {
            let bit = (((w >> 31) & 1) << 5 | ((w >> 19) & 0x1f)) as u8;
            let offset = sign_extend((w >> 5) & 0x3fff, 14) * 4;
            let rt = rd(w);
            return Ok(if (w >> 24) & 0x7f == 0x36 {
                Insn::Tbz { rt, bit, offset }
            } else {
                Insn::Tbnz { rt, bit, offset }
            });
        }
        _ => {}
    }

    // ADR / ADRP.
    if w & 0x1f00_0000 == 0x1000_0000 {
        let immlo = (w >> 29) & 3;
        let immhi = (w >> 5) & 0x7_ffff;
        let imm = sign_extend(immhi << 2 | immlo, 21);
        return Ok(if w >> 31 == 0 {
            Insn::Adr { rd: rd(w), offset: imm }
        } else {
            Insn::Adrp { rd: rd(w), offset: imm << 12 }
        });
    }

    // LDR literal.
    if w & 0xbf00_0000 == 0x1800_0000 {
        let wide = (w >> 30) & 1 == 1;
        return Ok(Insn::LdrLit { wide, rt: rd(w), offset: imm19_offset(w) });
    }

    // Move wide.
    if (w >> 23) & 0x3f == 0b100101 {
        let opc = (w >> 29) & 3;
        let hw = ((w >> 21) & 3) as u8;
        let imm16 = ((w >> 5) & 0xffff) as u16;
        if !wide && hw > 1 {
            return Err(DecodeError::Unallocated(w));
        }
        let (rd, wide) = (rd(w), wide);
        return match opc {
            0b00 => Ok(Insn::Movn { wide, rd, imm16, hw }),
            0b10 => Ok(Insn::Movz { wide, rd, imm16, hw }),
            0b11 => Ok(Insn::Movk { wide, rd, imm16, hw }),
            _ => Err(DecodeError::Unallocated(w)),
        };
    }

    // Add/sub immediate.
    if (w >> 23) & 0x3f == 0b100010 {
        let op = (w >> 30) & 1 == 1;
        let set_flags = (w >> 29) & 1 == 1;
        let shift12 = (w >> 22) & 1 == 1;
        let imm12 = ((w >> 10) & 0xfff) as u16;
        let (rd, rn) = (rd(w), rn(w));
        return Ok(if op {
            Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 }
        } else {
            Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 }
        });
    }

    // Add/sub shifted register (LSL-only subset).
    if (w >> 24) & 0x1f == 0b01011 && (w >> 21) & 1 == 0 {
        if (w >> 22) & 3 != 0 {
            return Err(DecodeError::Unallocated(w)); // only LSL shifts in subset
        }
        let op = (w >> 30) & 1 == 1;
        let set_flags = (w >> 29) & 1 == 1;
        let shift = ((w >> 10) & 0x3f) as u8;
        if !wide && shift >= 32 {
            return Err(DecodeError::Unallocated(w));
        }
        let (rd, rn, rm) = (rd(w), rn(w), rm(w));
        return Ok(if op {
            Insn::SubReg { wide, set_flags, rd, rn, rm, shift }
        } else {
            Insn::AddReg { wide, set_flags, rd, rn, rm, shift }
        });
    }

    // Logical shifted register (LSL-only, non-inverted subset).
    if (w >> 24) & 0x1f == 0b01010 && (w >> 21) & 1 == 0 {
        if (w >> 22) & 3 != 0 {
            return Err(DecodeError::Unallocated(w));
        }
        let opc = (w >> 29) & 3;
        let shift = ((w >> 10) & 0x3f) as u8;
        if !wide && shift >= 32 {
            return Err(DecodeError::Unallocated(w));
        }
        let (rd, rn, rm) = (rd(w), rn(w), rm(w));
        return match opc {
            0b00 => Ok(Insn::AndReg { wide, set_flags: false, rd, rn, rm, shift }),
            0b01 => Ok(Insn::OrrReg { wide, rd, rn, rm, shift }),
            0b10 => Ok(Insn::EorReg { wide, rd, rn, rm, shift }),
            0b11 => Ok(Insn::AndReg { wide, set_flags: true, rd, rn, rm, shift }),
            _ => unreachable!(),
        };
    }

    // Signed divide and variable shifts (data-processing 2-source).
    if w & 0x7fe0_fc00 == 0x1ac0_0c00 {
        return Ok(Insn::Sdiv { wide, rd: rd(w), rn: rn(w), rm: rm(w) });
    }
    if w & 0x7fe0_fc00 == 0x1ac0_2000 {
        return Ok(Insn::Lslv { wide, rd: rd(w), rn: rn(w), rm: rm(w) });
    }
    if w & 0x7fe0_fc00 == 0x1ac0_2800 {
        return Ok(Insn::Asrv { wide, rd: rd(w), rn: rn(w), rm: rm(w) });
    }

    // Multiply-add / multiply-subtract.
    if (w >> 21) & 0x3ff == 0b00_1101_1000 {
        let o0 = (w >> 15) & 1 == 1;
        let (rd, rn, rm, ra) = (rd(w), rn(w), rm(w), Reg::from_bits(w >> 10));
        return Ok(if o0 {
            Insn::Msub { wide, rd, rn, rm, ra }
        } else {
            Insn::Madd { wide, rd, rn, rm, ra }
        });
    }

    // SBFM (opc == 00).
    if (w >> 23) & 0x3f == 0b100110 && (w >> 29) & 3 == 0b00 {
        let n = (w >> 22) & 1 == 1;
        if n != wide {
            return Err(DecodeError::Unallocated(w));
        }
        let immr = ((w >> 16) & 0x3f) as u8;
        let imms = ((w >> 10) & 0x3f) as u8;
        if !wide && (immr >= 32 || imms >= 32) {
            return Err(DecodeError::Unallocated(w));
        }
        return Ok(Insn::Sbfm { wide, rd: rd(w), rn: rn(w), immr, imms });
    }

    // UBFM.
    if (w >> 23) & 0x3f == 0b100110 && (w >> 29) & 3 == 0b10 {
        let n = (w >> 22) & 1 == 1;
        if n != wide {
            return Err(DecodeError::Unallocated(w));
        }
        let immr = ((w >> 16) & 0x3f) as u8;
        let imms = ((w >> 10) & 0x3f) as u8;
        if !wide && (immr >= 32 || imms >= 32) {
            return Err(DecodeError::Unallocated(w));
        }
        return Ok(Insn::Ubfm { wide, rd: rd(w), rn: rn(w), immr, imms });
    }

    // Load/store register, unsigned immediate.
    if (w >> 24) & 0x3f == 0b11_1001 {
        let size = w >> 30;
        let opc = (w >> 22) & 3;
        let wide = match size {
            0b10 => false,
            0b11 => true,
            _ => return Err(DecodeError::Unallocated(w)),
        };
        let scale: u32 = if wide { 8 } else { 4 };
        let offset = (((w >> 10) & 0xfff) * scale) as u16;
        let (rt, rn) = (rd(w), rn(w));
        return match opc {
            0b00 => Ok(Insn::StrImm { wide, rt, rn, offset }),
            0b01 => Ok(Insn::LdrImm { wide, rt, rn, offset }),
            _ => Err(DecodeError::Unallocated(w)),
        };
    }

    // Load/store pair, 64-bit.
    if (w >> 27) & 0x7 == 0b101 && (w >> 26) & 1 == 0 && w >> 30 == 0b10 {
        let mode = match (w >> 23) & 7 {
            1 => PairMode::PostIndex,
            2 => PairMode::SignedOffset,
            3 => PairMode::PreIndex,
            _ => return Err(DecodeError::Unallocated(w)),
        };
        let load = (w >> 22) & 1 == 1;
        let offset = (sign_extend((w >> 15) & 0x7f, 7) * 8) as i16;
        let (rt, rn, rt2) = (rd(w), rn(w), Reg::from_bits(w >> 10));
        return Ok(if load {
            Insn::Ldp { rt, rt2, rn, offset, mode }
        } else {
            Insn::Stp { rt, rt2, rn, offset, mode }
        });
    }

    let _ = (rm(w), ra(w));
    Err(DecodeError::Unallocated(w))
}

/// Decodes a little-endian byte buffer into instructions.
///
/// # Errors
///
/// Returns the first [`DecodeError`] together with its word index.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Insn>, (usize, DecodeError)> {
    assert!(bytes.len().is_multiple_of(4), "text segment length must be a word multiple");
    let mut insns = Vec::with_capacity(bytes.len() / 4);
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        insns.push(decode(word).map_err(|e| (i, e))?);
    }
    Ok(insns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_known_words() {
        assert_eq!(decode(0xd503_201f).unwrap(), Insn::Nop);
        assert_eq!(decode(0xd65f_03c0).unwrap(), Insn::Ret { rn: Reg::LR });
        assert_eq!(decode(0x1400_0001).unwrap(), Insn::B { offset: 4 });
        assert_eq!(decode(0x17ff_ffff).unwrap(), Insn::B { offset: -4 });
        assert_eq!(
            decode(0xf940_0c1e).unwrap(),
            Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X0, offset: 24 }
        );
    }

    #[test]
    fn rejects_unallocated() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // A plausible "embedded data" word: ASCII "abcd".
        assert!(matches!(decode(0x6463_6261), Err(DecodeError::Unallocated(_))));
    }

    #[test]
    fn decode_all_reports_position() {
        let mut bytes = 0xd503_201fu32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = decode_all(&bytes).unwrap_err();
        assert_eq!(err.0, 1);
    }
}
