//! A small method-local assembler: emit instructions, bind labels, and let
//! branch offsets be fixed up when the buffer is finished.
//!
//! Cross-method references (calls to other methods, runtime thunks, or
//! outlined functions) are *not* resolved here — they are recorded as
//! symbolic relocations by the code generator and bound by the linker,
//! mirroring the split the paper relies on in §3.2 ("the later linking
//! phase ... will bind function labels to addresses").

use core::fmt;

use crate::encode::EncodeError;
use crate::insn::Insn;

/// A method-local label created by [`Asm::new_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// An error produced while finishing an [`Asm`] buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never bound.
    UnboundLabel(Label),
    /// A fixed-up branch no longer fits its encoding.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::Encode(e) => write!(f, "fixup produced unencodable branch: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

/// An append-only instruction buffer with label fixups.
///
/// # Examples
///
/// ```
/// use calibro_isa::{Asm, Insn, Reg};
///
/// # fn main() -> Result<(), calibro_isa::AsmError> {
/// let mut asm = Asm::new();
/// let done = asm.new_label();
/// asm.emit_branch(Insn::Cbz { wide: false, rt: Reg::X0, offset: 0 }, done);
/// asm.emit(Insn::AddImm {
///     wide: false, set_flags: false,
///     rd: Reg::X0, rn: Reg::X0, imm12: 1, shift12: false,
/// });
/// asm.bind(done);
/// asm.emit(Insn::Ret { rn: Reg::LR });
/// let code = asm.finish()?;
/// assert_eq!(code[0].pc_rel_offset(), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Default, Debug)]
pub struct Asm {
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Returns the current position as a word index (== number of emitted
    /// instructions).
    #[must_use]
    pub fn here(&self) -> usize {
        self.insns.len()
    }

    /// Returns the current position as a byte offset.
    #[must_use]
    pub fn byte_offset(&self) -> u64 {
        self.insns.len() as u64 * Insn::SIZE
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label binds exactly once).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label {label:?} bound twice");
        *slot = Some(self.insns.len());
    }

    /// Appends an instruction verbatim.
    pub fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Appends a PC-relative instruction whose offset will be fixed up to
    /// reach `target` when the buffer is finished. The offset stored in
    /// `insn` is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `insn` is not PC-relative.
    pub fn emit_branch(&mut self, insn: Insn, target: Label) {
        assert!(insn.is_pc_relative(), "emit_branch requires a PC-relative instruction");
        self.fixups.push((self.insns.len(), target));
        self.insns.push(insn);
    }

    /// Resolves all fixups and returns the finished instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`AsmError::Encode`] if a resolved branch does not fit its
    /// encoding.
    pub fn finish(mut self) -> Result<Vec<Insn>, AsmError> {
        for &(at, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label))?;
            let offset = (target as i64 - at as i64) * Insn::SIZE as i64;
            let patched = self.insns[at].with_pc_rel_offset(offset);
            // Validate the encoding now so errors carry context.
            patched.encode()?;
            self.insns[at] = patched;
        }
        Ok(self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::Reg;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Asm::new();
        let top = asm.new_label();
        let out = asm.new_label();
        asm.bind(top);
        asm.emit_branch(Insn::Cbz { wide: true, rt: Reg::X0, offset: 0 }, out);
        asm.emit(Insn::SubImm {
            wide: true,
            set_flags: false,
            rd: Reg::X0,
            rn: Reg::X0,
            imm12: 1,
            shift12: false,
        });
        asm.emit_branch(Insn::B { offset: 0 }, top);
        asm.bind(out);
        asm.emit(Insn::Ret { rn: Reg::LR });
        let code = asm.finish().unwrap();
        assert_eq!(code[0].pc_rel_offset(), Some(12));
        assert_eq!(code[2].pc_rel_offset(), Some(-8));
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut asm = Asm::new();
        let nowhere = asm.new_label();
        asm.emit_branch(Insn::B { offset: 0 }, nowhere);
        assert!(matches!(asm.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn label_to_self_is_zero_offset() {
        let mut asm = Asm::new();
        let here = asm.new_label();
        asm.bind(here);
        asm.emit_branch(Insn::B { offset: 4 }, here);
        let code = asm.finish().unwrap();
        assert_eq!(code[0], Insn::B { offset: 0 });
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Asm::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn conditional_chain() {
        let mut asm = Asm::new();
        let els = asm.new_label();
        let end = asm.new_label();
        asm.emit_branch(Insn::BCond { cond: Cond::Ne, offset: 0 }, els);
        asm.emit(Insn::Movz { wide: false, rd: Reg::X0, imm16: 1, hw: 0 });
        asm.emit_branch(Insn::B { offset: 0 }, end);
        asm.bind(els);
        asm.emit(Insn::Movz { wide: false, rd: Reg::X0, imm16: 2, hw: 0 });
        asm.bind(end);
        asm.emit(Insn::Ret { rn: Reg::LR });
        let code = asm.finish().unwrap();
        assert_eq!(code[0].pc_rel_offset(), Some(12));
        assert_eq!(code[2].pc_rel_offset(), Some(8));
    }
}
