//! Textual disassembly of the instruction subset.
//!
//! The output follows GNU `objdump` conventions closely enough to be read
//! side by side with real OAT dumps, including alias selection (`mov`,
//! `cmp`, `lsl`, `lsr`) where the canonical form would obscure intent.

use core::fmt;

use crate::insn::{Insn, PairMode};
use crate::reg::reg_name;

fn shex(v: i64) -> String {
    if v < 0 {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("+{v:#x}")
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::B { offset } => write!(f, "b #{}", shex(offset)),
            Insn::Bl { offset } => write!(f, "bl #{}", shex(offset)),
            Insn::BCond { cond, offset } => write!(f, "b.{cond} #{}", shex(offset)),
            Insn::Cbz { wide, rt, offset } => {
                write!(f, "cbz {}, #{}", reg_name(rt, wide, false), shex(offset))
            }
            Insn::Cbnz { wide, rt, offset } => {
                write!(f, "cbnz {}, #{}", reg_name(rt, wide, false), shex(offset))
            }
            Insn::Tbz { rt, bit, offset } => {
                write!(f, "tbz {}, #{bit}, #{}", reg_name(rt, bit >= 32, false), shex(offset))
            }
            Insn::Tbnz { rt, bit, offset } => {
                write!(f, "tbnz {}, #{bit}, #{}", reg_name(rt, bit >= 32, false), shex(offset))
            }
            Insn::Adr { rd, offset } => {
                write!(f, "adr {}, #{}", reg_name(rd, true, false), shex(offset))
            }
            Insn::Adrp { rd, offset } => {
                write!(f, "adrp {}, #{}", reg_name(rd, true, false), shex(offset))
            }
            Insn::LdrLit { wide, rt, offset } => {
                write!(f, "ldr {}, #{}", reg_name(rt, wide, false), shex(offset))
            }
            Insn::Br { rn } => write!(f, "br {}", reg_name(rn, true, false)),
            Insn::Blr { rn } => write!(f, "blr {}", reg_name(rn, true, false)),
            Insn::Ret { rn } => write!(f, "ret {}", reg_name(rn, true, false)),
            Insn::Movz { wide, rd, imm16, hw } => {
                let rd = reg_name(rd, wide, false);
                if hw == 0 {
                    write!(f, "mov {rd}, #{imm16:#x}")
                } else {
                    write!(f, "movz {rd}, #{imm16:#x}, lsl #{}", u32::from(hw) * 16)
                }
            }
            Insn::Movn { wide, rd, imm16, hw } => {
                write!(
                    f,
                    "movn {}, #{imm16:#x}, lsl #{}",
                    reg_name(rd, wide, false),
                    u32::from(hw) * 16
                )
            }
            Insn::Movk { wide, rd, imm16, hw } => {
                write!(
                    f,
                    "movk {}, #{imm16:#x}, lsl #{}",
                    reg_name(rd, wide, false),
                    u32::from(hw) * 16
                )
            }
            Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 }
            | Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                let sub = matches!(self, Insn::SubImm { .. });
                let imm = u64::from(imm12) << if shift12 { 12 } else { 0 };
                let rn_s = reg_name(rn, wide, true);
                if sub && set_flags && rd.is_reg31() {
                    return write!(f, "cmp {rn_s}, #{imm:#x}");
                }
                let mnem = match (sub, set_flags) {
                    (false, false) => "add",
                    (false, true) => "adds",
                    (true, false) => "sub",
                    (true, true) => "subs",
                };
                write!(f, "{mnem} {}, {rn_s}, #{imm:#x}", reg_name(rd, wide, !set_flags))
            }
            Insn::AddReg { wide, set_flags, rd, rn, rm, shift }
            | Insn::SubReg { wide, set_flags, rd, rn, rm, shift } => {
                let sub = matches!(self, Insn::SubReg { .. });
                let rn_s = reg_name(rn, wide, false);
                let rm_s = reg_name(rm, wide, false);
                if sub && set_flags && rd.is_reg31() && shift == 0 {
                    return write!(f, "cmp {rn_s}, {rm_s}");
                }
                let mnem = match (sub, set_flags) {
                    (false, false) => "add",
                    (false, true) => "adds",
                    (true, false) => "sub",
                    (true, true) => "subs",
                };
                write!(f, "{mnem} {}, {rn_s}, {rm_s}", reg_name(rd, wide, false))?;
                if shift != 0 {
                    write!(f, ", lsl #{shift}")?;
                }
                Ok(())
            }
            Insn::AndReg { wide, set_flags, rd, rn, rm, shift } => {
                let mnem = if set_flags { "ands" } else { "and" };
                write_logical(f, mnem, wide, rd, rn, rm, shift)
            }
            Insn::OrrReg { wide, rd, rn, rm, shift } => {
                if rn.is_reg31() && shift == 0 {
                    return write!(
                        f,
                        "mov {}, {}",
                        reg_name(rd, wide, false),
                        reg_name(rm, wide, false)
                    );
                }
                write_logical(f, "orr", wide, rd, rn, rm, shift)
            }
            Insn::EorReg { wide, rd, rn, rm, shift } => {
                write_logical(f, "eor", wide, rd, rn, rm, shift)
            }
            Insn::Sdiv { wide, rd, rn, rm } => write!(
                f,
                "sdiv {}, {}, {}",
                reg_name(rd, wide, false),
                reg_name(rn, wide, false),
                reg_name(rm, wide, false)
            ),
            Insn::Lslv { wide, rd, rn, rm } => write!(
                f,
                "lsl {}, {}, {}",
                reg_name(rd, wide, false),
                reg_name(rn, wide, false),
                reg_name(rm, wide, false)
            ),
            Insn::Asrv { wide, rd, rn, rm } => write!(
                f,
                "asr {}, {}, {}",
                reg_name(rd, wide, false),
                reg_name(rn, wide, false),
                reg_name(rm, wide, false)
            ),
            Insn::Madd { wide, rd, rn, rm, ra } => {
                if ra.is_reg31() {
                    return write!(
                        f,
                        "mul {}, {}, {}",
                        reg_name(rd, wide, false),
                        reg_name(rn, wide, false),
                        reg_name(rm, wide, false)
                    );
                }
                write!(
                    f,
                    "madd {}, {}, {}, {}",
                    reg_name(rd, wide, false),
                    reg_name(rn, wide, false),
                    reg_name(rm, wide, false),
                    reg_name(ra, wide, false)
                )
            }
            Insn::Msub { wide, rd, rn, rm, ra } => write!(
                f,
                "msub {}, {}, {}, {}",
                reg_name(rd, wide, false),
                reg_name(rn, wide, false),
                reg_name(rm, wide, false),
                reg_name(ra, wide, false)
            ),
            Insn::Ubfm { wide, rd, rn, immr, imms } => {
                let width = if wide { 64u8 } else { 32 };
                let rd_s = reg_name(rd, wide, false);
                let rn_s = reg_name(rn, wide, false);
                if imms + 1 == immr && imms != width - 1 {
                    write!(f, "lsl {rd_s}, {rn_s}, #{}", width - immr)
                } else if imms == width - 1 {
                    write!(f, "lsr {rd_s}, {rn_s}, #{immr}")
                } else {
                    write!(f, "ubfm {rd_s}, {rn_s}, #{immr}, #{imms}")
                }
            }
            Insn::Sbfm { wide, rd, rn, immr, imms } => {
                let width = if wide { 64u8 } else { 32 };
                let rd_s = reg_name(rd, wide, false);
                let rn_s = reg_name(rn, wide, false);
                if imms == width - 1 {
                    write!(f, "asr {rd_s}, {rn_s}, #{immr}")
                } else {
                    write!(f, "sbfm {rd_s}, {rn_s}, #{immr}, #{imms}")
                }
            }
            Insn::LdrImm { wide, rt, rn, offset } => write_mem(f, "ldr", wide, rt, rn, offset),
            Insn::StrImm { wide, rt, rn, offset } => write_mem(f, "str", wide, rt, rn, offset),
            Insn::Stp { rt, rt2, rn, offset, mode } => {
                write_pair(f, "stp", rt, rt2, rn, offset, mode)
            }
            Insn::Ldp { rt, rt2, rn, offset, mode } => {
                write_pair(f, "ldp", rt, rt2, rn, offset, mode)
            }
            Insn::Nop => f.write_str("nop"),
            Insn::Brk { imm } => write!(f, "brk #{imm:#x}"),
            Insn::Svc { imm } => write!(f, "svc #{imm:#x}"),
        }
    }
}

fn write_logical(
    f: &mut fmt::Formatter<'_>,
    mnem: &str,
    wide: bool,
    rd: crate::reg::Reg,
    rn: crate::reg::Reg,
    rm: crate::reg::Reg,
    shift: u8,
) -> fmt::Result {
    write!(
        f,
        "{mnem} {}, {}, {}",
        reg_name(rd, wide, false),
        reg_name(rn, wide, false),
        reg_name(rm, wide, false)
    )?;
    if shift != 0 {
        write!(f, ", lsl #{shift}")?;
    }
    Ok(())
}

fn write_mem(
    f: &mut fmt::Formatter<'_>,
    mnem: &str,
    wide: bool,
    rt: crate::reg::Reg,
    rn: crate::reg::Reg,
    offset: u16,
) -> fmt::Result {
    let rt_s = reg_name(rt, wide, false);
    let rn_s = reg_name(rn, true, true);
    if offset == 0 {
        write!(f, "{mnem} {rt_s}, [{rn_s}]")
    } else {
        write!(f, "{mnem} {rt_s}, [{rn_s}, #{offset:#x}]")
    }
}

fn write_pair(
    f: &mut fmt::Formatter<'_>,
    mnem: &str,
    rt: crate::reg::Reg,
    rt2: crate::reg::Reg,
    rn: crate::reg::Reg,
    offset: i16,
    mode: PairMode,
) -> fmt::Result {
    let rt_s = reg_name(rt, true, false);
    let rt2_s = reg_name(rt2, true, false);
    let rn_s = reg_name(rn, true, true);
    match mode {
        PairMode::SignedOffset => write!(f, "{mnem} {rt_s}, {rt2_s}, [{rn_s}, #{offset}]"),
        PairMode::PreIndex => write!(f, "{mnem} {rt_s}, {rt2_s}, [{rn_s}, #{offset}]!"),
        PairMode::PostIndex => write!(f, "{mnem} {rt_s}, {rt2_s}, [{rn_s}], #{offset}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::Reg;

    #[test]
    fn paper_figure_4_patterns_render() {
        // Figure 4a.
        let java_call = [
            Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X0, offset: 24 },
            Insn::Blr { rn: Reg::LR },
        ];
        assert_eq!(java_call[0].to_string(), "ldr x30, [x0, #0x18]");
        assert_eq!(java_call[1].to_string(), "blr x30");
        // Figure 4b.
        let native_call = Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X19, offset: 0x100 };
        assert_eq!(native_call.to_string(), "ldr x30, [x19, #0x100]");
        // Figure 4c.
        let check = [
            Insn::SubImm {
                wide: true,
                set_flags: false,
                rd: Reg::X16,
                rn: Reg::SP,
                imm12: 2,
                shift12: true,
            },
            Insn::LdrImm { wide: false, rt: Reg::ZR, rn: Reg::X16, offset: 0 },
        ];
        assert_eq!(check[0].to_string(), "sub x16, sp, #0x2000");
        assert_eq!(check[1].to_string(), "ldr wzr, [x16]");
    }

    #[test]
    fn aliases() {
        let cmp = Insn::SubReg {
            wide: false,
            set_flags: true,
            rd: Reg::ZR,
            rn: Reg::X2,
            rm: Reg::X1,
            shift: 0,
        };
        assert_eq!(cmp.to_string(), "cmp w2, w1");
        let mov = Insn::OrrReg { wide: true, rd: Reg::X3, rn: Reg::ZR, rm: Reg::X4, shift: 0 };
        assert_eq!(mov.to_string(), "mov x3, x4");
        let movz = Insn::Movz { wide: true, rd: Reg::X0, imm16: 7, hw: 0 };
        assert_eq!(movz.to_string(), "mov x0, #0x7");
        let mul = Insn::Madd { wide: false, rd: Reg::X0, rn: Reg::X1, rm: Reg::X2, ra: Reg::ZR };
        assert_eq!(mul.to_string(), "mul w0, w1, w2");
    }

    #[test]
    fn branches_render_with_signed_offsets() {
        assert_eq!(Insn::B { offset: -8 }.to_string(), "b #-0x8");
        assert_eq!(Insn::BCond { cond: Cond::Ne, offset: 16 }.to_string(), "b.ne #+0x10");
        assert_eq!(
            Insn::Cbz { wide: false, rt: Reg::X0, offset: 0xc }.to_string(),
            "cbz w0, #+0xc"
        );
    }
}
