//! AArch64 general-purpose register names.
//!
//! Register 31 is context-dependent on AArch64: it encodes either the zero
//! register (`XZR`/`WZR`) or the stack pointer (`SP`). The [`Reg`] newtype
//! stores the raw 5-bit encoding; the instruction that uses it decides the
//! interpretation, exactly as in the architecture.

use core::fmt;

/// A general-purpose register encoding (0..=31).
///
/// # Examples
///
/// ```
/// use calibro_isa::Reg;
///
/// let r = Reg::X0;
/// assert_eq!(r.index(), 0);
/// assert_eq!(Reg::LR, Reg::X30);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

#[allow(missing_docs)] // the named architectural registers x0..x30
impl Reg {
    /// The first argument / ArtMethod register.
    pub const X0: Reg = Reg(0);
    pub const X1: Reg = Reg(1);
    pub const X2: Reg = Reg(2);
    pub const X3: Reg = Reg(3);
    pub const X4: Reg = Reg(4);
    pub const X5: Reg = Reg(5);
    pub const X6: Reg = Reg(6);
    pub const X7: Reg = Reg(7);
    pub const X8: Reg = Reg(8);
    pub const X9: Reg = Reg(9);
    pub const X10: Reg = Reg(10);
    pub const X11: Reg = Reg(11);
    pub const X12: Reg = Reg(12);
    pub const X13: Reg = Reg(13);
    pub const X14: Reg = Reg(14);
    pub const X15: Reg = Reg(15);
    /// First intra-procedure-call scratch register (veneer scratch).
    pub const X16: Reg = Reg(16);
    /// Second intra-procedure-call scratch register.
    pub const X17: Reg = Reg(17);
    pub const X18: Reg = Reg(18);
    /// The ART thread register: base of the runtime entrypoint table.
    pub const X19: Reg = Reg(19);
    pub const X20: Reg = Reg(20);
    pub const X21: Reg = Reg(21);
    pub const X22: Reg = Reg(22);
    pub const X23: Reg = Reg(23);
    pub const X24: Reg = Reg(24);
    pub const X25: Reg = Reg(25);
    pub const X26: Reg = Reg(26);
    pub const X27: Reg = Reg(27);
    pub const X28: Reg = Reg(28);
    /// Frame pointer.
    pub const X29: Reg = Reg(29);
    /// Link register.
    pub const X30: Reg = Reg(30);
    /// Alias for [`Reg::X30`].
    pub const LR: Reg = Reg(30);
    /// Alias for [`Reg::X29`].
    pub const FP: Reg = Reg(29);
    /// Register 31 read as zero / ignored on write.
    pub const ZR: Reg = Reg(31);
    /// Register 31 interpreted as the stack pointer.
    pub const SP: Reg = Reg(31);

    /// Creates a register from its 5-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(index <= 31, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from its 5-bit encoding without bounds checking
    /// the semantic range; the value is masked to 5 bits.
    #[must_use]
    pub fn from_bits(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// Returns the 5-bit hardware encoding.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns the encoding widened to `u32`, for use in encoders.
    #[must_use]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// Returns `true` for encoding 31 (either `ZR` or `SP`).
    #[must_use]
    pub fn is_reg31(self) -> bool {
        self.0 == 31
    }

    /// Returns `true` if this is the link register `x30`.
    #[must_use]
    pub fn is_lr(self) -> bool {
        self.0 == 30
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 31 {
            write!(f, "r31")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Formats a register operand at a given width, mapping encoding 31 to
/// either the zero register or `sp`/`wsp`.
#[must_use]
pub fn reg_name(reg: Reg, wide: bool, sp: bool) -> String {
    match (reg.index(), wide, sp) {
        (31, true, true) => "sp".to_owned(),
        (31, false, true) => "wsp".to_owned(),
        (31, true, false) => "xzr".to_owned(),
        (31, false, false) => "wzr".to_owned(),
        (n, true, _) => format!("x{n}"),
        (n, false, _) => format!("w{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_encodings() {
        assert_eq!(Reg::X0.index(), 0);
        assert_eq!(Reg::X19.index(), 19);
        assert_eq!(Reg::LR.index(), 30);
        assert_eq!(Reg::SP.index(), 31);
        assert_eq!(Reg::ZR, Reg::SP); // same encoding, context decides
    }

    #[test]
    fn from_bits_masks() {
        assert_eq!(Reg::from_bits(0x3f).index(), 31);
        assert_eq!(Reg::from_bits(0x22).index(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(reg_name(Reg::X3, true, false), "x3");
        assert_eq!(reg_name(Reg::X3, false, false), "w3");
        assert_eq!(reg_name(Reg::SP, true, true), "sp");
        assert_eq!(reg_name(Reg::ZR, true, false), "xzr");
        assert_eq!(reg_name(Reg::ZR, false, false), "wzr");
    }

    #[test]
    fn lr_predicate() {
        assert!(Reg::LR.is_lr());
        assert!(!Reg::X0.is_lr());
        assert!(Reg::SP.is_reg31());
    }
}
