//! AArch64 condition codes.

use core::fmt;

/// A condition code for `b.cond` and conditional-select instructions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z set).
    Eq = 0,
    /// Not equal (Z clear).
    Ne = 1,
    /// Carry set / unsigned higher or same.
    Cs = 2,
    /// Carry clear / unsigned lower.
    Cc = 3,
    /// Minus / negative (N set).
    Mi = 4,
    /// Plus / positive or zero (N clear).
    Pl = 5,
    /// Overflow (V set).
    Vs = 6,
    /// No overflow (V clear).
    Vc = 7,
    /// Unsigned higher (C set and Z clear).
    Hi = 8,
    /// Unsigned lower or same (C clear or Z set).
    Ls = 9,
    /// Signed greater than or equal (N == V).
    Ge = 10,
    /// Signed less than (N != V).
    Lt = 11,
    /// Signed greater than (Z clear and N == V).
    Gt = 12,
    /// Signed less than or equal (Z set or N != V).
    Le = 13,
    /// Always.
    Al = 14,
    /// Always (second encoding, `nv`).
    Nv = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// Returns the 4-bit hardware encoding.
    #[must_use]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes a 4-bit encoding (the value is masked to 4 bits).
    #[must_use]
    pub fn from_bits(bits: u32) -> Cond {
        Cond::ALL[(bits & 0xf) as usize]
    }

    /// Returns the logically inverted condition (e.g. `Eq` -> `Ne`).
    ///
    /// `Al` and `Nv` invert to each other, matching the architecture's
    /// encoding-level inversion (bit 0 flip), although both behave as
    /// "always" when executed.
    #[must_use]
    pub fn invert(self) -> Cond {
        Cond::from_bits(self.bits() ^ 1)
    }

    /// Evaluates the condition against NZCV flags.
    #[must_use]
    pub fn holds(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al | Cond::Nv => true,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "al",
            Cond::Nv => "nv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), c);
        }
    }

    #[test]
    fn inversion_pairs() {
        assert_eq!(Cond::Eq.invert(), Cond::Ne);
        assert_eq!(Cond::Ge.invert(), Cond::Lt);
        assert_eq!(Cond::Hi.invert(), Cond::Ls);
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
    }

    #[test]
    fn flag_semantics() {
        // 3 - 3: Z=1, C=1 (no borrow)
        assert!(Cond::Eq.holds(false, true, true, false));
        assert!(Cond::Ls.holds(false, true, true, false));
        assert!(!Cond::Hi.holds(false, true, true, false));
        // 2 - 3: N=1, C=0 (borrow), V=0
        assert!(Cond::Lt.holds(true, false, false, false));
        assert!(Cond::Cc.holds(true, false, false, false));
        assert!(!Cond::Ge.holds(true, false, false, false));
        // always
        assert!(Cond::Al.holds(false, false, false, false));
        assert!(Cond::Nv.holds(false, false, false, false));
    }

    #[test]
    fn complementary_conditions_partition() {
        // For every flag state, exactly one of (cond, !cond) holds,
        // except the always-true pair.
        for bits in 0..16u32 {
            let n = bits & 1 != 0;
            let z = bits & 2 != 0;
            let c = bits & 4 != 0;
            let v = bits & 8 != 0;
            for cond in &Cond::ALL[..14] {
                assert_ne!(
                    cond.holds(n, z, c, v),
                    cond.invert().holds(n, z, c, v),
                    "cond {cond} at nzcv={bits:04b}"
                );
            }
        }
    }
}
