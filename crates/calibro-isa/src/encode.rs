//! Binary encoding of the instruction subset into real AArch64 machine
//! words.
//!
//! Every encoder produces the exact bit pattern an assembler would, so the
//! serialized `.text` segment measured by the experiments is genuine
//! AArch64 machine code, byte for byte.

use core::fmt;

use crate::insn::{Insn, PairMode};

/// An error produced when an instruction's operands do not fit its
/// encoding (offset out of range, misaligned target, bad immediate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EncodeError {
    insn: Insn,
    reason: &'static str,
}

impl EncodeError {
    fn new(insn: &Insn, reason: &'static str) -> EncodeError {
        EncodeError { insn: *insn, reason }
    }

    /// The instruction that failed to encode.
    #[must_use]
    pub fn insn(&self) -> &Insn {
        &self.insn
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot encode {:?}: {}", self.insn, self.reason)
    }
}

impl std::error::Error for EncodeError {}

fn sf(wide: bool) -> u32 {
    u32::from(wide) << 31
}

/// Checks that `offset` is 4-aligned and fits in a signed `bits`-wide
/// word-scaled immediate; returns the masked scaled field.
fn branch_imm(insn: &Insn, offset: i64, bits: u32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::new(insn, "branch offset not 4-aligned"));
    }
    let scaled = offset / 4;
    let limit = 1i64 << (bits - 1);
    if scaled < -limit || scaled >= limit {
        return Err(EncodeError::new(insn, "branch offset out of range"));
    }
    Ok((scaled as u32) & ((1u32 << bits) - 1))
}

impl Insn {
    /// Encodes the instruction into its 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an operand does not fit the encoding:
    /// out-of-range or misaligned PC-relative offsets, immediates wider
    /// than their fields, or shift amounts that exceed the register width.
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let word = match *self {
            Insn::B { offset } => 0x1400_0000 | branch_imm(self, offset, 26)?,
            Insn::Bl { offset } => 0x9400_0000 | branch_imm(self, offset, 26)?,
            Insn::BCond { cond, offset } => {
                0x5400_0000 | (branch_imm(self, offset, 19)? << 5) | cond.bits()
            }
            Insn::Cbz { wide, rt, offset } => {
                sf(wide) | 0x3400_0000 | (branch_imm(self, offset, 19)? << 5) | rt.bits()
            }
            Insn::Cbnz { wide, rt, offset } => {
                sf(wide) | 0x3500_0000 | (branch_imm(self, offset, 19)? << 5) | rt.bits()
            }
            Insn::Tbz { rt, bit, offset } => {
                if bit > 63 {
                    return Err(EncodeError::new(self, "tested bit exceeds 63"));
                }
                let b5 = u32::from(bit >> 5) << 31;
                let b40 = u32::from(bit & 0x1f) << 19;
                b5 | 0x3600_0000 | b40 | (branch_imm(self, offset, 14)? << 5) | rt.bits()
            }
            Insn::Tbnz { rt, bit, offset } => {
                if bit > 63 {
                    return Err(EncodeError::new(self, "tested bit exceeds 63"));
                }
                let b5 = u32::from(bit >> 5) << 31;
                let b40 = u32::from(bit & 0x1f) << 19;
                b5 | 0x3700_0000 | b40 | (branch_imm(self, offset, 14)? << 5) | rt.bits()
            }
            Insn::Adr { rd, offset } => {
                if !(-(1 << 20)..1 << 20).contains(&offset) {
                    return Err(EncodeError::new(self, "adr offset out of +/-1MiB range"));
                }
                let imm = (offset as u32) & 0x1f_ffff;
                ((imm & 3) << 29) | 0x1000_0000 | ((imm >> 2) << 5) | rd.bits()
            }
            Insn::Adrp { rd, offset } => {
                if offset % 4096 != 0 {
                    return Err(EncodeError::new(self, "adrp offset not page-aligned"));
                }
                let pages = offset >> 12;
                if !(-(1i64 << 20)..1i64 << 20).contains(&pages) {
                    return Err(EncodeError::new(self, "adrp offset out of +/-4GiB range"));
                }
                let imm = (pages as u32) & 0x1f_ffff;
                ((imm & 3) << 29) | 0x9000_0000 | ((imm >> 2) << 5) | rd.bits()
            }
            Insn::LdrLit { wide, rt, offset } => {
                let base = if wide { 0x5800_0000 } else { 0x1800_0000 };
                base | (branch_imm(self, offset, 19)? << 5) | rt.bits()
            }

            Insn::Br { rn } => 0xd61f_0000 | (rn.bits() << 5),
            Insn::Blr { rn } => 0xd63f_0000 | (rn.bits() << 5),
            Insn::Ret { rn } => 0xd65f_0000 | (rn.bits() << 5),

            Insn::Movn { wide, rd, imm16, hw }
            | Insn::Movz { wide, rd, imm16, hw }
            | Insn::Movk { wide, rd, imm16, hw } => {
                let max_hw = if wide { 3 } else { 1 };
                if hw > max_hw {
                    return Err(EncodeError::new(self, "hw shift exceeds register width"));
                }
                let opc = match self {
                    Insn::Movn { .. } => 0x1280_0000,
                    Insn::Movz { .. } => 0x5280_0000,
                    _ => 0x7280_0000,
                };
                sf(wide) | opc | (u32::from(hw) << 21) | (u32::from(imm16) << 5) | rd.bits()
            }

            Insn::AddImm { wide, set_flags, rd, rn, imm12, shift12 }
            | Insn::SubImm { wide, set_flags, rd, rn, imm12, shift12 } => {
                if imm12 >= 1 << 12 {
                    return Err(EncodeError::new(self, "immediate exceeds 12 bits"));
                }
                let op = u32::from(matches!(self, Insn::SubImm { .. })) << 30;
                let s = u32::from(set_flags) << 29;
                sf(wide)
                    | op
                    | s
                    | 0x1100_0000
                    | (u32::from(shift12) << 22)
                    | (u32::from(imm12) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::AddReg { wide, set_flags, rd, rn, rm, shift }
            | Insn::SubReg { wide, set_flags, rd, rn, rm, shift } => {
                check_shift(self, wide, shift)?;
                let op = u32::from(matches!(self, Insn::SubReg { .. })) << 30;
                let s = u32::from(set_flags) << 29;
                sf(wide)
                    | op
                    | s
                    | 0x0b00_0000
                    | (rm.bits() << 16)
                    | (u32::from(shift) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::AndReg { wide, set_flags, rd, rn, rm, shift } => {
                check_shift(self, wide, shift)?;
                let opc = if set_flags { 0x6a00_0000 } else { 0x0a00_0000 };
                sf(wide)
                    | opc
                    | (rm.bits() << 16)
                    | (u32::from(shift) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }
            Insn::OrrReg { wide, rd, rn, rm, shift } => {
                check_shift(self, wide, shift)?;
                sf(wide)
                    | 0x2a00_0000
                    | (rm.bits() << 16)
                    | (u32::from(shift) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }
            Insn::EorReg { wide, rd, rn, rm, shift } => {
                check_shift(self, wide, shift)?;
                sf(wide)
                    | 0x4a00_0000
                    | (rm.bits() << 16)
                    | (u32::from(shift) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::Sdiv { wide, rd, rn, rm } => {
                sf(wide) | 0x1ac0_0c00 | (rm.bits() << 16) | (rn.bits() << 5) | rd.bits()
            }
            Insn::Lslv { wide, rd, rn, rm } => {
                sf(wide) | 0x1ac0_2000 | (rm.bits() << 16) | (rn.bits() << 5) | rd.bits()
            }
            Insn::Asrv { wide, rd, rn, rm } => {
                sf(wide) | 0x1ac0_2800 | (rm.bits() << 16) | (rn.bits() << 5) | rd.bits()
            }

            Insn::Madd { wide, rd, rn, rm, ra } => {
                sf(wide)
                    | 0x1b00_0000
                    | (rm.bits() << 16)
                    | (ra.bits() << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }
            Insn::Msub { wide, rd, rn, rm, ra } => {
                sf(wide)
                    | 0x1b00_8000
                    | (rm.bits() << 16)
                    | (ra.bits() << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::Sbfm { wide, rd, rn, immr, imms } => {
                let width: u8 = if wide { 64 } else { 32 };
                if immr >= width || imms >= width {
                    return Err(EncodeError::new(self, "bitfield position exceeds width"));
                }
                let n = u32::from(wide) << 22;
                sf(wide)
                    | 0x1300_0000
                    | n
                    | (u32::from(immr) << 16)
                    | (u32::from(imms) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::Ubfm { wide, rd, rn, immr, imms } => {
                let width: u8 = if wide { 64 } else { 32 };
                if immr >= width || imms >= width {
                    return Err(EncodeError::new(self, "bitfield position exceeds width"));
                }
                let n = u32::from(wide) << 22;
                sf(wide)
                    | 0x5300_0000
                    | n
                    | (u32::from(immr) << 16)
                    | (u32::from(imms) << 10)
                    | (rn.bits() << 5)
                    | rd.bits()
            }

            Insn::LdrImm { wide, rt, rn, offset } | Insn::StrImm { wide, rt, rn, offset } => {
                let scale: u16 = if wide { 8 } else { 4 };
                if offset % scale != 0 {
                    return Err(EncodeError::new(self, "load/store offset misaligned"));
                }
                let imm12 = offset / scale;
                if imm12 >= 1 << 12 {
                    return Err(EncodeError::new(self, "load/store offset exceeds imm12"));
                }
                let size = if wide { 0xc000_0000 } else { 0x8000_0000 };
                let opc = u32::from(matches!(self, Insn::LdrImm { .. })) << 22;
                size | 0x3900_0000 | opc | (u32::from(imm12) << 10) | (rn.bits() << 5) | rt.bits()
            }

            Insn::Stp { rt, rt2, rn, offset, mode } | Insn::Ldp { rt, rt2, rn, offset, mode } => {
                if offset % 8 != 0 {
                    return Err(EncodeError::new(self, "pair offset misaligned"));
                }
                let imm7 = offset / 8;
                if !(-64..64).contains(&imm7) {
                    return Err(EncodeError::new(self, "pair offset exceeds imm7"));
                }
                let mode_bits = match mode {
                    PairMode::PostIndex => 1u32,
                    PairMode::SignedOffset => 2,
                    PairMode::PreIndex => 3,
                } << 23;
                let l = u32::from(matches!(self, Insn::Ldp { .. })) << 22;
                0xa800_0000
                    | mode_bits
                    | l
                    | (((imm7 as u32) & 0x7f) << 15)
                    | (rt2.bits() << 10)
                    | (rn.bits() << 5)
                    | rt.bits()
            }

            Insn::Nop => 0xd503_201f,
            Insn::Brk { imm } => 0xd420_0000 | (u32::from(imm) << 5),
            Insn::Svc { imm } => 0xd400_0001 | (u32::from(imm) << 5),
        };
        Ok(word)
    }
}

fn check_shift(insn: &Insn, wide: bool, shift: u8) -> Result<(), EncodeError> {
    let width: u8 = if wide { 64 } else { 32 };
    if shift >= width {
        return Err(EncodeError::new(insn, "register shift exceeds width"));
    }
    Ok(())
}

/// Convenience: encodes a slice of instructions into a little-endian byte
/// buffer.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_all(insns: &[Insn]) -> Result<Vec<u8>, EncodeError> {
    let mut bytes = Vec::with_capacity(insns.len() * 4);
    for insn in insns {
        bytes.extend_from_slice(&insn.encode()?.to_le_bytes());
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::reg::Reg;

    // Golden encodings cross-checked against GNU as output.
    #[test]
    fn golden_branches() {
        assert_eq!(Insn::B { offset: 0 }.encode().unwrap(), 0x1400_0000);
        assert_eq!(Insn::B { offset: 4 }.encode().unwrap(), 0x1400_0001);
        assert_eq!(Insn::B { offset: -4 }.encode().unwrap(), 0x17ff_ffff);
        assert_eq!(Insn::Bl { offset: 8 }.encode().unwrap(), 0x9400_0002);
        assert_eq!(Insn::BCond { cond: Cond::Eq, offset: 8 }.encode().unwrap(), 0x5400_0040);
        assert_eq!(
            Insn::Cbz { wide: false, rt: Reg::X0, offset: 0xc }.encode().unwrap(),
            0x3400_0060
        );
        assert_eq!(
            Insn::Cbnz { wide: true, rt: Reg::X3, offset: -8 }.encode().unwrap(),
            0xb5ff_ffc3
        );
        assert_eq!(Insn::Tbz { rt: Reg::X1, bit: 33, offset: 16 }.encode().unwrap(), 0xb608_0081);
    }

    #[test]
    fn golden_indirect() {
        assert_eq!(Insn::Br { rn: Reg::X30 }.encode().unwrap(), 0xd61f_03c0);
        assert_eq!(Insn::Blr { rn: Reg::X30 }.encode().unwrap(), 0xd63f_03c0);
        assert_eq!(Insn::Ret { rn: Reg::X30 }.encode().unwrap(), 0xd65f_03c0);
    }

    #[test]
    fn golden_stack_overflow_check_pattern() {
        // The paper's Figure 4c: sub x16, sp, #0x2000 ; ldr wzr, [x16]
        let sub = Insn::SubImm {
            wide: true,
            set_flags: false,
            rd: Reg::X16,
            rn: Reg::SP,
            imm12: 2, // 2 << 12 = 0x2000
            shift12: true,
        };
        assert_eq!(sub.encode().unwrap(), 0xd140_0bf0);
        let ldr = Insn::LdrImm { wide: false, rt: Reg::ZR, rn: Reg::X16, offset: 0 };
        assert_eq!(ldr.encode().unwrap(), 0xb940_021f);
    }

    #[test]
    fn golden_java_call_pattern() {
        // The paper's Figure 4a: ldr x30, [x0, #offset] ; blr x30
        let ldr = Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X0, offset: 24 };
        assert_eq!(ldr.encode().unwrap(), 0xf940_0c1e);
        assert_eq!(Insn::Blr { rn: Reg::LR }.encode().unwrap(), 0xd63f_03c0);
    }

    #[test]
    fn golden_moves_and_arith() {
        assert_eq!(
            Insn::Movz { wide: true, rd: Reg::X0, imm16: 42, hw: 0 }.encode().unwrap(),
            0xd280_0540
        );
        assert_eq!(
            Insn::AddImm {
                wide: true,
                set_flags: false,
                rd: Reg::X0,
                rn: Reg::X1,
                imm12: 1,
                shift12: false
            }
            .encode()
            .unwrap(),
            0x9100_0420
        );
        // cmp w2, w1 == subs wzr, w2, w1
        assert_eq!(
            Insn::SubReg {
                wide: false,
                set_flags: true,
                rd: Reg::ZR,
                rn: Reg::X2,
                rm: Reg::X1,
                shift: 0
            }
            .encode()
            .unwrap(),
            0x6b01_005f
        );
        // mov x3, x4 == orr x3, xzr, x4
        assert_eq!(
            Insn::OrrReg { wide: true, rd: Reg::X3, rn: Reg::ZR, rm: Reg::X4, shift: 0 }
                .encode()
                .unwrap(),
            0xaa04_03e3
        );
    }

    #[test]
    fn golden_pairs() {
        // stp x29, x30, [sp, #-16]!
        let stp = Insn::Stp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::SP,
            offset: -16,
            mode: PairMode::PreIndex,
        };
        assert_eq!(stp.encode().unwrap(), 0xa9bf_7bfd);
        // ldp x29, x30, [sp], #16
        let ldp = Insn::Ldp {
            rt: Reg::FP,
            rt2: Reg::LR,
            rn: Reg::SP,
            offset: 16,
            mode: PairMode::PostIndex,
        };
        assert_eq!(ldp.encode().unwrap(), 0xa8c1_7bfd);
    }

    #[test]
    fn golden_misc() {
        assert_eq!(Insn::Nop.encode().unwrap(), 0xd503_201f);
        assert_eq!(Insn::Brk { imm: 1 }.encode().unwrap(), 0xd420_0020);
        assert_eq!(Insn::Svc { imm: 0 }.encode().unwrap(), 0xd400_0001);
        assert_eq!(Insn::Adr { rd: Reg::X0, offset: 12 }.encode().unwrap(), 0x1000_0060);
        assert_eq!(Insn::Adrp { rd: Reg::X1, offset: 4096 }.encode().unwrap(), 0xb000_0001);
        assert_eq!(
            Insn::LdrLit { wide: true, rt: Reg::X2, offset: 8 }.encode().unwrap(),
            0x5800_0042
        );
    }

    #[test]
    fn range_errors() {
        assert!(Insn::B { offset: 3 }.encode().is_err());
        assert!(Insn::B { offset: 1 << 30 }.encode().is_err());
        assert!(Insn::BCond { cond: Cond::Ne, offset: 1 << 25 }.encode().is_err());
        assert!(Insn::Tbz { rt: Reg::X0, bit: 64, offset: 4 }.encode().is_err());
        assert!(Insn::Adr { rd: Reg::X0, offset: 1 << 22 }.encode().is_err());
        assert!(Insn::Adrp { rd: Reg::X0, offset: 4095 }.encode().is_err());
        assert!(
            Insn::Movz { wide: false, rd: Reg::X0, imm16: 0, hw: 2 }.encode().is_err(),
            "hw=2 invalid for 32-bit move wide"
        );
        assert!(
            Insn::LdrImm { wide: true, rt: Reg::X0, rn: Reg::X1, offset: 7 }.encode().is_err(),
            "misaligned"
        );
        assert!(
            Insn::Stp {
                rt: Reg::X0,
                rt2: Reg::X1,
                rn: Reg::SP,
                offset: 512,
                mode: PairMode::SignedOffset
            }
            .encode()
            .is_err(),
            "imm7 range"
        );
    }

    #[test]
    fn encode_all_concatenates() {
        let bytes = encode_all(&[Insn::Nop, Insn::Ret { rn: Reg::LR }]).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &0xd503_201fu32.to_le_bytes());
        assert_eq!(&bytes[4..8], &0xd65f_03c0u32.to_le_bytes());
    }
}
