//! # calibro-isa
//!
//! The AArch64 instruction subset underpinning the Calibro reproduction:
//! registers, condition codes, an instruction model with real machine-word
//! encodings, a decoder, a disassembler, and a small label-fixup assembler.
//!
//! Calibro (CGO '25) outlines repeated *binary* code sequences in Android
//! OAT files and patches PC-relative instructions afterwards. Everything
//! the paper's link-time machinery manipulates lives here:
//!
//! * the full PC-relative set of §3.3.4 (`b`, `bl`, `b.cond`, `cbz`,
//!   `cbnz`, `tbz`, `tbnz`, `adr`, `adrp`, `ldr` literal) with target
//!   arithmetic and offset patching ([`Insn::with_pc_rel_offset`]);
//! * terminator/call/indirect-jump classification matching the metadata
//!   categories of §3.2 ([`Insn::is_terminator`], [`Insn::is_call`],
//!   [`Insn::is_indirect_jump`]);
//! * link-register dataflow queries used to prove outlining safety
//!   ([`Insn::reads_lr`], [`Insn::writes_lr`]).
//!
//! # Examples
//!
//! Reproduce the paper's Table 2 patching step — a `cbz` whose target moved
//! because two following instructions were outlined into one `bl`:
//!
//! ```
//! use calibro_isa::{decode, Insn, Reg};
//!
//! let cbz = Insn::Cbz { wide: false, rt: Reg::X0, offset: 0xc };
//! assert_eq!(cbz.pc_rel_target(0x138320), Some(0x13832c));
//!
//! // After outlining, the logical target lives at 0x138328: patch it.
//! let patched = cbz.with_pc_rel_offset(0x8);
//! assert_eq!(patched.pc_rel_target(0x138320), Some(0x138328));
//!
//! // The patched instruction is a real machine word.
//! let word = patched.encode()?;
//! assert_eq!(decode(word)?, patched);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod buffer;
mod cond;
mod decode;
mod disasm;
mod encode;
mod insn;
mod reg;

pub use buffer::{Asm, AsmError, Label};
pub use cond::Cond;
pub use decode::{decode, decode_all, DecodeError};
pub use encode::{encode_all, EncodeError};
pub use insn::{Insn, PairMode};
pub use reg::{reg_name, Reg};
