//! The AArch64 instruction subset used by the Calibro pipeline.
//!
//! The subset covers everything ART's code generator needs for the
//! workloads in this reproduction, and — crucially — **every PC-relative
//! addressing form the paper's link-time patcher must handle** (§3.3.4):
//! `b`, `bl`, `b.cond`, `cbz`, `cbnz`, `tbz`, `tbnz`, `adr`, `adrp` and the
//! `ldr` literal form.
//!
//! All PC-relative offsets are stored as **byte offsets relative to the
//! address of the instruction itself**, exactly as the architecture defines
//! them, so `target = insn_address + offset` (for `adrp`,
//! `target_page = align_down(insn_address, 4096) + offset`).

use crate::cond::Cond;
use crate::reg::Reg;

/// Addressing mode for load/store pair instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PairMode {
    /// `[xn, #imm]` — base register unchanged.
    SignedOffset,
    /// `[xn, #imm]!` — base updated before access.
    PreIndex,
    /// `[xn], #imm` — base updated after access.
    PostIndex,
}

/// One decoded AArch64 instruction.
///
/// `wide == true` selects the 64-bit (`x`) register view, `false` the
/// 32-bit (`w`) view, mirroring the `sf` bit in the encodings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant fields mirror the architectural operand names
pub enum Insn {
    /// Unconditional PC-relative branch.
    B { offset: i64 },
    /// Branch with link (call); writes the return address to `x30`.
    Bl { offset: i64 },
    /// Conditional PC-relative branch.
    BCond { cond: Cond, offset: i64 },
    /// Compare and branch if zero.
    Cbz { wide: bool, rt: Reg, offset: i64 },
    /// Compare and branch if not zero.
    Cbnz { wide: bool, rt: Reg, offset: i64 },
    /// Test bit and branch if zero.
    Tbz { rt: Reg, bit: u8, offset: i64 },
    /// Test bit and branch if not zero.
    Tbnz { rt: Reg, bit: u8, offset: i64 },
    /// Form PC-relative address.
    Adr { rd: Reg, offset: i64 },
    /// Form PC-relative page address (offset is a byte multiple of 4096).
    Adrp { rd: Reg, offset: i64 },
    /// Load register from a PC-relative literal pool slot.
    LdrLit { wide: bool, rt: Reg, offset: i64 },

    /// Indirect branch.
    Br { rn: Reg },
    /// Indirect call; writes the return address to `x30`.
    Blr { rn: Reg },
    /// Return (indirect branch, conventionally via `x30`).
    Ret { rn: Reg },

    /// Move wide with zero.
    Movz { wide: bool, rd: Reg, imm16: u16, hw: u8 },
    /// Move wide with NOT.
    Movn { wide: bool, rd: Reg, imm16: u16, hw: u8 },
    /// Move wide with keep.
    Movk { wide: bool, rd: Reg, imm16: u16, hw: u8 },

    /// Add immediate; `set_flags` selects `adds`/`cmn`-style behaviour.
    AddImm { wide: bool, set_flags: bool, rd: Reg, rn: Reg, imm12: u16, shift12: bool },
    /// Subtract immediate; with `set_flags` and `rd == ZR` this is `cmp`.
    SubImm { wide: bool, set_flags: bool, rd: Reg, rn: Reg, imm12: u16, shift12: bool },
    /// Add shifted register (LSL shift only in this subset).
    AddReg { wide: bool, set_flags: bool, rd: Reg, rn: Reg, rm: Reg, shift: u8 },
    /// Subtract shifted register; with `set_flags` and `rd == ZR` this is `cmp`.
    SubReg { wide: bool, set_flags: bool, rd: Reg, rn: Reg, rm: Reg, shift: u8 },

    /// Bitwise AND (shifted register); `set_flags` selects `ands`/`tst`.
    AndReg { wide: bool, set_flags: bool, rd: Reg, rn: Reg, rm: Reg, shift: u8 },
    /// Bitwise OR (shifted register); `orr rd, zr, rm` is the canonical `mov`.
    OrrReg { wide: bool, rd: Reg, rn: Reg, rm: Reg, shift: u8 },
    /// Bitwise exclusive OR (shifted register).
    EorReg { wide: bool, rd: Reg, rn: Reg, rm: Reg, shift: u8 },

    /// Signed divide: `rd = rn / rm` (0 on division by zero, per the
    /// architecture — Java-level throws are generated as explicit checks).
    Sdiv { wide: bool, rd: Reg, rn: Reg, rm: Reg },
    /// Logical shift left by register: `rd = rn << (rm % width)`.
    Lslv { wide: bool, rd: Reg, rn: Reg, rm: Reg },
    /// Arithmetic shift right by register: `rd = rn >> (rm % width)`.
    Asrv { wide: bool, rd: Reg, rn: Reg, rm: Reg },
    /// Multiply-add: `rd = ra + rn * rm`.
    Madd { wide: bool, rd: Reg, rn: Reg, rm: Reg, ra: Reg },
    /// Multiply-subtract: `rd = ra - rn * rm`.
    Msub { wide: bool, rd: Reg, rn: Reg, rm: Reg, ra: Reg },

    /// Unsigned bitfield move (the encoding behind `lsl`/`lsr` aliases).
    Ubfm { wide: bool, rd: Reg, rn: Reg, immr: u8, imms: u8 },
    /// Signed bitfield move (the encoding behind the `asr` alias).
    Sbfm { wide: bool, rd: Reg, rn: Reg, immr: u8, imms: u8 },

    /// Load register, unsigned scaled immediate offset (byte offset stored).
    LdrImm { wide: bool, rt: Reg, rn: Reg, offset: u16 },
    /// Store register, unsigned scaled immediate offset (byte offset stored).
    StrImm { wide: bool, rt: Reg, rn: Reg, offset: u16 },

    /// Store pair of 64-bit registers.
    Stp { rt: Reg, rt2: Reg, rn: Reg, offset: i16, mode: PairMode },
    /// Load pair of 64-bit registers.
    Ldp { rt: Reg, rt2: Reg, rn: Reg, offset: i16, mode: PairMode },

    /// No operation.
    Nop,
    /// Breakpoint.
    Brk { imm: u16 },
    /// Supervisor call (used for the simulated runtime's "throw" path).
    Svc { imm: u16 },
}

impl Insn {
    /// Size in bytes of every instruction in this ISA.
    pub const SIZE: u64 = 4;

    /// Returns `true` if this instruction ends a basic block: unconditional
    /// and conditional branches, test/compare-and-branch, indirect branches
    /// and returns.
    ///
    /// Calls (`bl`, `blr`) are *not* terminators — control returns to the
    /// following instruction — matching the paper's terminator-instruction
    /// definition ("jump and return instructions").
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::B { .. }
                | Insn::BCond { .. }
                | Insn::Cbz { .. }
                | Insn::Cbnz { .. }
                | Insn::Tbz { .. }
                | Insn::Tbnz { .. }
                | Insn::Br { .. }
                | Insn::Ret { .. }
        )
    }

    /// Returns `true` for call instructions (`bl`, `blr`).
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(self, Insn::Bl { .. } | Insn::Blr { .. })
    }

    /// Returns `true` for the indirect jump the paper's LTBO must flag:
    /// `br` (used e.g. for switch tables). `ret` and `blr` are excluded —
    /// `ret` follows the return convention and `blr` is a call.
    #[must_use]
    pub fn is_indirect_jump(&self) -> bool {
        matches!(self, Insn::Br { .. })
    }

    /// Returns `true` if the instruction addresses memory or code relative
    /// to the program counter (the set listed in §3.3.4 of the paper).
    #[must_use]
    pub fn is_pc_relative(&self) -> bool {
        self.pc_rel_offset().is_some()
    }

    /// Returns the PC-relative byte offset carried by this instruction,
    /// or `None` if it is not PC-relative.
    #[must_use]
    pub fn pc_rel_offset(&self) -> Option<i64> {
        match *self {
            Insn::B { offset }
            | Insn::Bl { offset }
            | Insn::BCond { offset, .. }
            | Insn::Cbz { offset, .. }
            | Insn::Cbnz { offset, .. }
            | Insn::Tbz { offset, .. }
            | Insn::Tbnz { offset, .. }
            | Insn::Adr { offset, .. }
            | Insn::Adrp { offset, .. }
            | Insn::LdrLit { offset, .. } => Some(offset),
            _ => None,
        }
    }

    /// Returns a copy of this instruction with its PC-relative offset
    /// replaced — the primitive the paper's patching step (§3.3.4) uses.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not PC-relative, or if `offset` violates
    /// the form's alignment (4 bytes for branches/literals, 4096 for `adrp`).
    /// Encoding-range violations are caught later by the encoder.
    #[must_use]
    pub fn with_pc_rel_offset(&self, offset: i64) -> Insn {
        let mut insn = *self;
        match &mut insn {
            Insn::B { offset: o }
            | Insn::Bl { offset: o }
            | Insn::BCond { offset: o, .. }
            | Insn::Cbz { offset: o, .. }
            | Insn::Cbnz { offset: o, .. }
            | Insn::Tbz { offset: o, .. }
            | Insn::Tbnz { offset: o, .. }
            | Insn::LdrLit { offset: o, .. } => {
                assert!(offset % 4 == 0, "branch/literal offset {offset:#x} must be 4-aligned");
                *o = offset;
            }
            Insn::Adr { offset: o, .. } => *o = offset,
            Insn::Adrp { offset: o, .. } => {
                assert!(offset % 4096 == 0, "adrp offset {offset:#x} must be page-aligned");
                *o = offset;
            }
            _ => panic!("with_pc_rel_offset on non-PC-relative instruction {insn:?}"),
        }
        insn
    }

    /// Computes the absolute target address of a PC-relative instruction
    /// located at `address`, or `None` if not PC-relative.
    ///
    /// For `adrp` the result is the target *page* base.
    #[must_use]
    pub fn pc_rel_target(&self, address: u64) -> Option<u64> {
        let offset = self.pc_rel_offset()?;
        let base = if matches!(self, Insn::Adrp { .. }) { address & !0xfff } else { address };
        Some(base.wrapping_add(offset as u64))
    }

    /// Returns `true` if executing this instruction writes the link
    /// register `x30` (either as a call side effect or as a plain
    /// destination).
    #[must_use]
    pub fn writes_lr(&self) -> bool {
        if self.is_call() {
            return true;
        }
        matches!(self.dest_reg(), Some(r) if r.is_lr())
    }

    /// Returns `true` if executing this instruction reads `x30`.
    #[must_use]
    pub fn reads_lr(&self) -> bool {
        self.source_regs().iter().any(|r| r.is_lr())
    }

    /// The general-purpose destination register, if any.
    ///
    /// Register 31 destinations (zero register) are reported as written;
    /// callers interested in real dataflow should filter them.
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        match *self {
            Insn::Adr { rd, .. } | Insn::Adrp { rd, .. } => Some(rd),
            Insn::LdrLit { rt, .. } | Insn::LdrImm { rt, .. } => Some(rt),
            Insn::Movz { rd, .. } | Insn::Movn { rd, .. } | Insn::Movk { rd, .. } => Some(rd),
            Insn::AddImm { rd, .. }
            | Insn::SubImm { rd, .. }
            | Insn::AddReg { rd, .. }
            | Insn::SubReg { rd, .. }
            | Insn::AndReg { rd, .. }
            | Insn::OrrReg { rd, .. }
            | Insn::EorReg { rd, .. }
            | Insn::Sdiv { rd, .. }
            | Insn::Lslv { rd, .. }
            | Insn::Asrv { rd, .. }
            | Insn::Sbfm { rd, .. }
            | Insn::Madd { rd, .. }
            | Insn::Msub { rd, .. }
            | Insn::Ubfm { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The general-purpose registers read by this instruction.
    #[must_use]
    pub fn source_regs(&self) -> Vec<Reg> {
        match *self {
            Insn::Cbz { rt, .. }
            | Insn::Cbnz { rt, .. }
            | Insn::Tbz { rt, .. }
            | Insn::Tbnz { rt, .. } => {
                vec![rt]
            }
            Insn::Br { rn } | Insn::Blr { rn } | Insn::Ret { rn } => vec![rn],
            Insn::Movk { rd, .. } => vec![rd], // read-modify-write
            Insn::AddImm { rn, .. } | Insn::SubImm { rn, .. } | Insn::Ubfm { rn, .. } => vec![rn],
            Insn::AddReg { rn, rm, .. }
            | Insn::SubReg { rn, rm, .. }
            | Insn::AndReg { rn, rm, .. }
            | Insn::OrrReg { rn, rm, .. }
            | Insn::EorReg { rn, rm, .. } => vec![rn, rm],
            Insn::Sdiv { rn, rm, .. } | Insn::Lslv { rn, rm, .. } | Insn::Asrv { rn, rm, .. } => {
                vec![rn, rm]
            }
            Insn::Sbfm { rn, .. } => vec![rn],
            Insn::Madd { rn, rm, ra, .. } | Insn::Msub { rn, rm, ra, .. } => vec![rn, rm, ra],
            Insn::LdrImm { rn, .. } => vec![rn],
            Insn::StrImm { rt, rn, .. } => vec![rt, rn],
            Insn::Stp { rt, rt2, rn, .. } => vec![rt, rt2, rn],
            Insn::Ldp { rn, .. } => vec![rn],
            _ => Vec::new(),
        }
    }

    /// Returns `true` if the instruction reads or writes the stack pointer.
    /// Outlined bodies must not manipulate `sp` (the outlined function adds
    /// no frame, so `sp`-relative state must be transparent).
    #[must_use]
    pub fn touches_sp(&self) -> bool {
        let sp_as_base = |r: Reg| r.is_reg31();
        match *self {
            // reg31 is SP in base/dest position of add/sub immediate.
            Insn::AddImm { rd, rn, .. } | Insn::SubImm { rd, rn, .. } => {
                sp_as_base(rd) || sp_as_base(rn)
            }
            Insn::LdrImm { rn, .. } | Insn::StrImm { rn, .. } => sp_as_base(rn),
            Insn::Stp { rn, mode, .. } | Insn::Ldp { rn, mode, .. } => {
                sp_as_base(rn) || mode != PairMode::SignedOffset && sp_as_base(rn)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification_matches_paper() {
        assert!(Insn::B { offset: 8 }.is_terminator());
        assert!(Insn::BCond { cond: Cond::Eq, offset: 8 }.is_terminator());
        assert!(Insn::Cbz { wide: false, rt: Reg::X0, offset: 12 }.is_terminator());
        assert!(Insn::Ret { rn: Reg::LR }.is_terminator());
        assert!(Insn::Br { rn: Reg::X16 }.is_terminator());
        // calls are not terminators
        assert!(!Insn::Bl { offset: 0x1000 }.is_terminator());
        assert!(!Insn::Blr { rn: Reg::LR }.is_terminator());
        assert!(!Insn::AddImm {
            wide: true,
            set_flags: false,
            rd: Reg::X0,
            rn: Reg::X1,
            imm12: 4,
            shift12: false
        }
        .is_terminator());
    }

    #[test]
    fn pc_relative_set_matches_paper_section_3_3_4() {
        let pc_rel: [Insn; 10] = [
            Insn::B { offset: 4 },
            Insn::Bl { offset: 4 },
            Insn::BCond { cond: Cond::Ne, offset: 4 },
            Insn::Cbz { wide: true, rt: Reg::X1, offset: 4 },
            Insn::Cbnz { wide: true, rt: Reg::X1, offset: 4 },
            Insn::Tbz { rt: Reg::X1, bit: 3, offset: 4 },
            Insn::Tbnz { rt: Reg::X1, bit: 3, offset: 4 },
            Insn::Adr { rd: Reg::X0, offset: 16 },
            Insn::Adrp { rd: Reg::X0, offset: 4096 },
            Insn::LdrLit { wide: true, rt: Reg::X0, offset: 8 },
        ];
        for insn in pc_rel {
            assert!(insn.is_pc_relative(), "{insn:?}");
        }
        assert!(!Insn::Br { rn: Reg::X16 }.is_pc_relative());
        assert!(!Insn::Nop.is_pc_relative());
    }

    #[test]
    fn target_computation() {
        let insn = Insn::Cbz { wide: false, rt: Reg::X0, offset: 0xc };
        // The paper's Table 2 example: cbz at 0x138320 targeting 0x13832c.
        assert_eq!(insn.pc_rel_target(0x138320), Some(0x13832c));
        let patched = insn.with_pc_rel_offset(0x8);
        assert_eq!(patched.pc_rel_target(0x138320), Some(0x138328));
    }

    #[test]
    fn adrp_targets_pages() {
        let insn = Insn::Adrp { rd: Reg::X0, offset: 0x2000 };
        assert_eq!(insn.pc_rel_target(0x1234), Some(0x3000));
    }

    #[test]
    #[should_panic(expected = "non-PC-relative")]
    fn patching_non_pc_relative_panics() {
        let _ = Insn::Nop.with_pc_rel_offset(8);
    }

    #[test]
    #[should_panic(expected = "4-aligned")]
    fn patching_misaligned_branch_panics() {
        let _ = Insn::B { offset: 8 }.with_pc_rel_offset(6);
    }

    #[test]
    fn lr_dataflow() {
        assert!(Insn::Bl { offset: 4 }.writes_lr());
        assert!(Insn::Blr { rn: Reg::X8 }.writes_lr());
        assert!(Insn::Ret { rn: Reg::LR }.reads_lr());
        assert!(Insn::Br { rn: Reg::LR }.reads_lr());
        assert!(Insn::LdrImm { wide: true, rt: Reg::LR, rn: Reg::X0, offset: 16 }.writes_lr());
        assert!(!Insn::LdrImm { wide: true, rt: Reg::X2, rn: Reg::X0, offset: 16 }.writes_lr());
        assert!(Insn::StrImm { wide: true, rt: Reg::LR, rn: Reg::SP, offset: 8 }.reads_lr());
    }

    #[test]
    fn sp_classification() {
        let stack_store = Insn::StrImm { wide: true, rt: Reg::X0, rn: Reg::SP, offset: 16 };
        assert!(stack_store.touches_sp());
        let sub_sp = Insn::SubImm {
            wide: true,
            set_flags: false,
            rd: Reg::X16,
            rn: Reg::SP,
            imm12: 0x2000 >> 12,
            shift12: true,
        };
        assert!(sub_sp.touches_sp());
        let heap_load = Insn::LdrImm { wide: true, rt: Reg::X0, rn: Reg::X1, offset: 0 };
        assert!(!heap_load.touches_sp());
    }

    #[test]
    fn indirect_jump_flagging() {
        assert!(Insn::Br { rn: Reg::X17 }.is_indirect_jump());
        assert!(!Insn::Ret { rn: Reg::LR }.is_indirect_jump());
        assert!(!Insn::Blr { rn: Reg::X17 }.is_indirect_jump());
    }
}
