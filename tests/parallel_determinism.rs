//! Differential test for the parallel compile phase: for every Table 4
//! configuration, the serialized OAT bytes must be bit-identical whether
//! the per-method compile phase runs on one thread or eight. This is the
//! contract that lets the bench harness (and any user) turn on
//! `compile_threads` without re-validating outputs.

use std::collections::HashSet;

use calibro::{build, BuildOptions};
use calibro_workloads::{generate, paper_suite, App};

/// The five Table 4 configurations. HfOpti uses a synthetic deterministic
/// hot set (even method ids) instead of a profiling run: the test is
/// about build determinism, not profile quality, and a fixed set keeps
/// the two builds' inputs identical by construction.
fn table4_configs(app: &App) -> Vec<(&'static str, BuildOptions)> {
    let hot: HashSet<u32> =
        app.dex.methods().iter().map(|m| m.id.0).filter(|id| id % 2 == 0).collect();
    vec![
        ("baseline", BuildOptions::baseline()),
        ("cto", BuildOptions::cto()),
        ("cto_ltbo", BuildOptions::cto_ltbo()),
        ("cto_ltbo_pl", BuildOptions::cto_ltbo_parallel(8, 6)),
        ("cto_ltbo_pl_hf", BuildOptions::cto_ltbo_parallel(8, 6).with_hot_filter(hot)),
        ("cto_merge", BuildOptions::cto_merge()),
        ("cto_merge_ltbo", BuildOptions::cto_merge_ltbo()),
    ]
}

#[test]
fn parallel_compile_is_bit_identical_across_the_suite() {
    for app in paper_suite(0.1).iter().map(generate) {
        for (name, options) in table4_configs(&app) {
            let sequential = build(&app.dex, &options.clone().with_compile_threads(1))
                .unwrap_or_else(|e| panic!("{}/{name}: sequential build failed: {e}", app.name));
            let parallel = build(&app.dex, &options.with_compile_threads(8))
                .unwrap_or_else(|e| panic!("{}/{name}: parallel build failed: {e}", app.name));

            let seq_bytes = calibro_oat::to_elf_bytes(&sequential.oat);
            let par_bytes = calibro_oat::to_elf_bytes(&parallel.oat);
            assert!(
                seq_bytes == par_bytes,
                "{}/{name}: serialized OAT differs between 1 and 8 compile threads \
                 ({} vs {} bytes)",
                app.name,
                seq_bytes.len(),
                par_bytes.len(),
            );

            // The observability layer must agree on everything that is
            // schedule-independent.
            assert_eq!(sequential.stats.passes, parallel.stats.passes, "{}/{name}", app.name);
            assert_eq!(sequential.stats.methods, parallel.stats.methods);
            assert_eq!(sequential.stats.words_before_ltbo, parallel.stats.words_before_ltbo);
            assert_eq!(sequential.stats.ltbo, parallel.stats.ltbo);
            assert_eq!(sequential.stats.merge, parallel.stats.merge, "{}/{name}", app.name);
            // ...while the worker accounting reflects each schedule.
            assert_eq!(sequential.stats.compile_threads, 1);
            assert_eq!(parallel.stats.compile_threads, 8);
            assert_eq!(
                parallel.stats.per_worker.iter().map(|w| w.items).sum::<usize>(),
                parallel.stats.methods,
            );
        }
    }
}

#[test]
fn stats_json_round_trips_phase_invariants() {
    let app = generate(&paper_suite(0.1)[0]);
    let out = build(&app.dex, &BuildOptions::cto_ltbo().with_compile_threads(4)).unwrap();
    let json = out.stats.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains(r#""compile_threads":4"#));
    assert!(json.contains(r#""times_us":{"verify":"#));
    // Sub-phase wall clocks are bounded by the whole compile phase.
    assert!(out.stats.graph_time <= out.stats.compile_time);
    assert!(out.stats.codegen_time <= out.stats.compile_time);
    assert!(out.stats.total_time() >= out.stats.compile_time);
}
