//! Worker-panic propagation through the outline pool: a panic inside
//! one detection group's worker must surface as a typed
//! [`BuildError::OutlineWorker`] carrying the group index and the panic
//! payload — never abort the process or poison later builds.
//!
//! Fault injection goes through [`calibro::detect_fault`], a
//! process-global hook, so everything lives in one test function to
//! keep arm/disarm ordered.

use calibro::{build, detect_fault, BuildError, BuildOptions, LtboMode};
use calibro_workloads::{generate, AppSpec};

#[test]
fn injected_detection_panic_surfaces_as_typed_error() {
    let app = generate(&AppSpec::small("outline-fault", 41));

    // The injected panic still runs the default hook (stack trace to
    // stderr); silence it for the duration of the expected faults.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Global mode: one detection group, index 0.
    detect_fault::arm(0);
    let err = build(&app.dex, &BuildOptions::cto_ltbo()).expect_err("armed fault must fail");
    match &err {
        BuildError::OutlineWorker { group, message } => {
            assert_eq!(*group, 0);
            assert!(
                message.contains("injected detection fault in group 0"),
                "payload lost: {message}"
            );
        }
        other => panic!("expected OutlineWorker, got: {other}"),
    }
    assert!(err.to_string().contains("outline worker for group 0 panicked"));

    // Parallel mode: the fault hits one of several groups while the
    // others complete; the pool must still return the typed error, with
    // the faulted group's index, under a multi-threaded pool.
    let options = BuildOptions::cto_ltbo_parallel(8, 4);
    let faulted = 3usize;
    detect_fault::arm(faulted);
    let err = build(&app.dex, &options).expect_err("armed fault must fail in parallel mode");
    match &err {
        BuildError::OutlineWorker { group, message } => {
            assert_eq!(*group, faulted);
            assert!(message.contains(&format!("injected detection fault in group {faulted}")));
        }
        other => panic!("expected OutlineWorker, got: {other}"),
    }

    detect_fault::disarm();
    std::panic::set_hook(hook);

    // Disarmed, the same builds succeed: the fault never left the
    // process in a broken state.
    let global = build(&app.dex, &BuildOptions::cto_ltbo()).expect("clean global build");
    let parallel = build(&app.dex, &options).expect("clean parallel build");
    assert!(matches!(BuildOptions::cto_ltbo().ltbo, Some(LtboMode::Global)));
    assert!(global.stats.ltbo.outlined_functions > 0);
    assert_eq!(parallel.stats.ltbo.detection_groups, 8);
}
