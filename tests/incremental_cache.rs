//! Incremental-recompilation contract tests for the staged pipeline's
//! content-addressed artifact cache:
//!
//! 1. **Invalidation matrix** — flipping any [`BuildOptions`] field or
//!    pass toggle changes the configuration fingerprint (and therefore
//!    every method's cache key); editing a method changes exactly that
//!    method's key.
//! 2. **Warm == cold, bit for bit** — after an N-method delta, a warm
//!    rebuild recompiles only the N changed methods and serializes to
//!    the same ELF bytes as a cold build, under 1 and 8 compile threads
//!    and across outlining configurations.
//! 3. **Poisoned persistence** — a corrupt on-disk entry surfaces as
//!    [`BuildError::Cache`], never as a panic or wrong code.

use std::collections::HashSet;

use calibro::{
    build, method_cache_key, options_fingerprint, program_salt, reference_env, ArtifactStore,
    BuildError, BuildOptions, BuildSession, CacheConfig, CacheEntry, LtboMode, MergeConfig,
    PipelineConfig, StableHasher,
};
use calibro_cache::hash_method;
use calibro_workloads::{generate, mutate_methods, AppSpec};

/// Every single-field variation of the default options. The exhaustive
/// destructure (no `..`) makes adding a `BuildOptions` or
/// `PipelineConfig` field a compile error here, forcing the new knob
/// into this matrix alongside the fingerprint itself.
fn single_field_variants() -> Vec<(&'static str, BuildOptions)> {
    let BuildOptions {
        cto: _,
        ltbo: _,
        merge: _,
        dict: _,
        min_seq_len: _,
        hot_methods: _,
        base_address: _,
        force_metadata: _,
        inlining: _,
        compile_threads: _,
        passes:
            PipelineConfig {
                copy_prop: _,
                constant_folding: _,
                simplify: _,
                cse: _,
                dce: _,
                return_merge: _,
                remove_unreachable: _,
            },
    } = BuildOptions::default();

    let base = BuildOptions::default;
    let hot: HashSet<u32> = [1, 2, 3].into_iter().collect();
    let mut variants = vec![
        ("cto", BuildOptions { cto: true, ..base() }),
        ("ltbo_global", BuildOptions { ltbo: Some(LtboMode::Global), ..base() }),
        (
            "ltbo_parallel",
            BuildOptions { ltbo: Some(LtboMode::Parallel { groups: 4, threads: 2 }), ..base() },
        ),
        ("merge", BuildOptions { merge: Some(MergeConfig::default()), ..base() }),
        ("dict", BuildOptions { dict: true, ..base() }),
        (
            "merge_min_body_words",
            base().with_merge(MergeConfig { min_body_words: 8, ..MergeConfig::default() }),
        ),
        (
            "merge_max_params",
            base().with_merge(MergeConfig { max_params: 1, ..MergeConfig::default() }),
        ),
        (
            "merge_arbitrate",
            base().with_merge(MergeConfig { arbitrate: false, ..MergeConfig::default() }),
        ),
        ("min_seq_len", BuildOptions { min_seq_len: 3, ..base() }),
        ("hot_methods", BuildOptions { hot_methods: Some(hot), ..base() }),
        ("base_address", BuildOptions { base_address: 0x5000_0000, ..base() }),
        ("force_metadata", BuildOptions { force_metadata: true, ..base() }),
        ("inlining", BuildOptions { inlining: true, ..base() }),
        ("compile_threads", BuildOptions { compile_threads: 8, ..base() }),
    ];
    type PassFlip = fn(&mut PipelineConfig);
    let flips: [(&'static str, PassFlip); 7] = [
        ("pass_copy_prop", |p| p.copy_prop = !p.copy_prop),
        ("pass_constant_folding", |p| p.constant_folding = !p.constant_folding),
        ("pass_simplify", |p| p.simplify = !p.simplify),
        ("pass_cse", |p| p.cse = !p.cse),
        ("pass_dce", |p| p.dce = !p.dce),
        ("pass_return_merge", |p| p.return_merge = !p.return_merge),
        ("pass_remove_unreachable", |p| p.remove_unreachable = !p.remove_unreachable),
    ];
    for (name, flip) in flips {
        let mut options = base();
        flip(&mut options.passes);
        variants.push((name, options));
    }
    variants
}

#[test]
fn every_options_field_flip_changes_the_fingerprint() {
    let base_fp = options_fingerprint(&BuildOptions::default());
    let variants = single_field_variants();
    let mut fps = vec![("default", base_fp)];
    for (name, options) in &variants {
        let fp = options_fingerprint(options);
        assert_ne!(fp, base_fp, "{name}: flipping the field must change the fingerprint");
        fps.push((name, fp));
    }
    // All variants are pairwise distinct — no two knobs collapse onto
    // the same fingerprint lane.
    for (i, (a_name, a)) in fps.iter().enumerate() {
        for (b_name, b) in fps.iter().skip(i + 1) {
            assert_ne!(a, b, "{a_name} and {b_name} collide");
        }
    }

    // The fingerprint feeds every method key, so a sample method's key
    // must move with it.
    let dex = generate(&AppSpec::small("fp", 5)).dex;
    let m = &dex.methods()[0];
    let base_key = method_cache_key(m, base_fp, None);
    for (name, fp) in fps.iter().skip(1) {
        assert_ne!(method_cache_key(m, *fp, None), base_key, "{name}: method key unchanged");
    }
}

#[test]
fn editing_a_method_invalidates_exactly_that_method() {
    let spec = AppSpec::small("delta", 17);
    let original = generate(&spec).dex;
    let mut edited = original.clone();
    let mutated = mutate_methods(&mut edited, 3, 0.05);
    assert!(!mutated.is_empty());

    let fp = options_fingerprint(&BuildOptions::default());
    for (old, new) in original.methods().iter().zip(edited.methods()) {
        let old_key = method_cache_key(old, fp, None);
        let new_key = method_cache_key(new, fp, None);
        if mutated.contains(&old.id) {
            assert_ne!(old_key, new_key, "mutated method {} kept its key", old.id);
        } else {
            assert_eq!(old_key, new_key, "untouched method {} lost its key", old.id);
        }
    }

    // Under whole-program inlining the program salt joins each key, so
    // a one-method edit invalidates everything — by design.
    assert_ne!(program_salt(&original), program_salt(&edited));
}

fn warm_configs() -> Vec<(&'static str, BuildOptions)> {
    let hot: HashSet<u32> = (0..200).filter(|id| id % 2 == 0).collect();
    vec![
        ("baseline", BuildOptions::baseline()),
        ("cto_ltbo", BuildOptions::cto_ltbo()),
        ("cto_ltbo_pl", BuildOptions::cto_ltbo_parallel(8, 4)),
        ("cto_ltbo_hf", BuildOptions::cto_ltbo().with_hot_filter(hot)),
        ("cto_merge", BuildOptions::cto_merge()),
        ("cto_merge_ltbo", BuildOptions::cto_merge_ltbo()),
    ]
}

#[test]
fn warm_rebuild_is_bit_identical_and_recompiles_only_the_delta() {
    let spec = AppSpec::small("warm", 23);
    for threads in [1usize, 8] {
        for (name, options) in warm_configs() {
            let options = options.with_compile_threads(threads);
            let session = BuildSession::new();
            let dex = generate(&spec).dex;
            let cold = session
                .build(&dex, &options)
                .unwrap_or_else(|e| panic!("{name}/{threads}: cold build failed: {e}"));
            assert_eq!(cold.stats.methods_from_cache, 0, "{name}/{threads}: cold hit something");

            let mut edited = dex.clone();
            let mutated = mutate_methods(&mut edited, 7, 0.05);
            let warm = session
                .build(&edited, &options)
                .unwrap_or_else(|e| panic!("{name}/{threads}: warm build failed: {e}"));
            let fresh = build(&edited, &options)
                .unwrap_or_else(|e| panic!("{name}/{threads}: fresh build failed: {e}"));

            assert_eq!(
                calibro_oat::to_elf_bytes(&warm.oat),
                calibro_oat::to_elf_bytes(&fresh.oat),
                "{name}/{threads}: warm rebuild bytes differ from cold"
            );
            // Only the delta recompiles; everything else replays.
            assert_eq!(
                warm.stats.methods_from_cache,
                warm.stats.methods - mutated.len(),
                "{name}/{threads}: wrong replay count"
            );
            assert_eq!(warm.stats.cache.misses as usize, mutated.len());
            assert_eq!(warm.stats.cache.hits as usize, warm.stats.methods_from_cache);
            // Observability parity: warm pass counters equal cold ones.
            assert_eq!(warm.stats.passes, fresh.stats.passes, "{name}/{threads}: pass drift");
            assert_eq!(warm.stats.ltbo, fresh.stats.ltbo, "{name}/{threads}: LTBO drift");
            // Group-plan lane: every detection group is probed exactly
            // once, and an N-method delta dirties at most 2N groups
            // (the mutated method leaves one group and may land in
            // another); baseline never touches the lane.
            let g = &warm.stats.cache;
            if options.ltbo.is_some() {
                assert_eq!(
                    (g.group_hits + g.group_misses) as usize,
                    warm.stats.ltbo.detection_groups,
                    "{name}/{threads}: group probes != groups"
                );
                assert!(
                    g.group_misses as usize <= 2 * mutated.len(),
                    "{name}/{threads}: {} group misses for a {}-method delta",
                    g.group_misses,
                    mutated.len()
                );
            } else {
                assert_eq!(g.group_hits + g.group_misses, 0, "{name}/{threads}: baseline probed");
            }
            // Merge lane: only merge arms may probe it, and materialized
            // merges must replay identically (words_saved is derived
            // from the groups actually applied, plan or no plan).
            if options.merge.is_some() {
                assert_eq!(
                    warm.stats.merge.merged_methods, fresh.stats.merge.merged_methods,
                    "{name}/{threads}: merge replay drift"
                );
                assert_eq!(warm.stats.merge.words_saved, fresh.stats.merge.words_saved);
            } else {
                assert_eq!(g.merge_hits + g.merge_misses, 0, "{name}/{threads}: merge probed");
            }
        }
    }
}

#[test]
fn identical_rebuild_hits_for_every_method() {
    let dex = generate(&AppSpec::small("idem", 31)).dex;
    let options = BuildOptions::cto_ltbo();
    let session = BuildSession::new();
    let cold = session.build(&dex, &options).unwrap();
    let warm = session.build(&dex, &options).unwrap();
    assert_eq!(cold.oat.words, warm.oat.words);
    assert_eq!(cold.oat.text_digest(), warm.oat.text_digest());
    assert_eq!(warm.stats.methods_from_cache, warm.stats.methods);
    assert_eq!(warm.stats.cache.misses, 0);
    assert!((warm.stats.cache.hit_rate() - 1.0).abs() < 1e-12);
    // The unchanged program replays its detection plan too: the group
    // key is content-stable, so an identical rebuild never re-detects.
    assert_eq!(warm.stats.cache.group_misses, 0);
    assert_eq!(warm.stats.cache.group_hits as usize, warm.stats.ltbo.detection_groups);
    assert!((warm.stats.cache.group_hit_rate() - 1.0).abs() < 1e-12);
}

#[test]
fn environment_change_re_verifies_cache_hits() {
    // Warm hits skip `verify_references` only while the entry's
    // recorded reference-environment fingerprint matches the build's.
    // Flip one callee native: every unchanged caller still *hits* the
    // cache (its own bytes and key are untouched), yet its `Invoke` now
    // targets a native method — an error only the environment-mismatch
    // re-verify path can surface.
    let dex = generate(&AppSpec::small("refenv", 23)).dex;
    let callee = dex
        .methods()
        .iter()
        .find_map(|m| {
            m.insns.iter().find_map(|i| match i {
                calibro_dex::DexInsn::Invoke { method, .. } => Some(*method),
                _ => None,
            })
        })
        .expect("generated app contains a java call");

    let options = BuildOptions::baseline();
    let session = BuildSession::new();
    session.build(&dex, &options).expect("cold build");

    let mut edited = dex.clone();
    let m = edited.method_mut(callee);
    m.is_native = true;
    m.insns.clear();
    assert_ne!(reference_env(&dex), reference_env(&edited), "nativeness must move the env");

    let err = session.build(&edited, &options).expect_err("stale reference must be caught");
    assert!(
        matches!(&err, BuildError::Verify(calibro_dex::VerifyError::WrongInvokeKind { .. })),
        "expected WrongInvokeKind, got {err:?}"
    );

    // Same program, same environment: the skip path itself stays green
    // and every method still hits.
    let warm = session.build(&dex, &options).expect("unchanged rebuild");
    assert_eq!(warm.stats.methods_from_cache, warm.stats.methods);
}

#[test]
fn sharded_detection_is_thread_and_warmth_stable() {
    let spec = AppSpec::small("stable", 53);
    let dex = generate(&spec).dex;
    let mut edited = dex.clone();
    let mutated = mutate_methods(&mut edited, 11, 0.01);
    assert!(!mutated.is_empty());

    // The reference ELF bytes for the edited program, fixed by the
    // 1-thread arm; every other (threads, warmth) combination must
    // reproduce them exactly.
    let mut reference: Option<Vec<u8>> = None;
    for threads in [1usize, 8] {
        let options = BuildOptions::cto_ltbo_parallel(16, threads).with_compile_threads(threads);
        let session = BuildSession::new();
        let cold = session.build(&dex, &options).unwrap();
        assert_eq!(cold.stats.ltbo.detection_groups, 16);

        let warm = session.build(&edited, &options).unwrap();
        let fresh = build(&edited, &options).unwrap();
        let warm_bytes = calibro_oat::to_elf_bytes(&warm.oat);
        assert_eq!(
            warm_bytes,
            calibro_oat::to_elf_bytes(&fresh.oat),
            "t={threads}: warm bytes differ from cold"
        );

        // The warm build re-detects only the dirty groups and replays
        // the rest from cached plans.
        let g = &warm.stats.cache;
        assert_eq!((g.group_hits + g.group_misses) as usize, 16);
        assert!(g.group_misses as usize <= 2 * mutated.len());
        assert!(g.group_hits > 0, "t={threads}: nothing replayed");

        match &reference {
            None => reference = Some(warm_bytes),
            Some(r) => assert_eq!(r, &warm_bytes, "output depends on thread count"),
        }
    }
}

#[test]
fn disk_cache_carries_artifacts_across_sessions() {
    let dir = std::env::temp_dir().join(format!("calibro-disk-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dex = generate(&AppSpec::small("disk", 41)).dex;
    let options = BuildOptions::cto_ltbo();
    let config = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };

    let first = BuildSession::with_config(config.clone());
    let cold = first.build(&dex, &options).unwrap();
    assert_eq!(cold.stats.cache.disk_stores as usize, cold.stats.methods);
    drop(first);

    // A fresh session (fresh in-memory map) replays everything from disk.
    let second = BuildSession::with_config(config);
    let warm = second.build(&dex, &options).unwrap();
    assert_eq!(warm.oat.words, cold.oat.words);
    assert_eq!(warm.stats.methods_from_cache, warm.stats.methods);
    assert_eq!(warm.stats.cache.disk_hits as usize, warm.stats.methods);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The pre-`+s3` key scheme, vendored for the invalidation test below:
/// two independently seeded FNV-1a-64 lanes over the framed byte
/// stream, plus the old length fold. The *framing* did not change in
/// the `+s2` → `+s3` bump — only the mixing did — so the new
/// serializer's buffer is exactly the byte stream the old hasher
/// consumed, and mixing it here reproduces the keys an old-release
/// store persisted under.
mod legacy {
    use calibro::CacheKey;

    /// What `SCHEMA_VERSION` expanded to before the bump.
    pub const SCHEMA: &str = concat!("0.1.0", "+s2");

    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    const OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
    const OFFSET_LO: u64 = 0x2437_54a3_2439_f31d;

    pub fn mix(framed: &[u8]) -> CacheKey {
        let (mut hi, mut lo) = (OFFSET_HI, OFFSET_LO);
        let byte = |hi: &mut u64, lo: &mut u64, b: u8| {
            *hi = (*hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            *lo = (*lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        };
        for &b in framed {
            byte(&mut hi, &mut lo, b);
        }
        for b in (framed.len() as u64).to_le_bytes() {
            byte(&mut hi, &mut lo, b);
        }
        CacheKey { hi, lo: lo ^ hi.rotate_left(32) }
    }
}

#[test]
fn schema_bump_turns_old_disk_entries_into_clean_typed_misses() {
    let dir = std::env::temp_dir().join(format!("calibro-schema-bump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dex = generate(&AppSpec::small("schema", 29)).dex;
    let options = BuildOptions::cto_ltbo();
    let fp = options_fingerprint(&options);
    let config = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };

    // Populate the directory the way the previous release would have:
    // one entry per method, persisted under the legacy hasher's key for
    // the old schema string.
    let old_store = ArtifactStore::new(config.clone());
    let mut legacy_keys = Vec::new();
    for m in dex.methods() {
        let mut h = StableHasher::new();
        h.write_str(legacy::SCHEMA);
        h.write_u64(fp.hi);
        h.write_u64(fp.lo);
        h.write_tag(0);
        hash_method(m, &mut h);
        let key = legacy::mix(h.serialized());
        old_store.insert(
            key,
            CacheEntry {
                compiled: calibro_codegen::CompiledMethod {
                    method: m.id,
                    insns: vec![calibro_isa::Insn::Nop],
                    pool: vec![],
                    relocs: vec![],
                    metadata: calibro_codegen::MethodMetadata::default(),
                    stack_maps: vec![],
                },
                pass_stats: calibro_hgraph::PassStats::default(),
                template: None,
                ref_env: 0,
            },
        );
        legacy_keys.push(key);
    }
    assert_eq!(old_store.stats().disk_stores as usize, dex.methods().len());
    drop(old_store);

    // New-schema probes over the stale directory: every lookup is a
    // clean typed miss — `Ok(None)`, never an error, never a stale hit.
    let store = ArtifactStore::new(config.clone());
    for m in dex.methods() {
        let key = method_cache_key(m, fp, None);
        assert!(!legacy_keys.contains(&key), "schema bump left method {} addressable", m.id);
        let probe = store.get(key);
        assert!(
            matches!(probe, Ok(None)),
            "old-generation entry must be a clean miss for method {}",
            m.id
        );
    }
    let s = store.stats();
    assert_eq!(s.misses as usize, dex.methods().len());
    assert_eq!((s.hits, s.disk_hits), (0, 0));
    drop(store);

    // A full build over the stale directory recompiles everything and
    // matches a pristine build bit for bit; the old files are never
    // clobbered (file names are keys, and the generations are disjoint).
    let session = BuildSession::with_config(config);
    let rebuilt = session.build(&dex, &options).unwrap();
    assert_eq!(rebuilt.stats.methods_from_cache, 0);
    let fresh = build(&dex, &options).unwrap();
    assert_eq!(calibro_oat::to_elf_bytes(&rebuilt.oat), calibro_oat::to_elf_bytes(&fresh.oat));
    for key in &legacy_keys {
        assert!(dir.join(format!("{}.calc", key.to_hex())).exists(), "legacy file clobbered");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poisoned_disk_entry_surfaces_as_typed_cache_error() {
    let dir = std::env::temp_dir().join(format!("calibro-poison-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dex = generate(&AppSpec::small("poison", 47)).dex;
    let options = BuildOptions::cto_ltbo();
    let config = CacheConfig { disk_dir: Some(dir.clone()), ..CacheConfig::default() };
    BuildSession::with_config(config.clone()).build(&dex, &options).unwrap();

    // Flip one payload byte in every persisted entry: checksums break.
    let mut poisoned = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "calc") {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            poisoned += 1;
        }
    }
    assert!(poisoned > 0, "no persisted entries to poison");

    let err = BuildSession::with_config(config)
        .build(&dex, &options)
        .expect_err("poisoned cache must fail the build");
    assert!(matches!(err, BuildError::Cache(_)), "unexpected error: {err}");

    std::fs::remove_dir_all(&dir).unwrap();
}
