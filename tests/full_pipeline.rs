//! Cross-crate integration tests: the whole stack from workload
//! generation through build, serialization, loading and execution.

use calibro::{build, BuildOptions};
use calibro_profile::Profile;
use calibro_runtime::Runtime;
use calibro_workloads::{generate, paper_suite, AppSpec};

#[test]
fn the_six_app_suite_builds_and_shrinks() {
    for app in paper_suite(0.15).iter().map(generate) {
        let baseline = build(&app.dex, &BuildOptions::baseline()).unwrap();
        let outlined = build(&app.dex, &BuildOptions::cto_ltbo()).unwrap();
        assert!(
            outlined.oat.text_size_bytes() < baseline.oat.text_size_bytes(),
            "{}: no reduction",
            app.name
        );
        calibro_oat::validate_stack_maps(&outlined.oat)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    }
}

#[test]
fn traces_behave_identically_across_all_variants() {
    let app = generate(&AppSpec::small("integration", 31));
    let variants = [
        BuildOptions::baseline(),
        BuildOptions::cto(),
        BuildOptions::cto_ltbo(),
        BuildOptions::cto_ltbo_parallel(4, 2),
    ];
    let mut reference: Option<(Vec<calibro_runtime::ExecOutcome>, u64)> = None;
    for options in variants {
        let out = build(&app.dex, &options).unwrap();
        let mut rt = Runtime::new(&out.oat, &app.env);
        let mut outcomes = Vec::new();
        for call in &app.trace {
            outcomes.push(rt.call(call.method, &call.args, 4_000_000).unwrap().outcome);
        }
        let digest = rt.state_digest();
        match &reference {
            None => reference = Some((outcomes, digest)),
            Some((ref_outcomes, ref_digest)) => {
                assert_eq!(&outcomes, ref_outcomes);
                assert_eq!(digest, *ref_digest);
            }
        }
    }
}

#[test]
fn oat_files_survive_the_disk_roundtrip_and_still_run() {
    let app = generate(&AppSpec::small("roundtrip", 8));
    let out = build(&app.dex, &BuildOptions::cto_ltbo()).unwrap();

    // Serialize -> write -> read -> load -> run.
    let elf = calibro_oat::to_elf_bytes(&out.oat);
    let dir = std::env::temp_dir().join("calibro-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("app.oat");
    std::fs::write(&path, &elf).unwrap();
    let loaded = calibro_oat::from_elf_bytes(&std::fs::read(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();

    let mut rt_orig = Runtime::new(&out.oat, &app.env);
    let mut rt_loaded = Runtime::new(&loaded, &app.env);
    for call in app.trace.iter().take(20) {
        let a = rt_orig.call(call.method, &call.args, 4_000_000).unwrap();
        let b = rt_loaded.call(call.method, &call.args, 4_000_000).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.cycles, b.cycles, "loaded OAT must cost identically");
    }
}

#[test]
fn hot_filtering_reduces_runtime_overhead() {
    let app = generate(&AppSpec::small("hf", 77));
    let baseline = build(&app.dex, &BuildOptions::baseline()).unwrap();

    // Profile the baseline (Figure 6).
    let mut rt = Runtime::new(&baseline.oat, &app.env);
    for call in &app.trace {
        rt.call(call.method, &call.args, 4_000_000).unwrap();
    }
    let base_cycles = rt.total_cycles();
    let hot = Profile::capture(&rt).hot_set(0.8).unwrap();

    let run_cycles = |options: &BuildOptions| {
        let out = build(&app.dex, options).unwrap();
        let mut rt = Runtime::new(&out.oat, &app.env);
        for call in &app.trace {
            rt.call(call.method, &call.args, 4_000_000).unwrap();
        }
        (out.oat.text_size_bytes(), rt.total_cycles())
    };

    let (size_plain, cycles_plain) = run_cycles(&BuildOptions::cto_ltbo_parallel(4, 2));
    let (size_hf, cycles_hf) =
        run_cycles(&BuildOptions::cto_ltbo_parallel(4, 2).with_hot_filter(hot));

    // The paper's §3.4.2 trade-off, as inequalities.
    assert!(cycles_hf <= cycles_plain, "HfOpti must not slow things down");
    assert!(size_hf >= size_plain, "HfOpti gives back some size");
    assert!(size_hf < baseline.oat.text_size_bytes(), "...but still reduces vs baseline");
    let degradation = cycles_hf as f64 / base_cycles as f64 - 1.0;
    assert!(degradation < 0.25, "filtered degradation {degradation} out of band");
}

#[test]
fn profiles_written_by_one_session_drive_the_next() {
    let app = generate(&AppSpec::small("pgo", 5));
    let baseline = build(&app.dex, &BuildOptions::baseline()).unwrap();
    let mut rt = Runtime::new(&baseline.oat, &app.env);
    for call in &app.trace {
        rt.call(call.method, &call.args, 4_000_000).unwrap();
    }
    let text = Profile::capture(&rt).to_text();
    // ... next build session:
    let profile = Profile::from_text(&text).unwrap();
    let hot = profile.hot_set(0.8).unwrap();
    assert!(!hot.is_empty());
    let out = build(&app.dex, &BuildOptions::cto_ltbo().with_hot_filter(hot)).unwrap();
    assert!(out.stats.ltbo.hot_restricted_methods + out.stats.ltbo.excluded_methods > 0);
}
