//! Determinism contract for the function-merge backend (the second
//! size pass): merged output must be byte-identical
//!
//! 1. across 1 and 8 compile threads (merge runs sequentially after the
//!    parallel compile phase, but its input order must not depend on
//!    the compile schedule), and
//! 2. cold vs warm — a warm rebuild replays the cached merge plan
//!    (`merge_hits` > 0, zero recomputation) and still serializes to
//!    the same ELF bytes.
//!
//! The workload uses `clone_families` so the merge pass demonstrably
//! fires: a run that merged nothing would pass byte-equality vacuously.

use calibro::{build, BuildOptions, BuildSession};
use calibro_workloads::{generate, AppSpec};

fn clone_heavy_spec(name: &str, seed: u64) -> AppSpec {
    AppSpec { clone_families: 6, ..AppSpec::small(name, seed) }
}

fn merge_arms() -> Vec<(&'static str, BuildOptions)> {
    vec![
        ("cto_merge", BuildOptions::cto_merge()),
        ("cto_merge_ltbo", BuildOptions::cto_merge_ltbo()),
    ]
}

#[test]
fn merge_fires_on_clone_families_and_is_thread_count_invariant() {
    let app = generate(&clone_heavy_spec("merge-det", 101));
    for (name, options) in merge_arms() {
        let one = build(&app.dex, &options.clone().with_compile_threads(1))
            .unwrap_or_else(|e| panic!("{name}/t1: {e}"));
        let eight = build(&app.dex, &options.with_compile_threads(8))
            .unwrap_or_else(|e| panic!("{name}/t8: {e}"));
        assert!(
            one.stats.merge.merged_methods >= 2,
            "{name}: clone families must actually merge, stats: {:?}",
            one.stats.merge
        );
        assert!(one.stats.merge.words_saved > 0, "{name}: merging must save words");
        assert_eq!(
            calibro_oat::to_elf_bytes(&one.oat),
            calibro_oat::to_elf_bytes(&eight.oat),
            "{name}: merged output differs between 1 and 8 compile threads"
        );
        assert_eq!(one.stats.merge, eight.stats.merge, "{name}: merge stats drift");
    }
}

#[test]
fn warm_merge_replays_the_plan_byte_identically() {
    let app = generate(&clone_heavy_spec("merge-warm", 202));
    for (name, options) in merge_arms() {
        let session = BuildSession::new();
        let cold = session.build(&app.dex, &options).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(cold.stats.cache.merge_misses > 0, "{name}: cold build must populate the lane");
        assert!(cold.stats.cache.merge_stores > 0, "{name}: cold build must store plans");
        assert!(cold.stats.merge.merged_methods >= 2, "{name}: nothing merged");

        let warm = session.build(&app.dex, &options).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(warm.stats.cache.merge_misses, 0, "{name}: identical rebuild re-detected");
        assert!(warm.stats.cache.merge_hits > 0, "{name}: plan not replayed");
        assert_eq!(
            calibro_oat::to_elf_bytes(&cold.oat),
            calibro_oat::to_elf_bytes(&warm.oat),
            "{name}: plan replay changed the output bytes"
        );
        assert_eq!(warm.stats.merge.merged_methods, cold.stats.merge.merged_methods);
        assert_eq!(warm.stats.merge.words_saved, cold.stats.merge.words_saved);
    }
}

#[test]
fn merge_is_byte_neutral_for_non_merge_arms() {
    // The pass refactor must not perturb the existing arms: a build
    // with merge off goes through the same SizePass pipeline and must
    // match a direct build exactly (this also guards pass ordering —
    // outline-only output is independent of the merge code existing).
    let app = generate(&clone_heavy_spec("merge-off", 303));
    for options in [BuildOptions::baseline(), BuildOptions::cto(), BuildOptions::cto_ltbo()] {
        let a = build(&app.dex, &options).unwrap();
        let b = build(&app.dex, &options).unwrap();
        assert_eq!(calibro_oat::to_elf_bytes(&a.oat), calibro_oat::to_elf_bytes(&b.oat));
        assert_eq!(a.stats.merge.merged_methods, 0);
        assert_eq!(a.stats.cache.merge_hits + a.stats.cache.merge_misses, 0);
    }
}
