//! Reproduces the paper's §2.2 redundancy analysis on a synthetic app:
//! disassemble-to-symbols, build the suffix tree, census the repeats
//! (Figure 3's data), and estimate the reduction potential (Table 1's
//! metric).
//!
//! ```text
//! cargo run --release --example analyze_redundancy
//! ```

use calibro::{build, BuildOptions};
use calibro_suffix::{census, estimate_reduction, SuffixTree};
use calibro_workloads::{generate, AppSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(&AppSpec::small("demo", 2024));
    println!(
        "app `{}`: {} methods, {} dex instructions",
        app.name,
        app.dex.methods().len(),
        app.dex.total_insns()
    );

    // Step 1-2 (§2.2): compile to binary, map instructions to unsigned
    // integers (terminators and method boundaries become unique
    // separators), and build the suffix tree.
    let baseline =
        build(&app.dex, &BuildOptions { force_metadata: true, ..BuildOptions::baseline() })?;
    let symbols = bench_analysis_sequence(&baseline.oat);
    println!("binary instructions analyzed: {}", symbols.len());
    let tree = SuffixTree::build(symbols);

    // Step 3: census of repetitive sequences (Figure 3).
    println!("\nlen  sequences  total-repeats   (Figure 3 series)");
    let rows = census(&tree, 2);
    for len in 2..=12 {
        let (mut sequences, mut repeats) = (0usize, 0usize);
        for r in rows.iter().filter(|r| r.len == len) {
            sequences += 1;
            repeats += r.count;
        }
        println!("{len:>3}  {sequences:>9}  {repeats:>13}");
    }

    // Step 4: the benefit-model estimate (Table 1).
    let ratio = estimate_reduction(&tree, 2);
    println!("\nestimated code-size reduction (Figure 2 model): {:.1}%", ratio * 100.0);

    // Compare with what LTBO actually achieves.
    let outlined = build(&app.dex, &BuildOptions::cto_ltbo())?;
    let achieved =
        1.0 - outlined.oat.text_size_bytes() as f64 / baseline.oat.text_size_bytes() as f64;
    println!("achieved reduction (CTO+LTBO):                  {:.1}%", achieved * 100.0);
    println!("(the estimate exceeds the achieved reduction, as in the paper)");
    Ok(())
}

/// The §2.2 instruction-mapping step (same scheme the bench harness
/// uses): instruction words as symbols, terminators and method
/// boundaries as unique separators.
fn bench_analysis_sequence(oat: &calibro_oat::OatFile) -> Vec<u64> {
    let mut symbols = Vec::with_capacity(oat.words.len());
    let mut unique = 1u64 << 40;
    for record in &oat.methods {
        let start = (record.offset / 4) as usize;
        for w in 0..record.code_words {
            if record.metadata.in_embedded_data(w) || record.metadata.terminators.contains(&w) {
                unique += 1;
                symbols.push(unique);
            } else {
                symbols.push(u64::from(oat.words[start + w]));
            }
        }
        unique += 1;
        symbols.push(unique);
    }
    symbols
}
