//! Quickstart: compile a tiny app with and without Calibro and compare
//! sizes and behaviour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use calibro::{build, size_report, BuildOptions};
use calibro_dex::{BinOp, DexFile, DexInsn, MethodBuilder, MethodId, VReg};
use calibro_runtime::{Runtime, RuntimeEnv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author some bytecode: eight methods that all share the same
    //    hashing motif — the kind of redundancy Calibro eliminates.
    let mut dex = DexFile::new();
    let class = dex.add_class("Main", 0);
    for i in 0..8 {
        let mut b = MethodBuilder::new(format!("hash{i}"), 4, 2);
        b.push(DexInsn::Const { dst: VReg(0), value: i });
        for _ in 0..4 {
            b.push(DexInsn::Bin { op: BinOp::Xor, dst: VReg(0), a: VReg(0), b: VReg(2) });
            b.push(DexInsn::BinLit { op: BinOp::Mul, dst: VReg(0), a: VReg(0), lit: 31 });
            b.push(DexInsn::Bin { op: BinOp::Add, dst: VReg(0), a: VReg(0), b: VReg(3) });
            b.push(DexInsn::BinLit { op: BinOp::Xor, dst: VReg(0), a: VReg(0), lit: 77 });
        }
        b.push(DexInsn::Return { src: VReg(0) });
        dex.add_method(b.build(class));
    }

    // 2. Build the baseline (plain dex2oat) and the Calibro pipeline
    //    (CTO + link-time binary outlining).
    let baseline = build(&dex, &BuildOptions::baseline())?;
    let outlined = build(&dex, &BuildOptions::cto_ltbo())?;

    let report = size_report(&baseline.oat, &outlined.oat);
    println!("baseline  .text: {:>6} bytes", report.baseline_bytes);
    println!("calibro   .text: {:>6} bytes", report.optimized_bytes);
    println!("reduction      : {:>6.2}%", report.reduction_ratio() * 100.0);
    println!(
        "outlined {} sequences covering {} call sites",
        outlined.stats.ltbo.outlined_functions, outlined.stats.ltbo.occurrences_replaced
    );

    // 3. Run both on the simulated device: identical results.
    let env = RuntimeEnv { class_sizes: vec![8], ..RuntimeEnv::default() };
    let mut rt_base = Runtime::new(&baseline.oat, &env);
    let mut rt_out = Runtime::new(&outlined.oat, &env);
    for m in 0..8u32 {
        let a = rt_base.call(MethodId(m), &[123, 456], 100_000)?;
        let b = rt_out.call(MethodId(m), &[123, 456], 100_000)?;
        assert_eq!(a.outcome, b.outcome);
        println!("hash{m}(123, 456) -> {:?}  (both builds agree)", a.outcome);
    }

    // 4. Serialize to a real ELF file, like an OAT file on disk.
    let elf = calibro_oat::to_elf_bytes(&outlined.oat);
    println!("serialized OAT ELF: {} bytes", elf.len());
    Ok(())
}
