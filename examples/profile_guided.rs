//! The full Figure 6 feedback loop: build a baseline, profile it over a
//! usage trace (simpleperf-style), select the hot 80%, rebuild with
//! hot-function filtering, and compare size and runtime cost.
//!
//! ```text
//! cargo run --release --example profile_guided
//! ```

use calibro::{build, BuildOptions};
use calibro_profile::Profile;
use calibro_runtime::Runtime;
use calibro_workloads::{generate, AppSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(&AppSpec::small("pgo-demo", 99));

    // --- First build: baseline, instrumented run. ----------------------
    let baseline = build(&app.dex, &BuildOptions::baseline())?;
    let mut rt = Runtime::new(&baseline.oat, &app.env);
    for call in &app.trace {
        rt.call(call.method, &call.args, 4_000_000)?;
    }
    let baseline_cycles = rt.total_cycles();
    let profile = Profile::capture(&rt);
    println!(
        "profiled {} methods over {} trace calls ({} cycles total)",
        profile.samples.len(),
        app.trace.len(),
        profile.total_cycles()
    );

    // The profile round-trips through the simpleperf-style text format.
    let text = profile.to_text();
    let profile = Profile::from_text(&text)?;
    let hot = profile.hot_set(0.8)?;
    println!("hot set (80% of cycles): {} methods", hot.len());

    // --- Second builds: with and without hot filtering. ----------------
    let unfiltered = build(&app.dex, &BuildOptions::cto_ltbo_parallel(8, 6))?;
    let filtered = build(&app.dex, &BuildOptions::cto_ltbo_parallel(8, 6).with_hot_filter(hot))?;

    let run = |oat: &calibro_oat::OatFile| -> Result<u64, Box<dyn std::error::Error>> {
        let mut rt = Runtime::new(oat, &app.env);
        for call in &app.trace {
            rt.call(call.method, &call.args, 4_000_000)?;
        }
        Ok(rt.total_cycles())
    };

    let unfiltered_cycles = run(&unfiltered.oat)?;
    let filtered_cycles = run(&filtered.oat)?;
    let pct = |c: u64| (c as f64 / baseline_cycles as f64 - 1.0) * 100.0;

    println!("\n{:28} {:>10} {:>12} {:>12}", "variant", ".text", "cycles", "degradation");
    println!(
        "{:28} {:>10} {:>12} {:>11.2}%",
        "baseline",
        baseline.oat.text_size_bytes(),
        baseline_cycles,
        0.0
    );
    println!(
        "{:28} {:>10} {:>12} {:>11.2}%",
        "CTO+LTBO+PlOpti",
        unfiltered.oat.text_size_bytes(),
        unfiltered_cycles,
        pct(unfiltered_cycles)
    );
    println!(
        "{:28} {:>10} {:>12} {:>11.2}%",
        "CTO+LTBO+PlOpti+HfOpti",
        filtered.oat.text_size_bytes(),
        filtered_cycles,
        pct(filtered_cycles)
    );
    println!("\nhot-function filtering trades a little code size for runtime speed (§3.4.2)");
    Ok(())
}
