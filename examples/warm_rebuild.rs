//! Warm-rebuild smoke: build an app through a [`BuildSession`], mutate
//! one method (an app update), rebuild, and demand that the cache
//! replays everything but the delta and reproduces a cold build bit for
//! bit. CI runs this as the incremental-recompilation gate.
//!
//! ```text
//! cargo run --release --example warm_rebuild
//! ```

use calibro::{build, BuildOptions, BuildSession};
use calibro_workloads::{generate, mutate_methods, AppSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = BuildOptions::cto_ltbo();
    let session = BuildSession::new();

    let app = generate(&AppSpec::small("warm-smoke", 97));
    let cold = session.build(&app.dex, &options)?;
    println!(
        "cold build: {} methods, {} bytes of .text",
        cold.stats.methods,
        cold.oat.text_size_bytes()
    );

    // The app update: one mutated method (the fraction rounds up to 1).
    let mut edited = app.dex.clone();
    let mutated = mutate_methods(&mut edited, 5, 0.0001);
    println!("mutated {} method(s): {:?}", mutated.len(), mutated);

    let warm = session.build(&edited, &options)?;
    let fresh = build(&edited, &options)?;

    let hit_rate = warm.stats.cache.hit_rate();
    println!(
        "warm rebuild: {}/{} methods from cache, hit rate {:.1}%",
        warm.stats.methods_from_cache,
        warm.stats.methods,
        hit_rate * 100.0
    );
    println!(
        "digests: warm {:#018x}, cold {:#018x}",
        warm.oat.text_digest(),
        fresh.oat.text_digest()
    );

    if hit_rate <= 0.9 {
        return Err(format!("hit rate {hit_rate:.3} not above 0.9").into());
    }
    if warm.stats.methods_from_cache != warm.stats.methods - mutated.len() {
        return Err(format!(
            "expected {} cache replays, saw {}",
            warm.stats.methods - mutated.len(),
            warm.stats.methods_from_cache
        )
        .into());
    }
    if calibro_oat::to_elf_bytes(&warm.oat) != calibro_oat::to_elf_bytes(&fresh.oat) {
        return Err("warm rebuild is not byte-identical to a cold build".into());
    }
    println!("warm rebuild OK: delta-only recompile, bit-identical output");
    Ok(())
}
