//! Warm-rebuild smoke: build an app through a [`BuildSession`], mutate
//! one method (an app update), rebuild, and demand that the cache
//! replays everything but the delta and reproduces a cold build bit for
//! bit. Runs two arms — the global single-tree LTBO, and the sharded
//! [`LtboMode::Parallel`](calibro::LtboMode) detection whose per-group
//! plans replay from the cache — so CI gates both the method lane and
//! the group-plan lane of the incremental pipeline.
//!
//! ```text
//! cargo run --release --example warm_rebuild
//! ```

use calibro::{build, BuildOptions, BuildSession};
use calibro_workloads::{generate, mutate_methods, AppSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    check_arm("global", BuildOptions::cto_ltbo())?;
    check_arm("sharded", BuildOptions::cto_ltbo_parallel(64, 4))?;
    Ok(())
}

fn check_arm(arm: &str, options: BuildOptions) -> Result<(), Box<dyn std::error::Error>> {
    let session = BuildSession::new();

    let app = generate(&AppSpec::small("warm-smoke", 97));
    let cold = session.build(&app.dex, &options)?;
    println!(
        "[{arm}] cold build: {} methods, {} bytes of .text, {} detection group(s)",
        cold.stats.methods,
        cold.oat.text_size_bytes(),
        cold.stats.ltbo.detection_groups
    );

    // The app update: one mutated method (the fraction rounds up to 1).
    let mut edited = app.dex.clone();
    let mutated = mutate_methods(&mut edited, 5, 0.0001);
    println!("[{arm}] mutated {} method(s): {:?}", mutated.len(), mutated);

    let warm = session.build(&edited, &options)?;
    let fresh = build(&edited, &options)?;

    let hit_rate = warm.stats.cache.hit_rate();
    let group_hit_rate = warm.stats.cache.group_hit_rate();
    println!(
        "[{arm}] warm rebuild: {}/{} methods from cache, hit rate {:.1}%, group hit rate {:.1}%",
        warm.stats.methods_from_cache,
        warm.stats.methods,
        hit_rate * 100.0,
        group_hit_rate * 100.0
    );
    println!(
        "[{arm}] digests: warm {:#018x}, cold {:#018x}",
        warm.oat.text_digest(),
        fresh.oat.text_digest()
    );

    if hit_rate <= 0.9 {
        return Err(format!("[{arm}] hit rate {hit_rate:.3} not above 0.9").into());
    }
    // A one-method delta dirties at most two of the sharded arm's 64
    // content-stable groups; everything else must replay its cached plan.
    if arm == "sharded" && group_hit_rate <= 0.8 {
        return Err(format!("[{arm}] group hit rate {group_hit_rate:.3} not above 0.8").into());
    }
    if warm.stats.methods_from_cache != warm.stats.methods - mutated.len() {
        return Err(format!(
            "[{arm}] expected {} cache replays, saw {}",
            warm.stats.methods - mutated.len(),
            warm.stats.methods_from_cache
        )
        .into());
    }
    if calibro_oat::to_elf_bytes(&warm.oat) != calibro_oat::to_elf_bytes(&fresh.oat) {
        return Err(format!("[{arm}] warm rebuild is not byte-identical to a cold build").into());
    }
    // Hot-path budget (sharded arm, where the warm path is fully wired):
    // fingerprinting + store probes must stay well under the CPU cost of
    // compiling the whole program cold — otherwise keys are eating the
    // speedup the cache buys. Budgeted against the *cold* compile CPU
    // because the warm delta's CPU cost legitimately approaches zero.
    if arm == "sharded" {
        let keys_us = warm.stats.key_time.as_micros();
        let compile_cpu_us = cold.stats.compile_cpu_time.as_micros();
        println!(
            "[{arm}] warm keys {keys_us}µs, detect {}µs, cold compile cpu {compile_cpu_us}µs",
            warm.stats.detect_time.as_micros()
        );
        if keys_us * 2 >= compile_cpu_us {
            return Err(format!(
                "[{arm}] warm key phase {keys_us}µs is not under half the \
                 cold compile CPU {compile_cpu_us}µs"
            )
            .into());
        }
    }
    println!("[{arm}] warm rebuild OK: delta-only recompile, bit-identical output");
    Ok(())
}
