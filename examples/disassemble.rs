//! Disassembles one method before and after Calibro, showing the three
//! ART patterns (Figure 4), the CTO thunk calls, and the LTBO outlined
//! functions in real AArch64.
//!
//! ```text
//! cargo run --release --example disassemble
//! ```

use calibro::{build, BuildOptions};
use calibro_dex::MethodId;
use calibro_isa::decode;
use calibro_oat::OatFile;
use calibro_workloads::{generate, AppSpec};

fn dump_method(oat: &OatFile, method: MethodId, title: &str) {
    let record = &oat.methods[method.index()];
    println!("\n--- {title} (m{}, {} words) ---", method.0, record.code_words);
    let start = (record.offset / 4) as usize;
    for w in 0..record.code_words {
        let addr = oat.base_address + record.offset + w as u64 * 4;
        let word = oat.words[start + w];
        if record.metadata.in_embedded_data(w) {
            println!("{addr:#010x}: .word {word:#010x}   ; literal pool (embedded data)");
            continue;
        }
        match decode(word) {
            Ok(insn) => {
                let mut notes = String::new();
                if record.metadata.terminators.contains(&w) {
                    notes.push_str("   ; terminator");
                }
                if record.metadata.in_slow_path(w) {
                    notes.push_str("   ; slow path");
                }
                println!("{addr:#010x}: {insn}{notes}");
            }
            Err(_) => println!("{addr:#010x}: .word {word:#010x}   ; (not an instruction)"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(&AppSpec::small("disasm", 17));
    // Pick a mid-sized method with calls so all three patterns appear.
    let target = app
        .dex
        .methods()
        .iter()
        .find(|m| !m.is_native && !m.is_leaf() && m.insns.len() > 12)
        .map(|m| m.id)
        .expect("an interesting method exists");

    let baseline = build(&app.dex, &BuildOptions::baseline())?;
    dump_method(&baseline.oat, target, "baseline (note the Figure 4 patterns inline)");

    let outlined = build(&app.dex, &BuildOptions::cto_ltbo())?;
    dump_method(&outlined.oat, target, "CTO+LTBO (patterns and repeats became bl)");

    // Show the CTO thunks and a few outlined functions.
    println!("\n--- CTO thunks (§3.1 pattern cache) ---");
    for thunk in &outlined.oat.thunks {
        println!("{:?} at {:#x}:", thunk.kind, outlined.oat.base_address + thunk.offset);
        let start = (thunk.offset / 4) as usize;
        for w in 0..thunk.size_words {
            println!("    {}", decode(outlined.oat.words[start + w])?);
        }
    }
    println!("\n--- first LTBO outlined functions (§3.3.3) ---");
    for rec in outlined.oat.outlined.iter().take(4) {
        println!("outlined at {:#x}:", outlined.oat.base_address + rec.offset);
        let start = (rec.offset / 4) as usize;
        for w in 0..rec.size_words {
            println!("    {}", decode(outlined.oat.words[start + w])?);
        }
    }
    println!(
        "\ntotals: {} -> {} bytes ({} outlined functions, {} thunks)",
        baseline.oat.text_size_bytes(),
        outlined.oat.text_size_bytes(),
        outlined.oat.outlined.len(),
        outlined.oat.thunks.len()
    );
    Ok(())
}
