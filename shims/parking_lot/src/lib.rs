//! Offline stand-in for the subset of `parking_lot` used by this
//! workspace: `Mutex` and `RwLock` with infallible, non-poisoning lock
//! methods. Backed by `std::sync`; a poisoned std lock is transparently
//! recovered, matching `parking_lot`'s no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking, returning `None`
    /// when it is held by another thread (matching `parking_lot`'s
    /// `try_lock` signature).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A readers-writer lock whose methods never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
