//! Offline stand-in for the subset of `crossbeam` used by this
//! workspace: scoped threads (`crossbeam::scope` / `crossbeam::thread`),
//! backed by `std::thread::scope`.
//!
//! Semantics mirror crossbeam 0.8: `scope` returns `Err` with the panic
//! payload if any spawned thread (or the scope closure itself) panicked,
//! instead of propagating the panic.

pub use thread::{scope, Scope, ScopedJoinHandle};

/// Scoped-thread module, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the `scope` closure and to every spawned
    /// thread's closure (crossbeam spawns receive the scope so they can
    /// spawn further siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope, like
        /// crossbeam's `Scope::spawn`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the
    /// environment can be spawned; all are joined before returning.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the closure or any spawned thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_handles_return_values() {
        let vals = super::scope(|scope| {
            let handles: Vec<_> = (0..3).map(|i| scope.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(vals, vec![0, 10, 20]);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|s| {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
