//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace.
//!
//! Implements the strategy combinators (`prop_map`, `prop_flat_map`,
//! tuples, ranges, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `any::<T>()`), the `proptest!` macro with `#![proptest_config(..)]`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline build container:
//!
//! * no shrinking — a failing case panics with the generated inputs'
//!   `Debug` rendering via the assertion message instead;
//! * generation is derived from a fixed per-test seed (hash of the test
//!   name), so runs are fully deterministic;
//! * no persistence files, forking, or timeouts.

/// Test-runner types: configuration, case errors, and the generator.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!`) tolerated globally.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single test case did not succeed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another input.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        /// Builds a rejection.
        #[must_use]
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    /// Deterministic generator threading through strategy sampling
    /// (splitmix64-seeded xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary state word.
        #[must_use]
        pub fn seed_from_u64(state: u64) -> TestRng {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Seeds deterministically from a test name.
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable per-test stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::seed_from_u64(h)
        }

        /// Next uniform 64-bit word (xoshiro256**).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// Strategies: value generators composed with combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// The shim has no shrinking, so a strategy is just a sampling
    /// function over the deterministic [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generates a value, then samples the strategy `f` derives from
        /// it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// `prop_flat_map` adapter.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given arms (at least one required).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    let off = rng.below(span) as $u;
                    (self.start as $u).wrapping_add(off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as $u).wrapping_sub(start as $u) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64() as $u
                    } else {
                        rng.below(span + 1) as $u
                    };
                    (start as $u).wrapping_add(off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

/// `any::<T>()` — full-domain strategies for primitives.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`]: an exact length or a length range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy generating vectors of `element`-generated values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vector strategy over `element` with the given size (exact or
    /// range).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strategy).new_value(&mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest: too many prop_assume! rejections ({rejected})"
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("proptest case {passed} failed: {message}");
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Asserts within a property body; failures report the case rather than
/// unwinding through arbitrary frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_values_hold_invariants(v in small_even()) {
            prop_assert!(v.is_multiple_of(2));
            prop_assert!(v < 200, "v was {}", v);
        }

        #[test]
        fn tuples_and_oneof_compose(
            (a, b) in (0u8..10, 0u8..10),
            pick in prop_oneof![Just(1u8), Just(2), 5u8..7],
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
        }

        #[test]
        fn flat_map_respects_dependency(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(any::<bool>(), n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..10) {
            prop_assume!(v > 0);
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn inclusive_and_negative_ranges(r in 0u8..=31, s in -50i32..50) {
            prop_assert!(r <= 31);
            prop_assert!((-50..50).contains(&s));
            prop_assert_eq!(r as u32 + 1, u32::from(r) + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(v in 10u32..20) {
                prop_assert!(v < 15, "v too big: {}", v);
            }
        }
        inner();
    }
}
