//! Offline stand-in for the subset of `criterion` used by this
//! workspace's benches: `Criterion`, benchmark groups, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by a
//! fixed wall-clock budget per benchmark, reporting the mean iteration
//! time — but the harness shape (and so `cargo bench`) stays intact.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { budget: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.budget, f);
        self
    }
}

/// A named benchmark group (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time budget makes the
    /// sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.budget, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.budget, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: format!("{}/{parameter}", name.into()) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy state so timing excludes it).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, mut f: F) {
    let mut bencher = Bencher { budget, iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
        println!("{label:40} {:>12.3?}/iter ({} iters)", mean, bencher.iters);
    } else {
        println!("{label:40} (no measurement — closure never called iter)");
    }
}

/// Collects benchmark functions into a runnable group, like criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_shape_runs() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inc", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 + 2)));
    }
}
