//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace (`StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build container has no registry access, so the real crate cannot
//! be fetched; this shim keeps the exact call sites compiling while
//! providing a high-quality deterministic generator (splitmix64-seeded
//! xoshiro256**). Streams differ from upstream `rand`, which is fine:
//! every consumer in this repo seeds explicitly and asserts structural
//! properties, never exact sampled values.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a range — the shim's analogue of
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Draws from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// A range that can be sampled uniformly — the shim's analogue of
/// `rand::distributions::uniform::SampleRange`.
///
/// The blanket impls over [`SampleUniform`] (rather than per-type impls)
/// matter for type inference: they let the compiler unify the range
/// literal's type with the call site's expected result type, exactly as
/// upstream `rand` does.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as $u).wrapping_sub(start as $u) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                (start as $u).wrapping_add(off) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                let span = (end as $u).wrapping_sub(start as $u) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                (start as $u).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                // Closed floating ranges are approximated by the half-open
                // draw; no caller in this workspace depends on hitting the
                // exact endpoint.
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The shim needs no separate small generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let v = rng.gen_range(3usize..=8);
            assert!((3..=8).contains(&v));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "{hits} hits of 20000 at p=0.25");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
